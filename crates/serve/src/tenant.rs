//! Per-tenant session routing: tenant id → one [`QueryEngine`] plus its
//! materialized tables.
//!
//! Each tenant gets an isolated engine — its own cross-query
//! [`expred_exec::CacheStore`], result memo, and session bill — created
//! lazily on first request and kept for the server's lifetime. Isolation
//! is the tenancy model: one tenant's cache churn, bill, or query mix
//! can never leak into another's answers or accounting (the paper's
//! amortization story plays out *within* a tenant's query stream). The
//! registry bounds how many tenants may exist; past the bound, new
//! tenant ids are refused with a retryable 503 while existing tenants
//! keep being served.
//!
//! Tables are tenant-local too: a [`TableKey`] names a calibrated
//! generator (`prosper` / `lc`), a row count, and a generation seed, and
//! each tenant materializes its own instance (bounded per tenant,
//! evicting the least-recently-used). Generation is deterministic, so
//! equal keys answer identically across tenants — without sharing any
//! cache state.

use crate::api::TableKey;
use expred_core::{PersistConfig, QueryEngine};
use expred_table::datasets::{Dataset, DatasetSpec, LENDING_CLUB, PROSPER};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Whether `spec` names a known table generator.
pub fn known_spec(spec: &str) -> bool {
    matches!(spec, "prosper" | "lc")
}

fn generator(spec: &str) -> Option<DatasetSpec> {
    match spec {
        "prosper" => Some(PROSPER),
        "lc" => Some(LENDING_CLUB),
        _ => None,
    }
}

/// How a tenant's engine is built (the registry applies this to every
/// lazily created tenant).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Run tenant engines on the persistent [`expred_exec::WorkerPool`]
    /// instead of the sequential backend.
    pub pooled: bool,
    /// Artificial latency added to every fresh UDF evaluation — the
    /// load-testing knob ([`QueryEngine::with_udf_latency`]).
    pub udf_latency: Duration,
    /// Root directory for durable per-tenant persistence
    /// ([`QueryEngine::with_persistence`]); each tenant gets an isolated
    /// subdirectory named after its (sanitized) id, so a restarted
    /// server re-serves every answer its tenants already paid for.
    /// `None` keeps engines fully in-memory.
    pub data_dir: Option<PathBuf>,
    /// Row-tier answer TTL ([`QueryEngine::with_cache_ttl`]); with
    /// persistence, the age carries across restarts.
    pub cache_ttl: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            pooled: false,
            udf_latency: Duration::ZERO,
            data_dir: None,
            cache_ttl: None,
        }
    }
}

/// A filesystem-safe directory name for a tenant id: ASCII alphanumerics,
/// `_`, and `-` pass through; every other byte is percent-encoded. The
/// encoding is injective, so two distinct tenant ids can never collide on
/// one directory — and a hostile id like `../../etc` cannot escape the
/// data root.
pub(crate) fn tenant_dir_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for byte in name.bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'-' => out.push(byte as char),
            other => {
                out.push('%');
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{other:02X}"));
            }
        }
    }
    if out.is_empty() {
        out.push_str("%empty");
    }
    out
}

impl EngineConfig {
    fn base_engine(&self) -> QueryEngine {
        let engine = if self.pooled {
            QueryEngine::pooled()
        } else {
            QueryEngine::new()
        };
        let engine = engine.with_udf_latency(self.udf_latency);
        match self.cache_ttl {
            Some(ttl) => engine.with_cache_ttl(ttl),
            None => engine,
        }
    }

    fn build(&self, tenant: &str) -> QueryEngine {
        let engine = self.base_engine();
        if let Some(root) = &self.data_dir {
            let dir = root.join(tenant_dir_name(tenant));
            return match engine.with_persistence(PersistConfig::new(dir)) {
                Ok(persistent) => persistent,
                Err(error) => {
                    // Persistence is an accelerator, not a correctness
                    // tier: serve this tenant in-memory rather than
                    // refusing it.
                    eprintln!("expred-serve: tenant {tenant:?} persistence disabled: {error}");
                    self.base_engine()
                }
            };
        }
        engine
    }
}

/// One tenant's session: an engine plus its materialized tables.
pub struct Tenant {
    name: String,
    engine: QueryEngine,
    /// Materialized tables, LRU-bounded by `max_tables`. The `u64` is a
    /// logical access clock.
    tables: Mutex<HashMap<TableKey, (Arc<Dataset>, u64)>>,
    clock: Mutex<u64>,
    max_tables: usize,
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.name)
            .field("tables", &self.table_count())
            .finish_non_exhaustive()
    }
}

impl Tenant {
    fn new(name: String, config: &EngineConfig, max_tables: usize) -> Self {
        let engine = config.build(&name);
        Self {
            name,
            engine,
            tables: Mutex::new(HashMap::new()),
            clock: Mutex::new(0),
            max_tables: max_tables.max(1),
        }
    }

    /// The tenant's id.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's engine (callable from any worker thread).
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The tenant's table for `key`, materializing it on first use.
    /// Dropping a table past the LRU bound also abandons its cache
    /// namespaces: a re-materialized instance gets a fresh
    /// [`expred_table::table::TableId`], so stale entries simply age out
    /// of the store.
    pub fn dataset(&self, key: &TableKey) -> Arc<Dataset> {
        let tick = {
            let mut clock = self.clock.lock().unwrap_or_else(|e| e.into_inner());
            *clock += 1;
            *clock
        };
        let mut tables = self.tables.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((ds, last_used)) = tables.get_mut(key) {
            *last_used = tick;
            return Arc::clone(ds);
        }
        let spec = generator(&key.spec).expect("key validated by the API layer");
        let ds = Arc::new(Dataset::generate(
            DatasetSpec {
                rows: key.rows,
                ..spec
            },
            key.seed,
        ));
        if tables.len() >= self.max_tables {
            if let Some(evict) = tables
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(k, _)| k.clone())
            {
                tables.remove(&evict);
            }
        }
        tables.insert(key.clone(), (Arc::clone(&ds), tick));
        ds
    }

    /// How many tables this tenant currently holds.
    pub fn table_count(&self) -> usize {
        self.tables.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// Why a tenant could not be routed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantError {
    /// The registry is at capacity and `name` is not an existing tenant.
    /// Maps to 503 (retryable: an existing tenant's traffic still flows).
    Exhausted {
        /// The configured bound.
        limit: usize,
    },
}

/// The tenant routing table: id → session, lazily created, bounded.
pub struct TenantRegistry {
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    max_tenants: usize,
    max_tables_per_tenant: usize,
    engine_config: EngineConfig,
}

impl TenantRegistry {
    /// A registry admitting at most `max_tenants` distinct tenant ids,
    /// each holding at most `max_tables_per_tenant` materialized tables.
    pub fn new(
        max_tenants: usize,
        max_tables_per_tenant: usize,
        engine_config: EngineConfig,
    ) -> Self {
        Self {
            tenants: RwLock::new(HashMap::new()),
            max_tenants: max_tenants.max(1),
            max_tables_per_tenant,
            engine_config,
        }
    }

    /// Routes `name` to its session, creating it if the bound allows.
    /// Existing tenants are resolved under a shared read lock (the
    /// steady-state path); only a genuinely new tenant takes the write
    /// lock.
    pub fn route(&self, name: &str) -> Result<Arc<Tenant>, TenantError> {
        {
            let tenants = self.tenants.read().unwrap_or_else(|e| e.into_inner());
            if let Some(tenant) = tenants.get(name) {
                return Ok(Arc::clone(tenant));
            }
        }
        let mut tenants = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        if let Some(tenant) = tenants.get(name) {
            return Ok(Arc::clone(tenant));
        }
        if tenants.len() >= self.max_tenants {
            return Err(TenantError::Exhausted {
                limit: self.max_tenants,
            });
        }
        let tenant = Arc::new(Tenant::new(
            name.to_owned(),
            &self.engine_config,
            self.max_tables_per_tenant,
        ));
        tenants.insert(name.to_owned(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Every live tenant, sorted by id (stable `/metrics` output).
    pub fn snapshot(&self) -> Vec<Arc<Tenant>> {
        let tenants = self.tenants.read().unwrap_or_else(|e| e.into_inner());
        let mut all: Vec<Arc<Tenant>> = tenants.values().cloned().collect();
        all.sort_by(|a, b| a.name().cmp(b.name()));
        all
    }

    /// How many tenants exist.
    pub fn len(&self) -> usize {
        self.tenants.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no tenant has been routed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(rows: usize, seed: u64) -> TableKey {
        TableKey {
            spec: "prosper".into(),
            rows,
            seed,
        }
    }

    #[test]
    fn tenants_are_created_lazily_and_bounded() {
        let registry = TenantRegistry::new(2, 4, EngineConfig::default());
        assert!(registry.is_empty());
        let a = registry.route("alice").unwrap();
        let a2 = registry.route("alice").unwrap();
        assert!(Arc::ptr_eq(&a, &a2), "same tenant routes to same session");
        registry.route("bob").unwrap();
        assert_eq!(registry.len(), 2);
        match registry.route("carol") {
            Err(TenantError::Exhausted { limit: 2 }) => {}
            other => panic!("expected Exhausted, got {other:?}"),
        }
        // Existing tenants still route after exhaustion.
        assert!(registry.route("bob").is_ok());
        let names: Vec<String> = registry
            .snapshot()
            .iter()
            .map(|t| t.name().to_owned())
            .collect();
        assert_eq!(names, ["alice", "bob"]);
    }

    #[test]
    fn tenant_engines_are_isolated() {
        let registry = TenantRegistry::new(4, 4, EngineConfig::default());
        let a = registry.route("a").unwrap();
        let b = registry.route("b").unwrap();
        let ds = a.dataset(&key(200, 1));
        let req = expred_core::QueryRequest::naive(expred_core::QuerySpec::paper_default());
        a.engine().submit(&ds, &req).unwrap();
        assert_eq!(a.engine().stats().queries, 1);
        assert_eq!(b.engine().stats().queries, 0, "b never ran anything");
    }

    #[test]
    fn datasets_are_cached_and_lru_bounded() {
        let registry = TenantRegistry::new(1, 2, EngineConfig::default());
        let t = registry.route("t").unwrap();
        let first = t.dataset(&key(100, 1));
        let again = t.dataset(&key(100, 1));
        assert!(Arc::ptr_eq(&first, &again), "same key, same instance");
        t.dataset(&key(100, 2));
        assert_eq!(t.table_count(), 2);
        // Touch key 1 so key 2 is the LRU victim.
        t.dataset(&key(100, 1));
        t.dataset(&key(100, 3));
        assert_eq!(t.table_count(), 2);
        let kept = t.dataset(&key(100, 1));
        assert!(Arc::ptr_eq(&first, &kept), "recently used key survived");
    }

    #[test]
    fn equal_keys_generate_identical_tables() {
        let registry = TenantRegistry::new(2, 2, EngineConfig::default());
        let a = registry.route("a").unwrap().dataset(&key(150, 9));
        let b = registry.route("b").unwrap().dataset(&key(150, 9));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(a.table, b.table, "deterministic generation (content)");
        assert_ne!(
            a.table.id(),
            b.table.id(),
            "distinct instances: no shared cache namespaces"
        );
    }

    #[test]
    fn spec_names_resolve() {
        assert!(known_spec("prosper"));
        assert!(known_spec("lc"));
        assert!(!known_spec("sentiment"));
    }

    #[test]
    fn tenant_dir_names_are_safe_and_injective() {
        assert_eq!(tenant_dir_name("acme_corp-1"), "acme_corp-1");
        assert_eq!(tenant_dir_name("../../etc"), "%2E%2E%2F%2E%2E%2Fetc");
        assert_eq!(tenant_dir_name("a b"), "a%20b");
        assert_eq!(tenant_dir_name(""), "%empty");
        // Distinct names that differ only in encoded bytes stay distinct.
        assert_ne!(tenant_dir_name("a/b"), tenant_dir_name("a_b"));
        assert_ne!(tenant_dir_name("a%2Fb"), tenant_dir_name("a/b"));
    }

    #[test]
    fn data_dir_gives_each_tenant_an_isolated_persistent_engine() {
        let root =
            std::env::temp_dir().join(format!("expred-tenant-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let registry = TenantRegistry::new(
            4,
            4,
            EngineConfig {
                data_dir: Some(root.clone()),
                ..EngineConfig::default()
            },
        );
        let a = registry.route("alice").unwrap();
        let b = registry.route("bob/../alice").unwrap();
        assert!(a.engine().persist_stats().is_some(), "persistence wired");
        assert!(b.engine().persist_stats().is_some());
        assert!(root.join("alice").is_dir());
        assert!(
            root.join("bob%2F%2E%2E%2Falice").is_dir(),
            "hostile name confined to an encoded subdirectory"
        );
        drop(registry);
        let _ = std::fs::remove_dir_all(&root);
    }
}
