//! Admission control: a bounded in-flight gate that sheds load instead
//! of queueing it.
//!
//! Every `/query` must acquire a slot *before* any engine work happens.
//! When all slots are taken the request is refused immediately — the
//! caller turns that into `429 Too Many Requests` with a `Retry-After`
//! hint — so a saturated server keeps answering in constant time rather
//! than building an unbounded backlog. Shed requests provably never
//! touch an engine: the acquire happens before tenant routing, table
//! materialization, or [`expred_core::QueryEngine::submit`], which the
//! saturation tests pin down via exact bill conservation.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A counting gate over at most `capacity` concurrent holders.
///
/// Lock-free: acquire is a CAS loop on the in-flight count, release is a
/// single decrement (via [`GatePass`]'s `Drop`).
pub struct AdmissionGate {
    capacity: usize,
    in_flight: AtomicUsize,
    admitted: AtomicU64,
    shed: AtomicU64,
}

impl AdmissionGate {
    /// A gate admitting at most `capacity` holders at once (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            in_flight: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Tries to take a slot. `None` means the request must be shed —
    /// the gate never blocks and never queues.
    pub fn try_acquire(&self) -> Option<GatePass<'_>> {
        let mut current = self.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= self.capacity {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    return Some(GatePass { gate: self });
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// Like [`Self::try_acquire`], but the pass owns an `Arc` to the
    /// gate instead of borrowing it — for holders that outlive the
    /// acquiring stack frame, like a connection thread releasing its
    /// slot whenever the socket finally closes.
    pub fn try_acquire_owned(self: &Arc<Self>) -> Option<OwnedGatePass> {
        let pass = self.try_acquire()?;
        std::mem::forget(pass); // the owned pass takes over the release
        Some(OwnedGatePass {
            gate: Arc::clone(self),
        })
    }

    /// A `Retry-After` hint (seconds) derived from current load: an
    /// idle gate says "1", a gate at capacity says up to ~5, and a
    /// small deterministic jitter keyed on the shed counter de-phases
    /// clients that were all refused in the same burst (so they do not
    /// all come back in the same second and get shed again).
    pub fn retry_after_hint(&self) -> u64 {
        let capacity = self.capacity.max(1) as u64;
        let load = (self.in_flight() as u64).min(capacity);
        let base = 1 + (3 * load) / capacity; // 1 (idle) ..= 4 (full)
        let jitter = self.shed.load(Ordering::Relaxed) % 2; // 0 or 1
        base + jitter
    }

    /// The configured slot count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many holders are in flight right now.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Total acquisitions granted.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Total acquisitions refused.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

/// An RAII slot in the gate; dropping it releases the slot (also on
/// panic, which is what keeps a crashed handler from leaking capacity).
pub struct GatePass<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for GatePass<'_> {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::Release);
    }
}

/// An owned slot in an `Arc`-shared gate — same semantics as
/// [`GatePass`], but movable across threads and lifetimes.
pub struct OwnedGatePass {
    gate: Arc<AdmissionGate>,
}

impl Drop for OwnedGatePass {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_past_capacity_and_recovers() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_acquire().expect("slot 1");
        let b = gate.try_acquire().expect("slot 2");
        assert!(gate.try_acquire().is_none(), "third holder is shed");
        assert_eq!(gate.in_flight(), 2);
        assert_eq!((gate.admitted(), gate.shed()), (2, 1));
        drop(a);
        let c = gate.try_acquire().expect("freed slot is reusable");
        drop(b);
        drop(c);
        assert_eq!(gate.in_flight(), 0);
        assert_eq!((gate.admitted(), gate.shed()), (3, 1));
    }

    #[test]
    fn panic_in_holder_releases_slot() {
        let gate = AdmissionGate::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _pass = gate.try_acquire().expect("slot");
            panic!("handler crashed");
        }));
        assert!(result.is_err());
        assert_eq!(gate.in_flight(), 0, "slot returned by Drop during unwind");
        assert!(gate.try_acquire().is_some());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let gate = AdmissionGate::new(0);
        assert_eq!(gate.capacity(), 1);
        let _pass = gate.try_acquire().expect("one slot exists");
        assert!(gate.try_acquire().is_none());
    }

    #[test]
    fn owned_passes_share_the_same_budget_and_release_on_drop() {
        let gate = Arc::new(AdmissionGate::new(2));
        let owned = gate.try_acquire_owned().expect("slot 1");
        let _borrowed = gate.try_acquire().expect("slot 2");
        assert!(gate.try_acquire_owned().is_none(), "budget is shared");
        // An owned pass survives a move to another thread.
        let moved = std::thread::spawn(move || drop(owned)).join();
        assert!(moved.is_ok());
        assert_eq!(gate.in_flight(), 1, "owned drop released its slot");
    }

    #[test]
    fn retry_after_scales_with_load_and_jitters_deterministically() {
        let gate = AdmissionGate::new(4);
        assert_eq!(gate.retry_after_hint(), 1, "idle gate: minimum hint");
        let passes: Vec<_> = (0..4).map(|_| gate.try_acquire().unwrap()).collect();
        assert_eq!(gate.retry_after_hint(), 4, "full gate: maximum base");
        assert!(gate.try_acquire().is_none()); // shed becomes odd
        assert_eq!(gate.retry_after_hint(), 5, "odd shed count adds jitter");
        assert!(gate.try_acquire().is_none()); // shed becomes even
        assert_eq!(gate.retry_after_hint(), 4, "even shed count: no jitter");
        drop(passes);
        assert!(gate.retry_after_hint() <= 2, "drained gate relaxes");
    }

    #[test]
    fn concurrent_holders_never_exceed_capacity() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let gate = Arc::new(AdmissionGate::new(3));
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (gate, peak, live) = (gate.clone(), peak.clone(), live.clone());
                std::thread::spawn(move || {
                    let mut held = 0u64;
                    for _ in 0..500 {
                        if let Some(_pass) = gate.try_acquire() {
                            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(now, Ordering::SeqCst);
                            std::thread::yield_now();
                            live.fetch_sub(1, Ordering::SeqCst);
                            held += 1;
                        }
                    }
                    held
                })
            })
            .collect();
        let total_held: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(peak.load(Ordering::SeqCst) <= 3, "capacity respected");
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(gate.admitted(), total_held);
        assert_eq!(gate.admitted() + gate.shed(), 8 * 500);
    }
}
