//! The serving tier's JSON wire schema: request bodies in,
//! [`RunOutcome`] bodies out, [`EngineError`] → HTTP status.
//!
//! A query request body names a tenant-local table and a strategy:
//!
//! ```json
//! {
//!   "tenant": "alice",
//!   "table": {"spec": "prosper", "rows": 2000, "seed": 7},
//!   "query": {"kind": "naive", "alpha": 0.8, "beta": 0.8, "rho": 0.8},
//!   "seed": 42,
//!   "on_infeasible": "fallback"
//! }
//! ```
//!
//! `table.spec` picks a calibrated generator (`"prosper"` or `"lc"`);
//! each tenant materializes (and caches) its own instance, so tenants
//! never share cache state even on identical specs. `query.kind` selects
//! a built-in [`Strategy`]; every kind accepts the accuracy-contract
//! fields `alpha`/`beta`/`rho` and a `cost` object, all defaulting to
//! the paper's `0.8` / `{o_r: 1, o_e: 3}`. Kind-specific fields are
//! documented on [`parse_query_body`]. Unknown fields anywhere are a
//! 400: a misspelled knob must not silently fall back to a default.
//!
//! A 200 body is the outcome, minus `compute_seconds` (a wall-clock
//! diagnostic that would break the serving contract that an HTTP answer
//! is byte-identical to a direct [`QueryEngine::submit`]):
//!
//! ```json
//! {"tenant": "alice", "returned": [3, 17], "counts": {"retrieved": 2000,
//!  "evaluated": 512, "cache_hits": 0, "reuse_hits": 40}, "cost": 3536.0,
//!  "precision": 0.93, "recall": 0.91, "num_groups": 7,
//!  "plan_feasible": true}
//! ```
//!
//! Every error body is `{"error": "<kind>", "detail": "<message>"}`.
//!
//! [`Strategy`]: expred_core::strategy::Strategy
//! [`QueryEngine::submit`]: expred_core::QueryEngine::submit

use expred_core::optimize::CorrelationModel;
use expred_core::pipeline::{IntelSampleConfig, PredictorChoice, RunOutcome};
use expred_core::sampling::SampleSizeRule;
use expred_core::{EngineError, InfeasiblePolicy, QueryRequest, QuerySpec};
use expred_stats::json::{escape, JsonValue};
use expred_udf::CostModel;

/// A failed API call: the HTTP status to answer with, a stable
/// machine-readable kind, and a human-readable detail message.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable error kind (`"bad_request"`, `"unknown_column"`, …).
    pub kind: &'static str,
    /// What went wrong.
    pub detail: String,
}

impl ApiError {
    /// A 400 with kind `bad_request`.
    pub fn bad_request(detail: impl Into<String>) -> Self {
        Self {
            status: 400,
            kind: "bad_request",
            detail: detail.into(),
        }
    }

    /// The error's JSON body.
    pub fn body(&self) -> String {
        format!(
            "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
            escape(self.kind),
            escape(&self.detail)
        )
    }
}

/// The HTTP status each [`EngineError`] variant maps to.
///
/// * `InvalidSpec`, `BadExpression`, `InvalidRequest` → **400**: the
///   request itself is malformed.
/// * `UnknownColumn` → **404**: the request is well-formed but names a
///   column the table does not have.
/// * `Infeasible` → **422**: the request parsed and validated, but its
///   contract is unsatisfiable under the declared policy.
/// * `Unavailable` → **503**: nothing is wrong with the request — a
///   remote UDF backend it depends on is unreachable (circuit breaker
///   open, deadlines exhausted) and no local fallback was configured.
///   Answered with `Retry-After`, because retrying is the right move.
pub fn engine_error_status(error: &EngineError) -> u16 {
    match error {
        EngineError::InvalidSpec { .. } => 400,
        EngineError::BadExpression { .. } => 400,
        EngineError::InvalidRequest { .. } => 400,
        EngineError::UnknownColumn { .. } => 404,
        EngineError::Infeasible { .. } => 422,
        EngineError::Unavailable { .. } => 503,
    }
}

/// The stable `error` kind string for each [`EngineError`] variant.
pub fn engine_error_kind(error: &EngineError) -> &'static str {
    match error {
        EngineError::InvalidSpec { .. } => "invalid_spec",
        EngineError::BadExpression { .. } => "bad_expression",
        EngineError::InvalidRequest { .. } => "invalid_request",
        EngineError::UnknownColumn { .. } => "unknown_column",
        EngineError::Infeasible { .. } => "infeasible",
        EngineError::Unavailable { .. } => "unavailable",
    }
}

impl From<EngineError> for ApiError {
    fn from(error: EngineError) -> Self {
        ApiError {
            status: engine_error_status(&error),
            kind: engine_error_kind(&error),
            detail: error.to_string(),
        }
    }
}

/// Which tenant-local table a query targets: a named calibrated
/// generator plus size and generation seed. Equal keys generate
/// byte-identical tables (modulo the process-unique instance id).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableKey {
    /// Generator name (`"prosper"` or `"lc"`).
    pub spec: String,
    /// Number of rows to generate.
    pub rows: usize,
    /// Generation seed.
    pub seed: u64,
}

/// One fully parsed `/query` call.
#[derive(Debug)]
pub struct ApiQuery {
    /// Tenant named in the body (the `X-Tenant` header, when present,
    /// wins over this).
    pub tenant: Option<String>,
    /// Which table to run over.
    pub table: TableKey,
    /// The engine request to submit.
    pub request: QueryRequest,
}

/// Parses a `/query` body. `max_rows` bounds `table.rows` (admission
/// control over memory, not just concurrency).
///
/// Per-kind fields of the `query` object (beyond
/// `alpha`/`beta`/`rho`/`cost`):
///
/// * `"naive"`, `"learning"` — none.
/// * `"intel_sample"` — `predictor` (column name; omit for auto-ranking),
///   `label_fraction` (auto-ranking budget, default 0.01),
///   `sample_fraction` (default 0.05), `corr`
///   (`"independent"`/`"unknown"`, default independent).
/// * `"optimal"`, `"adaptive"` — `predictor` (required);
///   adaptive also takes `corr`.
/// * `"iterative"` — `predictor` (required), `corr`, `sample_fraction`,
///   `rounds` (default 2).
/// * `"multiple"` — `imputations` (default 5).
/// * `"expr"` — `predicate` (required): a pypred-style boolean string
///   over the table's boolean columns, e.g.
///   `"udf_label and (vip or not flagged)"` (`not` binds tighter than
///   `and`, which binds tighter than `or`); `optimize` (default `true`)
///   runs the session's selectivity-aware rewrite before evaluating —
///   identical answers either way, smaller bill once the session has
///   observations. Parse failures are 400 `bad_expression`.
///
/// Work-multiplier fields are admission-controlled here, not just in
/// the engine: `imputations` ≤ [`MAX_IMPUTATIONS`], `rounds` ≤
/// [`MAX_ROUNDS`], and both fraction knobs must lie in `(0, 1]` —
/// anything past a bound is a 400, mirroring the `max_rows` cap.
pub fn parse_query_body(body: &[u8], max_rows: usize) -> Result<ApiQuery, ApiError> {
    let text = std::str::from_utf8(body).map_err(|_| ApiError::bad_request("body is not UTF-8"))?;
    let doc = JsonValue::parse(text)
        .map_err(|e| ApiError::bad_request(format!("body is not valid JSON: {e}")))?;
    if !matches!(doc, JsonValue::Object(_)) {
        return Err(ApiError::bad_request("body must be a JSON object"));
    }
    let mut tenant = None;
    let mut table = None;
    let mut query = None;
    let mut seed = 0u64;
    let mut policy = InfeasiblePolicy::FallbackEvaluateAll;
    for key in doc.keys() {
        let value = doc.get(key).expect("listed key is present");
        match key {
            "tenant" => {
                tenant = Some(
                    value
                        .as_str()
                        .ok_or_else(|| ApiError::bad_request("\"tenant\" must be a string"))?
                        .to_owned(),
                )
            }
            "table" => table = Some(parse_table(value, max_rows)?),
            "query" => query = Some(value),
            "seed" => {
                seed = value.as_u64().ok_or_else(|| {
                    ApiError::bad_request("\"seed\" must be a non-negative integer")
                })?
            }
            "on_infeasible" => {
                policy = match value.as_str() {
                    Some("fallback") => InfeasiblePolicy::FallbackEvaluateAll,
                    Some("error") => InfeasiblePolicy::Error,
                    _ => {
                        return Err(ApiError::bad_request(
                            "\"on_infeasible\" must be \"fallback\" or \"error\"",
                        ))
                    }
                }
            }
            other => return Err(ApiError::bad_request(format!("unknown field {other:?}"))),
        }
    }
    let table = table.ok_or_else(|| ApiError::bad_request("missing \"table\""))?;
    let query = query.ok_or_else(|| ApiError::bad_request("missing \"query\""))?;
    let request = parse_query(query)?
        .with_seed(seed)
        .with_on_infeasible(policy);
    Ok(ApiQuery {
        tenant,
        table,
        request,
    })
}

fn parse_table(value: &JsonValue, max_rows: usize) -> Result<TableKey, ApiError> {
    if !matches!(value, JsonValue::Object(_)) {
        return Err(ApiError::bad_request("\"table\" must be an object"));
    }
    let (mut spec, mut rows, mut seed) = (None, None, 0u64);
    for key in value.keys() {
        let field = value.get(key).expect("listed key is present");
        match key {
            "spec" => {
                spec = Some(
                    field
                        .as_str()
                        .ok_or_else(|| ApiError::bad_request("\"table.spec\" must be a string"))?
                        .to_owned(),
                )
            }
            "rows" => {
                rows = Some(field.as_u64().ok_or_else(|| {
                    ApiError::bad_request("\"table.rows\" must be a non-negative integer")
                })? as usize)
            }
            "seed" => {
                seed = field.as_u64().ok_or_else(|| {
                    ApiError::bad_request("\"table.seed\" must be a non-negative integer")
                })?
            }
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown table field {other:?}"
                )))
            }
        }
    }
    let spec = spec.ok_or_else(|| ApiError::bad_request("missing \"table.spec\""))?;
    let rows = rows.ok_or_else(|| ApiError::bad_request("missing \"table.rows\""))?;
    if !crate::tenant::known_spec(&spec) {
        return Err(ApiError::bad_request(format!(
            "unknown table spec {spec:?} (available: prosper, lc)"
        )));
    }
    if rows == 0 || rows > max_rows {
        return Err(ApiError::bad_request(format!(
            "\"table.rows\" must be in 1..={max_rows}, got {rows}"
        )));
    }
    Ok(TableKey { spec, rows, seed })
}

/// Largest accepted `imputations` value. The engine only checks `>= 1`,
/// so without an API-side ceiling a single admitted request could
/// command unbounded CPU — the same admission-control hole `max_rows`
/// closes for table size.
pub const MAX_IMPUTATIONS: u64 = 100;

/// Largest accepted `rounds` value (same rationale as
/// [`MAX_IMPUTATIONS`]).
pub const MAX_ROUNDS: u64 = 64;

/// The `query` object's shared contract fields, collected before the
/// kind-specific interpretation.
struct QueryFields<'a> {
    kind: &'a str,
    alpha: f64,
    beta: f64,
    rho: f64,
    cost: CostModel,
    predictor: Option<String>,
    label_fraction: f64,
    sample_fraction: f64,
    corr: CorrelationModel,
    imputations: usize,
    rounds: usize,
    predicate: Option<String>,
    optimize: bool,
}

fn parse_query(value: &JsonValue) -> Result<QueryRequest, ApiError> {
    if !matches!(value, JsonValue::Object(_)) {
        return Err(ApiError::bad_request("\"query\" must be an object"));
    }
    let mut f = QueryFields {
        kind: "",
        alpha: 0.8,
        beta: 0.8,
        rho: 0.8,
        cost: CostModel::PAPER_DEFAULT,
        predictor: None,
        label_fraction: 0.01,
        sample_fraction: 0.05,
        corr: CorrelationModel::Independent,
        imputations: 5,
        rounds: 2,
        predicate: None,
        optimize: true,
    };
    let number = |field: &JsonValue, name: &str| {
        field
            .as_f64()
            .ok_or_else(|| ApiError::bad_request(format!("{name:?} must be a number")))
    };
    // A fraction knob sizes a sample or labeling budget relative to the
    // table, so anything outside (0, 1] is either meaningless or a
    // request for more-than-the-table work.
    let fraction = |field: &JsonValue, name: &str| {
        let n = number(field, name)?;
        if n > 0.0 && n <= 1.0 {
            Ok(n)
        } else {
            Err(ApiError::bad_request(format!(
                "{name:?} must be in (0, 1], got {n}"
            )))
        }
    };
    let bounded = |field: &JsonValue, name: &str, max: u64| {
        let n = field
            .as_u64()
            .ok_or_else(|| ApiError::bad_request(format!("{name:?} must be an integer")))?;
        if (1..=max).contains(&n) {
            Ok(n as usize)
        } else {
            Err(ApiError::bad_request(format!(
                "{name:?} must be in 1..={max}, got {n}"
            )))
        }
    };
    for key in value.keys() {
        let field = value.get(key).expect("listed key is present");
        match key {
            "kind" => {
                f.kind = field
                    .as_str()
                    .ok_or_else(|| ApiError::bad_request("\"query.kind\" must be a string"))?
            }
            "alpha" => f.alpha = number(field, "alpha")?,
            "beta" => f.beta = number(field, "beta")?,
            "rho" => f.rho = number(field, "rho")?,
            "cost" => f.cost = parse_cost(field)?,
            "predictor" => {
                f.predictor = Some(
                    field
                        .as_str()
                        .ok_or_else(|| ApiError::bad_request("\"predictor\" must be a string"))?
                        .to_owned(),
                )
            }
            "label_fraction" => f.label_fraction = fraction(field, "label_fraction")?,
            "sample_fraction" => f.sample_fraction = fraction(field, "sample_fraction")?,
            "corr" => {
                f.corr = match field.as_str() {
                    Some("independent") => CorrelationModel::Independent,
                    Some("unknown") => CorrelationModel::Unknown,
                    _ => {
                        return Err(ApiError::bad_request(
                            "\"corr\" must be \"independent\" or \"unknown\"",
                        ))
                    }
                }
            }
            "imputations" => f.imputations = bounded(field, "imputations", MAX_IMPUTATIONS)?,
            "rounds" => f.rounds = bounded(field, "rounds", MAX_ROUNDS)?,
            "predicate" => {
                f.predicate = Some(
                    field
                        .as_str()
                        .ok_or_else(|| ApiError::bad_request("\"predicate\" must be a string"))?
                        .to_owned(),
                )
            }
            "optimize" => {
                f.optimize = field
                    .as_bool()
                    .ok_or_else(|| ApiError::bad_request("\"optimize\" must be a boolean"))?
            }
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown query field {other:?}"
                )))
            }
        }
    }
    // The contract is validated here (fallibly) so a bad request is a 400
    // at the door; the engine re-validates on submit regardless.
    let spec = QuerySpec::try_new(f.alpha, f.beta, f.rho, f.cost).map_err(ApiError::from)?;
    let needs_predictor = || {
        f.predictor.clone().ok_or_else(|| {
            ApiError::bad_request(format!("query kind {:?} requires \"predictor\"", f.kind))
        })
    };
    match f.kind {
        "naive" => Ok(QueryRequest::naive(spec)),
        "learning" => Ok(QueryRequest::learning(spec)),
        "multiple" => Ok(QueryRequest::multiple(spec, f.imputations)),
        "optimal" => Ok(QueryRequest::optimal(spec, needs_predictor()?)),
        "adaptive" => Ok(QueryRequest::adaptive(spec, f.corr, needs_predictor()?)),
        "iterative" => Ok(QueryRequest::iterative(
            spec,
            f.corr,
            needs_predictor()?,
            SampleSizeRule::Fraction(f.sample_fraction),
            f.rounds,
        )),
        "intel_sample" => {
            let predictor = match f.predictor {
                Some(column) => PredictorChoice::Fixed(column),
                None => PredictorChoice::Auto {
                    label_fraction: f.label_fraction,
                },
            };
            Ok(QueryRequest::intel_sample(IntelSampleConfig {
                spec,
                rule: SampleSizeRule::Fraction(f.sample_fraction),
                corr: f.corr,
                predictor,
            }))
        }
        "expr" => {
            let predicate = f.predicate.ok_or_else(|| {
                ApiError::bad_request("query kind \"expr\" requires \"predicate\"")
            })?;
            // Every identifier resolves to an oracle leaf over the column
            // of that name; a column the table lacks is caught by strategy
            // validation (404 unknown_column), a malformed string here
            // (400 bad_expression).
            let expr = expred_udf::parse_predicate(&predicate, &expred_udf::OracleRegistry::new())
                .map_err(|e| ApiError::from(EngineError::from(e)))?;
            Ok(if f.optimize {
                QueryRequest::expr_scan_optimized(expr, f.cost)
            } else {
                QueryRequest::expr_scan(expr, f.cost)
            })
        }
        "" => Err(ApiError::bad_request("missing \"query.kind\"")),
        other => Err(ApiError::bad_request(format!(
            "unknown query kind {other:?} (available: naive, intel_sample, optimal, \
             adaptive, iterative, learning, multiple, expr)"
        ))),
    }
}

fn parse_cost(value: &JsonValue) -> Result<CostModel, ApiError> {
    if !matches!(value, JsonValue::Object(_)) {
        return Err(ApiError::bad_request("\"cost\" must be an object"));
    }
    let mut cost = CostModel::PAPER_DEFAULT;
    for key in value.keys() {
        let field = value.get(key).expect("listed key is present");
        let n = field
            .as_f64()
            .ok_or_else(|| ApiError::bad_request(format!("cost field {key:?} must be a number")))?;
        match key {
            "retrieve" => cost.retrieve = n,
            "evaluate" => cost.evaluate = n,
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown cost field {other:?}"
                )))
            }
        }
    }
    Ok(cost)
}

/// Renders a 200 body for one outcome. Deliberately *excludes*
/// `compute_seconds` (wall-clock noise) so the body is a pure function
/// of the outcome the engine memoizes — the end-to-end tests assert an
/// HTTP answer is byte-identical to a direct submit rendered the same
/// way.
pub fn render_outcome(tenant: &str, outcome: &RunOutcome) -> String {
    let n = JsonValue::Number;
    JsonValue::Object(vec![
        ("tenant".into(), JsonValue::String(tenant.to_owned())),
        (
            "returned".into(),
            JsonValue::Array(outcome.returned.iter().map(|&id| n(id as f64)).collect()),
        ),
        (
            "counts".into(),
            JsonValue::Object(vec![
                ("retrieved".into(), n(outcome.counts.retrieved as f64)),
                ("evaluated".into(), n(outcome.counts.evaluated as f64)),
                ("cache_hits".into(), n(outcome.counts.cache_hits as f64)),
                ("reuse_hits".into(), n(outcome.counts.reuse_hits as f64)),
            ]),
        ),
        ("cost".into(), n(outcome.cost)),
        ("precision".into(), n(outcome.summary.precision)),
        ("recall".into(), n(outcome.summary.recall)),
        ("num_groups".into(), n(outcome.num_groups as f64)),
        (
            "plan_feasible".into(),
            JsonValue::Bool(outcome.plan_feasible),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> Result<ApiQuery, ApiError> {
        parse_query_body(body.as_bytes(), 100_000)
    }

    #[test]
    fn parses_a_full_request() {
        let q = parse(
            r#"{"tenant": "alice",
                "table": {"spec": "prosper", "rows": 2000, "seed": 7},
                "query": {"kind": "optimal", "alpha": 0.9, "predictor": "grade"},
                "seed": 42, "on_infeasible": "error"}"#,
        )
        .expect("parses");
        assert_eq!(q.tenant.as_deref(), Some("alice"));
        assert_eq!(
            q.table,
            TableKey {
                spec: "prosper".into(),
                rows: 2000,
                seed: 7
            }
        );
        assert_eq!(q.request.seed(), 42);
        assert_eq!(q.request.infeasible_policy(), InfeasiblePolicy::Error);
        assert_eq!(q.request.strategy().name(), "optimal");
    }

    #[test]
    fn defaults_are_the_paper_defaults() {
        let q = parse(
            r#"{"table": {"spec": "lc", "rows": 100},
                "query": {"kind": "naive"}}"#,
        )
        .unwrap();
        assert!(q.tenant.is_none());
        assert_eq!(q.request.seed(), 0);
        assert_eq!(
            q.request.infeasible_policy(),
            InfeasiblePolicy::FallbackEvaluateAll
        );
        assert_eq!(q.request.strategy().name(), "naive");
    }

    #[test]
    fn every_kind_parses() {
        for (kind, extra) in [
            ("naive", ""),
            ("learning", ""),
            ("multiple", r#", "imputations": 3"#),
            ("optimal", r#", "predictor": "grade""#),
            ("adaptive", r#", "predictor": "grade", "corr": "unknown""#),
            (
                "iterative",
                r#", "predictor": "grade", "rounds": 3, "sample_fraction": 0.1"#,
            ),
            ("intel_sample", ""),
            ("intel_sample", r#", "predictor": "grade""#),
        ] {
            let body = format!(
                r#"{{"table": {{"spec": "prosper", "rows": 50}},
                     "query": {{"kind": "{kind}"{extra}}}}}"#
            );
            let q = parse(&body).unwrap_or_else(|e| panic!("kind {kind}: {e:?}"));
            assert_eq!(q.request.strategy().name(), kind);
        }
    }

    #[test]
    fn expr_kind_parses_predicates() {
        let q = parse(
            r#"{"table": {"spec": "prosper", "rows": 100},
                "query": {"kind": "expr", "predicate": "udf_label and (vip or not flagged)"}}"#,
        )
        .expect("parses");
        assert_eq!(q.request.strategy().name(), "expr_scan");
        // The default submits through the optimizer; "optimize": false
        // must produce a *distinct* request identity (different bill).
        let raw = parse(
            r#"{"table": {"spec": "prosper", "rows": 100},
                "query": {"kind": "expr", "predicate": "udf_label", "optimize": false}}"#,
        )
        .unwrap();
        let opt = parse(
            r#"{"table": {"spec": "prosper", "rows": 100},
                "query": {"kind": "expr", "predicate": "udf_label"}}"#,
        )
        .unwrap();
        assert_eq!(raw.request.strategy().name(), "expr_scan");
        let identity = |q: &ApiQuery| {
            expred_core::strategy::StrategyIdentity::of(q.request.strategy()).digest64()
        };
        assert_ne!(
            identity(&raw),
            identity(&opt),
            "optimize flag must enter the request identity"
        );
    }

    #[test]
    fn bad_predicates_are_400_bad_expression() {
        for (predicate, needle) in [
            ("udf_label and (oops", "unexpected end"),
            ("a and and b", "unexpected token"),
            ("a & b", "unexpected character"),
            (")", "unmatched"),
            ("", "empty predicate"),
        ] {
            let body = format!(
                r#"{{"table": {{"spec": "prosper", "rows": 10}},
                     "query": {{"kind": "expr", "predicate": "{predicate}"}}}}"#
            );
            let err = parse(&body).expect_err(predicate);
            assert_eq!(err.status, 400, "{predicate}");
            assert_eq!(err.kind, "bad_expression", "{predicate}");
            assert!(err.detail.contains(needle), "{predicate}: {}", err.detail);
        }
        let missing =
            parse(r#"{"table": {"spec": "prosper", "rows": 10}, "query": {"kind": "expr"}}"#)
                .expect_err("predicate required");
        assert!(missing.detail.contains("requires \"predicate\""));
        let wrong_type = parse(
            r#"{"table": {"spec": "prosper", "rows": 10},
                "query": {"kind": "expr", "predicate": "udf_label", "optimize": 1}}"#,
        )
        .expect_err("optimize must be a bool");
        assert!(wrong_type.detail.contains("\"optimize\" must be a boolean"));
    }

    #[test]
    fn rejections_are_400s_with_reasons() {
        for (body, needle) in [
            ("not json", "not valid JSON"),
            ("[1]", "must be a JSON object"),
            (
                r#"{"table": {"spec": "prosper", "rows": 10}}"#,
                "missing \"query\"",
            ),
            (r#"{"query": {"kind": "naive"}}"#, "missing \"table\""),
            (
                r#"{"table": {"spec": "nope", "rows": 10}, "query": {"kind": "naive"}}"#,
                "unknown table spec",
            ),
            (
                r#"{"table": {"spec": "prosper", "rows": 0}, "query": {"kind": "naive"}}"#,
                "table.rows",
            ),
            (
                r#"{"table": {"spec": "prosper", "rows": 10}, "query": {"kind": "zigzag"}}"#,
                "unknown query kind",
            ),
            (
                r#"{"table": {"spec": "prosper", "rows": 10}, "query": {"kind": "optimal"}}"#,
                "requires \"predictor\"",
            ),
            (
                r#"{"table": {"spec": "prosper", "rows": 10}, "query": {"kind": "naive"}, "oops": 1}"#,
                "unknown field",
            ),
            (
                r#"{"table": {"spec": "prosper", "rows": 10}, "query": {"kind": "naive", "turbo": 1}}"#,
                "unknown query field",
            ),
            (
                r#"{"table": {"spec": "prosper", "rows": 10}, "query": {"kind": "naive"}, "seed": -1}"#,
                "seed",
            ),
            (
                r#"{"table": {"spec": "prosper", "rows": 10}, "query": {"kind": "multiple", "imputations": 10000000000}}"#,
                "\"imputations\" must be in 1..=",
            ),
            (
                r#"{"table": {"spec": "prosper", "rows": 10}, "query": {"kind": "multiple", "imputations": 0}}"#,
                "\"imputations\" must be in 1..=",
            ),
            (
                r#"{"table": {"spec": "prosper", "rows": 10}, "query": {"kind": "iterative", "predictor": "grade", "rounds": 9999}}"#,
                "\"rounds\" must be in 1..=",
            ),
            (
                r#"{"table": {"spec": "prosper", "rows": 10}, "query": {"kind": "intel_sample", "sample_fraction": 1.5}}"#,
                "\"sample_fraction\" must be in (0, 1]",
            ),
            (
                r#"{"table": {"spec": "prosper", "rows": 10}, "query": {"kind": "intel_sample", "label_fraction": 0}}"#,
                "\"label_fraction\" must be in (0, 1]",
            ),
        ] {
            let err = parse(body).expect_err(body);
            assert_eq!(err.status, 400, "{body}");
            assert!(
                err.detail.contains(needle),
                "{body}: {} !~ {needle}",
                err.detail
            );
        }
    }

    #[test]
    fn invalid_contract_surfaces_the_engine_error() {
        let err = parse(
            r#"{"table": {"spec": "prosper", "rows": 10},
                "query": {"kind": "naive", "alpha": 1.5}}"#,
        )
        .expect_err("alpha out of range");
        assert_eq!(err.status, 400);
        assert_eq!(err.kind, "invalid_spec");
    }

    #[test]
    fn row_cap_is_enforced() {
        let err = parse_query_body(
            br#"{"table": {"spec": "prosper", "rows": 999}, "query": {"kind": "naive"}}"#,
            500,
        )
        .expect_err("row cap");
        assert!(err.detail.contains("1..=500"));
    }

    #[test]
    fn status_mapping_covers_every_engine_error_variant() {
        let cases = [
            (
                EngineError::InvalidSpec {
                    field: "alpha",
                    value: 2.0,
                    expected: "in [0, 1]",
                },
                400,
                "invalid_spec",
            ),
            (
                EngineError::UnknownColumn {
                    column: "x".into(),
                    available: vec![],
                },
                404,
                "unknown_column",
            ),
            (
                EngineError::Infeasible {
                    strategy: "naive".into(),
                },
                422,
                "infeasible",
            ),
            (
                EngineError::BadExpression { reason: "r".into() },
                400,
                "bad_expression",
            ),
            (
                EngineError::InvalidRequest { reason: "r".into() },
                400,
                "invalid_request",
            ),
            (
                EngineError::Unavailable {
                    endpoint: "127.0.0.1:9099".into(),
                    reason: "circuit breaker open".into(),
                },
                503,
                "unavailable",
            ),
        ];
        for (error, status, kind) in cases {
            assert_eq!(engine_error_status(&error), status, "{error}");
            assert_eq!(engine_error_kind(&error), kind, "{error}");
            let api: ApiError = error.into();
            assert_eq!(api.status, status);
            assert!(api.body().contains(kind));
        }
    }

    #[test]
    fn error_bodies_are_json() {
        let body = ApiError::bad_request("quote \" here").body();
        let doc = JsonValue::parse(&body).expect("error body parses");
        assert_eq!(doc.get("error").unwrap().as_str(), Some("bad_request"));
        assert_eq!(doc.get("detail").unwrap().as_str(), Some("quote \" here"));
    }
}
