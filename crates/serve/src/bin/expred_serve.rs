//! `expred-serve` — run the serving tier from the command line.
//!
//! ```text
//! expred-serve [--addr HOST:PORT] [--max-in-flight N] [--max-connections N]
//!              [--max-tenants N] [--max-rows N] [--pool]
//!              [--udf-latency-us MICROS]
//! ```

use expred_serve::{serve, ServeConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: expred-serve [--addr HOST:PORT] [--max-in-flight N] [--max-connections N]\n\
         \x20                   [--max-tenants N] [--max-rows N] [--pool]\n\
         \x20                   [--udf-latency-us MICROS]"
    );
    std::process::exit(2);
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(parsed) => parsed,
        None => {
            eprintln!("expred-serve: {flag} needs a valid value");
            usage();
        }
    }
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse_value(&arg, args.next()),
            "--max-in-flight" => config.max_in_flight = parse_value(&arg, args.next()),
            "--max-connections" => config.max_connections = parse_value(&arg, args.next()),
            "--max-tenants" => config.max_tenants = parse_value(&arg, args.next()),
            "--max-rows" => config.max_rows = parse_value(&arg, args.next()),
            "--pool" => config.pooled = true,
            "--udf-latency-us" => {
                config.udf_latency = Duration::from_micros(parse_value(&arg, args.next()))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("expred-serve: unknown flag {other}");
                usage();
            }
        }
    }
    let handle = match serve(&*addr, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("expred-serve: failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("expred-serve listening on http://{}", handle.local_addr());
    println!("routes: GET /health, GET /metrics, GET /metrics.json, POST /query");
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
