//! `expred-serve` — run the serving tier from the command line.
//!
//! ```text
//! expred-serve [--addr HOST:PORT] [--max-in-flight N] [--max-connections N]
//!              [--max-tenants N] [--max-rows N] [--pool]
//!              [--udf-latency-us MICROS] [--data-dir PATH]
//!              [--cache-ttl-secs SECS]
//! ```
//!
//! With `--data-dir`, every tenant's engine persists its paid-for answers
//! under `<data-dir>/<tenant>/`, and `SIGTERM`/`SIGINT` trigger a graceful
//! drain: stop accepting, finish in-flight requests, flush persistence,
//! exit 0. A subsequent boot with the same `--data-dir` rehydrates the
//! answers and serves repeats at zero fresh UDF cost (warm restart).

use expred_serve::{serve, ServeConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: expred-serve [--addr HOST:PORT] [--max-in-flight N] [--max-connections N]\n\
         \x20                   [--max-tenants N] [--max-rows N] [--pool]\n\
         \x20                   [--udf-latency-us MICROS] [--data-dir PATH]\n\
         \x20                   [--cache-ttl-secs SECS]"
    );
    std::process::exit(2);
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(parsed) => parsed,
        None => {
            eprintln!("expred-serve: {flag} needs a valid value");
            usage();
        }
    }
}

/// Set by the signal handler; the main loop polls it. A handler may only
/// do async-signal-safe work, and a relaxed atomic store is exactly that.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }
    // `signal(2)` via the C library std already links against — SIGTERM
    // is 15 and SIGINT is 2 on every Unix we target.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(15, on_signal); // SIGTERM
        signal(2, on_signal); // SIGINT
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse_value(&arg, args.next()),
            "--max-in-flight" => config.max_in_flight = parse_value(&arg, args.next()),
            "--max-connections" => config.max_connections = parse_value(&arg, args.next()),
            "--max-tenants" => config.max_tenants = parse_value(&arg, args.next()),
            "--max-rows" => config.max_rows = parse_value(&arg, args.next()),
            "--pool" => config.pooled = true,
            "--udf-latency-us" => {
                config.udf_latency = Duration::from_micros(parse_value(&arg, args.next()))
            }
            "--data-dir" => {
                config.data_dir = Some(std::path::PathBuf::from(parse_value::<String>(
                    &arg,
                    args.next(),
                )))
            }
            "--cache-ttl-secs" => {
                config.cache_ttl = Some(Duration::from_secs(parse_value(&arg, args.next())))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("expred-serve: unknown flag {other}");
                usage();
            }
        }
    }
    install_signal_handlers();
    let mut handle = match serve(&*addr, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("expred-serve: failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("expred-serve listening on http://{}", handle.local_addr());
    println!("routes: GET /health, GET /metrics, GET /metrics.json, POST /query");
    // Serve until signalled, then drain gracefully (finish in-flight
    // requests, flush tenant persistence) and exit cleanly.
    while !SHUTDOWN.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("expred-serve: shutdown signal received; draining");
    handle.shutdown();
    drop(handle);
    eprintln!("expred-serve: drained; exiting");
}
