//! A minimal blocking HTTP/1.1 client over one keep-alive connection.
//!
//! This exists for the load generator and the integration tests: both
//! need to speak real TCP to the server without external dependencies.
//! It reuses the server-side reader ([`crate::http::read_request`] has
//! its mirror here in [`HttpClient::roundtrip`]) but stays deliberately
//! small — one connection, sequential requests, no redirects, no TLS.

use crate::http::reason_phrase;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A single keep-alive connection to the server.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects to `addr` with a generous read timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
        })
    }

    /// Sends one request and reads the response. `content_type` is only
    /// attached when a body is present.
    pub fn roundtrip(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: localhost\r\n");
        if !body.is_empty() {
            head.push_str("content-type: application/json\r\n");
        }
        head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.roundtrip("GET", path, &[])
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.roundtrip("POST", path, body.as_bytes())
    }

    /// Sends raw bytes down the socket and reads one response — for
    /// malformed-request tests that must bypass the well-formed writer.
    pub fn raw(&mut self, bytes: &[u8]) -> std::io::Result<ClientResponse> {
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let status_line = self.read_line()?;
        let mut parts = status_line.splitn(3, ' ');
        let _version = parts.next();
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad status line: {status_line}")))?;
        debug_assert!(!reason_phrase(status).is_empty());
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_owned();
                if name == "content-length" {
                    content_length = value
                        .parse()
                        .map_err(|_| std::io::Error::other("bad content-length"))?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}
