//! The TCP front-end: accept loop, thread-per-connection keep-alive
//! handling, routing, and failure isolation.
//!
//! Request flow for `POST /query`, in admission order:
//!
//! 1. **Gate** — take an in-flight slot, or answer `429` immediately
//!    (with `Retry-After`) without touching any engine state.
//! 2. **Parse** — decode the JSON body into an [`ApiQuery`]; malformed
//!    bodies answer `400` (or `413` past the body limit).
//! 3. **Route** — resolve the tenant session; a full registry answers
//!    `503` with `Retry-After`.
//! 4. **Submit** — run on the tenant's engine; [`EngineError`]s map to
//!    their documented 4xx statuses, and a handler panic is caught and
//!    answered as `500` without killing the connection thread or the
//!    accept loop.
//!
//! Each connection gets its own thread, holds one slot in a bounded
//! **connection gate** (excess connections are answered `503` +
//! `Retry-After` inline on the accept thread, before any thread is
//! spawned), and serves any number of pipelined keep-alive requests.
//! Idle connections wait in short poll quanta so a shutdown drains
//! them promptly; the idle read timeout
//! ([`crate::http::IDLE_TIMEOUT`]) still reclaims abandoned sockets.
//! Shutdown is graceful: stop accepting, then wait for in-flight
//! connections to finish up to [`ServeConfig::drain_deadline`].
//!
//! [`EngineError`]: expred_core::EngineError

use crate::api::{self, ApiError, ApiQuery};
use crate::gate::{AdmissionGate, OwnedGatePass};
use crate::http::{read_request, HttpError, HttpRequest, HttpResponse, Limits, IDLE_TIMEOUT};
use crate::metrics::{MetricsContext, ServeMetrics};
use crate::tenant::{EngineConfig, TenantError, TenantRegistry};
use expred_remote::RemoteClient;
use std::io::{BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often an idle connection re-checks the shutdown flag while
/// waiting for its next request.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Server tuning knobs.
#[derive(Clone)]
pub struct ServeConfig {
    /// Concurrent `/query` requests allowed past the admission gate.
    pub max_in_flight: usize,
    /// Concurrent TCP connections allowed; excess are refused with a
    /// `503` before a connection thread is even spawned.
    pub max_connections: usize,
    /// How long a graceful shutdown waits for live connections to
    /// finish before giving up on them.
    pub drain_deadline: Duration,
    /// Distinct tenant sessions the registry will create.
    pub max_tenants: usize,
    /// Materialized tables kept per tenant (LRU past this).
    pub max_tables_per_tenant: usize,
    /// Largest `table.rows` a query may ask to generate.
    pub max_rows: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Build tenant engines on the worker pool instead of sequential.
    pub pooled: bool,
    /// Artificial per-evaluation UDF latency (load testing).
    pub udf_latency: Duration,
    /// A remote UDF client whose wire counters (retries, hedges,
    /// timeouts, breaker state) are exported through `GET /metrics`.
    pub remote: Option<Arc<RemoteClient>>,
    /// Root directory for durable per-tenant persistence: tenant engines
    /// spill fresh answers to WAL-backed stores under
    /// `<data_dir>/<tenant>/` and rehydrate them on the next boot, so a
    /// warm restart re-serves previously-paid answers at zero `o_e`.
    /// `None` (the default) serves fully in-memory.
    pub data_dir: Option<std::path::PathBuf>,
    /// Row-tier answer TTL for tenant engines; with `data_dir` set, the
    /// age survives restarts. `None` disables expiry.
    pub cache_ttl: Option<Duration>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("max_in_flight", &self.max_in_flight)
            .field("max_connections", &self.max_connections)
            .field("drain_deadline", &self.drain_deadline)
            .field("max_tenants", &self.max_tenants)
            .field("max_tables_per_tenant", &self.max_tables_per_tenant)
            .field("max_rows", &self.max_rows)
            .field("max_body_bytes", &self.max_body_bytes)
            .field("pooled", &self.pooled)
            .field("udf_latency", &self.udf_latency)
            .field("remote", &self.remote.as_ref().map(|c| c.endpoint()))
            .field("data_dir", &self.data_dir)
            .field("cache_ttl", &self.cache_ttl)
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 64,
            max_connections: 256,
            drain_deadline: Duration::from_secs(5),
            max_tenants: 32,
            max_tables_per_tenant: 8,
            max_rows: 1_000_000,
            max_body_bytes: 1 << 20,
            pooled: false,
            udf_latency: Duration::ZERO,
            remote: None,
            data_dir: None,
            cache_ttl: None,
        }
    }
}

struct Shared {
    config: ServeConfig,
    gate: AdmissionGate,
    connections: Arc<AdmissionGate>,
    metrics: ServeMetrics,
    tenants: TenantRegistry,
    shutting_down: AtomicBool,
}

impl Shared {
    fn metrics_context(&self) -> MetricsContext<'_> {
        MetricsContext {
            gate: &self.gate,
            connections: &self.connections,
            tenants: &self.tenants,
            remote: self
                .config
                .remote
                .as_ref()
                .map(|client| (client.endpoint().to_owned(), client.stats())),
        }
    }
}

/// A running server. Dropping the handle shuts the listener down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// Binds `addr` and starts accepting connections on a background
/// thread. Bind to port 0 to let the OS pick (tests do this).
pub fn serve(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        gate: AdmissionGate::new(config.max_in_flight),
        connections: Arc::new(AdmissionGate::new(config.max_connections)),
        tenants: TenantRegistry::new(
            config.max_tenants,
            config.max_tables_per_tenant,
            EngineConfig {
                pooled: config.pooled,
                udf_latency: config.udf_latency,
                data_dir: config.data_dir.clone(),
                cache_ttl: config.cache_ttl,
            },
        ),
        metrics: ServeMetrics::new(),
        shutting_down: AtomicBool::new(false),
        config,
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("expred-serve-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(ServerHandle {
        shared,
        local_addr,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The live serving metrics.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// The admission gate (counters: admitted/shed/in-flight).
    pub fn gate(&self) -> &AdmissionGate {
        &self.shared.gate
    }

    /// The connection gate (counters: open/shed connections).
    pub fn connections(&self) -> &AdmissionGate {
        &self.shared.connections
    }

    /// The tenant registry (inspect engines in tests).
    pub fn tenants(&self) -> &TenantRegistry {
        &self.shared.tenants
    }

    /// Graceful shutdown: stops the accept loop, then waits (up to
    /// [`ServeConfig::drain_deadline`]) for live connections to finish
    /// their current request and release their connection-gate slot.
    /// Idle keep-alive connections notice within one poll quantum.
    pub fn shutdown(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept() call with a throwaway connection. A
        // wildcard bind address (0.0.0.0 / [::]) is not reliably
        // connectable on every platform, so aim the wake-up at the
        // matching loopback address instead.
        let mut wake_addr = self.local_addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr {
                std::net::SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake_addr, Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Drain: connection threads are detached, so wait on the gate
        // they hold slots in rather than joining them. A request that
        // outlives the deadline is abandoned (its thread exits on its
        // own once the response write fails or completes).
        let deadline = Instant::now() + self.shared.config.drain_deadline;
        while self.shared.connections.in_flight() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        // With persistence configured, push every tenant's durable state
        // to disk now, deterministically — not via Drop ordering, which a
        // straggler connection thread holding the `Arc<Shared>` could
        // postpone past process exit.
        if self.shared.config.data_dir.is_some() {
            for tenant in self.shared.tenants.snapshot() {
                if let Err(e) = tenant.engine().flush_persistence() {
                    eprintln!(
                        "expred-serve: tenant {:?} flush on shutdown failed: {e}",
                        tenant.name()
                    );
                }
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failures (EMFILE under fd
                // exhaustion, ECONNABORTED) would otherwise busy-spin
                // this loop at 100% CPU exactly when the server is
                // already overloaded.
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        shared
            .metrics
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        // Take a connection slot BEFORE spawning: a flood of sockets
        // past the bound costs one inline refusal write each, never an
        // unbounded pile of threads.
        let Some(pass) = shared.connections.try_acquire_owned() else {
            refuse_connection(stream, &shared);
            continue;
        };
        let conn_shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("expred-serve-conn".into())
            .spawn(move || connection_loop(stream, conn_shared, pass));
    }
}

/// Answers `503` + `Retry-After` inline on the accept thread. The write
/// is bounded by a short timeout so a slow-reading flooder cannot stall
/// the accept loop.
fn refuse_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let error = ApiError {
        status: 503,
        kind: "connections_exhausted",
        detail: format!(
            "all {} connection slots are in use; retry shortly",
            shared.connections.capacity()
        ),
    };
    let retry_after = shared.connections.retry_after_hint().to_string();
    let response = HttpResponse::json(error.status, error.body())
        .with_header("retry-after", retry_after.as_str());
    shared.metrics.record_status(response.status);
    let _ = response.write_to(&mut stream, false);
    let _ = stream.shutdown(Shutdown::Both);
}

fn connection_loop(stream: TcpStream, shared: Arc<Shared>, _pass: OwnedGatePass) {
    let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let limits = Limits {
        max_body_bytes: shared.config.max_body_bytes,
        ..Limits::default()
    };
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut idle_since = Instant::now();
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        // Idle wait in short quanta: when no request bytes are pending,
        // peek with a small timeout so a shutdown drains this
        // connection within one quantum instead of one IDLE_TIMEOUT.
        // (The read timeout lives on the shared socket, so it must be
        // restored before the real request read below.)
        if reader.buffer().is_empty() {
            let _ = writer.set_read_timeout(Some(IDLE_POLL));
            let mut peeked = [0u8; 1];
            match writer.peek(&mut peeked) {
                Ok(0) => break, // peer closed
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if idle_since.elapsed() >= IDLE_TIMEOUT {
                        break; // abandoned socket: reclaim as before
                    }
                    continue;
                }
                Err(_) => break,
            }
            let _ = writer.set_read_timeout(Some(IDLE_TIMEOUT));
        }
        let request = match read_request(&mut reader, &limits) {
            Ok(request) => request,
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => break,
            Err(HttpError::Malformed(reason)) => {
                let error = ApiError::bad_request(format!("malformed request: {reason}"));
                let response = HttpResponse::json(error.status, error.body());
                shared.metrics.record_status(response.status);
                let _ = response.write_to(&mut writer, false);
                break;
            }
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                let error = ApiError {
                    status: 413,
                    kind: "body_too_large",
                    detail: format!("declared body of {declared} bytes exceeds limit {limit}"),
                };
                let response = HttpResponse::json(error.status, error.body());
                shared.metrics.record_status(response.status);
                let _ = response.write_to(&mut writer, false);
                break;
            }
        };
        let keep_alive = request.keep_alive();
        let response = dispatch(&request, &shared);
        shared.metrics.record_status(response.status);
        if response.write_to(&mut writer, keep_alive).is_err() {
            break;
        }
        if writer.flush().is_err() || !keep_alive {
            break;
        }
        idle_since = Instant::now();
    }
    let _ = writer.shutdown(Shutdown::Both);
}

fn dispatch(request: &HttpRequest, shared: &Shared) -> HttpResponse {
    let started = Instant::now();
    let path = request.path();
    match (request.method.as_str(), path) {
        ("GET", "/health") => {
            let response = HttpResponse::text(200, "ok\n");
            shared.metrics.health.observe(started.elapsed());
            response
        }
        ("GET", "/metrics") => {
            let body = shared.metrics.render_text(&shared.metrics_context());
            let response = HttpResponse::text(200, body);
            shared.metrics.metrics.observe(started.elapsed());
            response
        }
        ("GET", "/metrics.json") => {
            let body = shared.metrics.render_json(&shared.metrics_context());
            let response = HttpResponse::json(200, body);
            shared.metrics.metrics.observe(started.elapsed());
            response
        }
        ("POST", "/query") => {
            let response = query_route(request, shared);
            shared.metrics.query.observe(started.elapsed());
            response
        }
        (_, "/health" | "/metrics" | "/metrics.json" | "/query") => {
            let error = ApiError {
                status: 405,
                kind: "method_not_allowed",
                detail: format!("{} is not supported on {path}", request.method),
            };
            HttpResponse::json(error.status, error.body())
        }
        _ => {
            let error = ApiError {
                status: 404,
                kind: "not_found",
                detail: format!("no route for {path}"),
            };
            HttpResponse::json(error.status, error.body())
        }
    }
}

/// The `/query` route. The gate slot is taken before the body is even
/// parsed, so shed requests do constant work and provably never reach a
/// tenant engine.
fn query_route(request: &HttpRequest, shared: &Shared) -> HttpResponse {
    let Some(_pass) = shared.gate.try_acquire() else {
        let error = ApiError {
            status: 429,
            kind: "saturated",
            detail: format!(
                "all {} in-flight slots are busy; retry shortly",
                shared.gate.capacity()
            ),
        };
        let retry_after = shared.gate.retry_after_hint().to_string();
        return HttpResponse::json(error.status, error.body())
            .with_header("retry-after", retry_after.as_str());
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| handle_query(request, shared)));
    match outcome {
        Ok(Ok(body)) => HttpResponse::json(200, body),
        Ok(Err(error)) => {
            let response = HttpResponse::json(error.status, error.body());
            if error.status == 503 || error.status == 429 {
                // Load-derived hint: the busier the gate, the longer
                // the suggested back-off, with deterministic jitter.
                let retry_after = shared.gate.retry_after_hint().to_string();
                response.with_header("retry-after", retry_after.as_str())
            } else {
                response
            }
        }
        Err(_) => {
            shared.metrics.panics.fetch_add(1, Ordering::Relaxed);
            let error = ApiError {
                status: 500,
                kind: "internal",
                detail: "query handler panicked; see server logs".into(),
            };
            HttpResponse::json(error.status, error.body())
        }
    }
}

fn handle_query(request: &HttpRequest, shared: &Shared) -> Result<String, ApiError> {
    let query: ApiQuery = api::parse_query_body(&request.body, shared.config.max_rows)?;
    let tenant_name = request
        .header("x-tenant")
        .map(str::to_owned)
        .or(query.tenant.clone())
        .unwrap_or_else(|| "default".to_owned());
    let tenant =
        shared
            .tenants
            .route(&tenant_name)
            .map_err(|TenantError::Exhausted { limit }| ApiError {
                status: 503,
                kind: "tenants_exhausted",
                detail: format!(
                    "tenant registry is at its bound of {limit}; retry an existing tenant"
                ),
            })?;
    let dataset = tenant.dataset(&query.table);
    let outcome = tenant
        .engine()
        .submit(&dataset, &query.request)
        .map_err(ApiError::from)?;
    Ok(api::render_outcome(&tenant_name, &outcome))
}
