//! The serving tier: a std-only TCP HTTP/1.1 front-end over expred's
//! concurrent [`QueryEngine`].
//!
//! No external dependencies — the HTTP codec ([`http`]), the JSON wire
//! schema ([`api`], on top of [`expred_stats::json`]), and the client
//! ([`client`]) are all hand-rolled on `std::net`. The server composes
//! five small layers:
//!
//! * [`http`] — HTTP/1.1 parsing and serialization with keep-alive and
//!   `Content-Length` framing, byte-budgeted against hostile input.
//! * [`api`] — the JSON request/response schema: `/query` bodies become
//!   [`expred_core::QueryRequest`]s, [`expred_core::RunOutcome`]s become
//!   response bodies, and every [`expred_core::EngineError`] variant has
//!   a documented status code.
//! * [`tenant`] — tenant id → isolated engine session, lazily created
//!   and bounded; tables are tenant-local and LRU-bounded.
//! * [`gate`] — admission control: a lock-free bounded in-flight gate
//!   that sheds with `429` *before* any engine work happens.
//! * [`metrics`] — lock-free counters and log-bucketed latency
//!   histograms behind `GET /metrics` (exposition text) and
//!   `GET /metrics.json`.
//!
//! [`server`] ties them together (routes: `GET /health`, `GET /metrics`,
//! `GET /metrics.json`, `POST /query`); [`serve`] starts it:
//!
//! ```
//! use expred_serve::{serve, HttpClient, ServeConfig};
//!
//! let handle = serve("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let mut client = HttpClient::connect(handle.local_addr()).unwrap();
//! let body = r#"{"table":{"spec":"prosper","rows":200},"query":{"kind":"naive"}}"#;
//! let response = client.post("/query", body).unwrap();
//! assert_eq!(response.status, 200);
//! ```
//!
//! [`QueryEngine`]: expred_core::QueryEngine

pub mod api;
pub mod client;
pub mod gate;
pub mod http;
pub mod metrics;
pub mod server;
pub mod tenant;

pub use api::{engine_error_kind, engine_error_status, ApiError, ApiQuery, TableKey};
pub use client::{ClientResponse, HttpClient};
pub use gate::{AdmissionGate, GatePass, OwnedGatePass};
pub use http::{HttpError, HttpRequest, HttpResponse, Limits};
pub use metrics::{LatencyHistogram, MetricsContext, RouteMetrics, ServeMetrics};
pub use server::{serve, ServeConfig, ServerHandle};
pub use tenant::{EngineConfig, Tenant, TenantError, TenantRegistry};
