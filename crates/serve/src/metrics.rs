//! Live serving metrics: lock-free counters and latency histograms,
//! rendered as exposition text (`GET /metrics`) or JSON
//! (`GET /metrics.json`).
//!
//! Everything here is updated on the request path, so it is all atomics:
//! counters are relaxed `fetch_add`s and the histograms are fixed arrays
//! of atomic buckets — no locks, no allocation per observation. The
//! renderers pull the engine-side counters ([`expred_core::EngineStats`],
//! [`expred_exec::CacheStats`], [`expred_core::ResultMemoStats`]) per
//! tenant through the same `fields()` → [`counters_to_text`] /
//! [`counters_to_json`] funnel the bench artifacts use, so both exports
//! agree on names.

use crate::gate::AdmissionGate;
use crate::tenant::TenantRegistry;
use expred_remote::RemoteStatsSnapshot;
use expred_stats::json::{counters_to_json, counters_to_text, escape, fmt_f64};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Everything the renderers snapshot besides [`ServeMetrics`] itself:
/// the two admission gates, the tenant registry, and (when the server
/// fronts a remote UDF backend) that client's wire counters.
pub struct MetricsContext<'a> {
    /// The `/query` in-flight gate.
    pub gate: &'a AdmissionGate,
    /// The connection gate (open-connection gauge + shed counter).
    pub connections: &'a AdmissionGate,
    /// Per-tenant engines.
    pub tenants: &'a TenantRegistry,
    /// `(endpoint, counters)` of the remote UDF client, if configured.
    pub remote: Option<(String, RemoteStatsSnapshot)>,
}

/// Log-scale latency histogram over microseconds.
///
/// Bucket `i` covers `[2^(i-1), 2^i)` µs (bucket 0 is `< 1` µs); the
/// last bucket absorbs everything ≥ ~17 minutes. Quantiles are resolved
/// to a bucket's upper bound, so they are conservative (never
/// under-report) with ≤ 2× resolution — plenty for p50/p99 dashboards.
pub struct LatencyHistogram {
    buckets: [AtomicU64; Self::BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl LatencyHistogram {
    const BUCKETS: usize = 31;

    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; Self::BUCKETS],
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    fn bucket_index(micros: u64) -> usize {
        let bits = 64 - micros.leading_zeros() as usize;
        bits.min(Self::BUCKETS - 1)
    }

    /// Upper bound of bucket `i`, in microseconds.
    fn bucket_upper_micros(index: usize) -> u64 {
        if index >= Self::BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << index
        }
    }

    /// Records one observation.
    pub fn observe(&self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_micros.load(Ordering::Relaxed) as f64 / count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as a bucket upper bound in
    /// microseconds; 0 when empty.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let snapshot: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in snapshot.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return Self::bucket_upper_micros(i);
            }
        }
        Self::bucket_upper_micros(Self::BUCKETS - 1)
    }

    /// Median, in microseconds.
    pub fn p50_micros(&self) -> u64 {
        self.quantile_micros(0.50)
    }

    /// 99th percentile, in microseconds.
    pub fn p99_micros(&self) -> u64 {
        self.quantile_micros(0.99)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One route's request counter and latency histogram.
pub struct RouteMetrics {
    /// Route name as exported (`query`, `metrics`, `health`).
    pub name: &'static str,
    /// Requests that reached this route's handler.
    pub requests: AtomicU64,
    /// End-to-end handler latency (parse → response built).
    pub latency: LatencyHistogram,
}

impl RouteMetrics {
    const fn new(name: &'static str) -> Self {
        Self {
            name,
            requests: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    /// Records one handled request.
    pub fn observe(&self, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.latency.observe(latency);
    }
}

/// The server-wide counters backing `GET /metrics`.
pub struct ServeMetrics {
    /// Connections accepted by the listener.
    pub connections_accepted: AtomicU64,
    /// Requests answered, by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses (client errors, including 429 sheds).
    pub responses_4xx: AtomicU64,
    /// 5xx responses (panics and tenant-capacity refusals).
    pub responses_5xx: AtomicU64,
    /// Handler panics converted to 500s.
    pub panics: AtomicU64,
    /// `/query` route metrics.
    pub query: RouteMetrics,
    /// `/metrics` + `/metrics.json` route metrics.
    pub metrics: RouteMetrics,
    /// `/health` route metrics.
    pub health: RouteMetrics,
}

impl ServeMetrics {
    /// Fresh, all-zero metrics.
    pub const fn new() -> Self {
        Self {
            connections_accepted: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            query: RouteMetrics::new("query"),
            metrics: RouteMetrics::new("metrics"),
            health: RouteMetrics::new("health"),
        }
    }

    /// Buckets a response status into its class counter.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            500..=599 => &self.responses_5xx,
            _ => &self.responses_4xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn routes(&self) -> [&RouteMetrics; 3] {
        [&self.query, &self.metrics, &self.health]
    }

    fn server_counters(&self, ctx: &MetricsContext<'_>) -> Vec<(&'static str, u64)> {
        vec![
            (
                "connections_accepted",
                self.connections_accepted.load(Ordering::Relaxed),
            ),
            ("connections_open", ctx.connections.in_flight() as u64),
            ("connections_capacity", ctx.connections.capacity() as u64),
            ("connections_shed", ctx.connections.shed()),
            ("responses_2xx", self.responses_2xx.load(Ordering::Relaxed)),
            ("responses_4xx", self.responses_4xx.load(Ordering::Relaxed)),
            ("responses_5xx", self.responses_5xx.load(Ordering::Relaxed)),
            ("panics", self.panics.load(Ordering::Relaxed)),
            ("admitted", ctx.gate.admitted()),
            ("shed", ctx.gate.shed()),
            ("in_flight", ctx.gate.in_flight() as u64),
            ("in_flight_capacity", ctx.gate.capacity() as u64),
        ]
    }

    /// Exposition-format text for `GET /metrics`: serving counters,
    /// per-route latency summaries, remote-UDF client counters (when a
    /// backend is configured), then per-tenant engine counters.
    pub fn render_text(&self, ctx: &MetricsContext<'_>) -> String {
        let tenants = ctx.tenants;
        let mut out = counters_to_text("serve", &[], &self.server_counters(ctx));
        for route in self.routes() {
            let labels = [("route", route.name)];
            out.push_str(&counters_to_text(
                "serve_route",
                &labels,
                &[
                    ("requests", route.requests.load(Ordering::Relaxed)),
                    ("latency_p50_micros", route.latency.p50_micros()),
                    ("latency_p99_micros", route.latency.p99_micros()),
                ],
            ));
        }
        if let Some((endpoint, snapshot)) = &ctx.remote {
            let labels = [("endpoint", endpoint.as_str())];
            out.push_str(&counters_to_text("remote_udf", &labels, &snapshot.fields()));
        }
        for tenant in tenants.snapshot() {
            let name = tenant.name().to_owned();
            let labels = [("tenant", name.as_str())];
            let engine = tenant.engine();
            out.push_str(&counters_to_text(
                "engine",
                &labels,
                &engine.stats().fields(),
            ));
            out.push_str(&counters_to_text(
                "engine_cache",
                &labels,
                &engine.cache_stats().fields(),
            ));
            out.push_str(&counters_to_text(
                "engine_memo",
                &labels,
                &engine.result_memo_stats().fields(),
            ));
            if let Some(persist) = engine.persist_stats() {
                out.push_str(&counters_to_text(
                    "engine_persist",
                    &labels,
                    &persist.fields(),
                ));
            }
            let _ = writeln!(
                out,
                "engine_tables{{tenant=\"{}\"}} {}",
                escape(&name),
                tenant.table_count()
            );
        }
        out
    }

    /// JSON snapshot for `GET /metrics.json` — same numbers, one object.
    /// The `"remote"` key is present only when a backend is configured.
    pub fn render_json(&self, ctx: &MetricsContext<'_>) -> String {
        let tenants = ctx.tenants;
        let mut out = String::from("{\"server\":");
        out.push_str(&counters_to_json(&self.server_counters(ctx)));
        out.push_str(",\"routes\":{");
        for (i, route) in self.routes().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"requests\":{},\"latency_p50_micros\":{},\"latency_p99_micros\":{},\"latency_mean_micros\":{}}}",
                route.name,
                route.requests.load(Ordering::Relaxed),
                route.latency.p50_micros(),
                route.latency.p99_micros(),
                fmt_f64(route.latency.mean_micros()),
            );
        }
        out.push('}');
        if let Some((endpoint, snapshot)) = &ctx.remote {
            let _ = write!(
                out,
                ",\"remote\":{{\"endpoint\":\"{}\",\"counters\":{}}}",
                escape(endpoint),
                counters_to_json(&snapshot.fields()),
            );
        }
        out.push_str(",\"tenants\":{");
        for (i, tenant) in tenants.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let engine = tenant.engine();
            let _ = write!(
                out,
                "\"{}\":{{\"engine\":{},\"cache\":{},\"result_memo\":{},",
                escape(tenant.name()),
                counters_to_json(&engine.stats().fields()),
                counters_to_json(&engine.cache_stats().fields()),
                counters_to_json(&engine.result_memo_stats().fields()),
            );
            if let Some(persist) = engine.persist_stats() {
                let _ = write!(out, "\"persist\":{},", counters_to_json(&persist.fields()));
            }
            let _ = write!(out, "\"tables\":{}}}", tenant.table_count());
        }
        out.push_str("}}");
        out
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::EngineConfig;
    use expred_stats::json::JsonValue;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50_micros(), 0, "empty histogram reads zero");
        for micros in [3u64, 3, 3, 3, 3, 3, 3, 3, 3, 1000] {
            h.observe(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 10);
        // 3 µs lands in (2,4]; its conservative upper bound is 4.
        assert_eq!(h.p50_micros(), 4);
        // The single 1 ms outlier owns the p99 rank (ceil(0.99*10)=10).
        assert_eq!(h.p99_micros(), 1024);
        assert!((h.mean_micros() - 102.7).abs() < 1e-9);
    }

    #[test]
    fn histogram_extremes_stay_in_range() {
        let h = LatencyHistogram::new();
        h.observe(Duration::ZERO);
        assert_eq!(h.p50_micros(), 1, "sub-microsecond bucket upper bound");
        h.observe(Duration::from_secs(10_000_000));
        assert_eq!(h.p99_micros(), u64::MAX, "overflow bucket is absorbing");
    }

    fn context<'a>(
        gate: &'a AdmissionGate,
        connections: &'a AdmissionGate,
        tenants: &'a TenantRegistry,
        remote: Option<(String, RemoteStatsSnapshot)>,
    ) -> MetricsContext<'a> {
        MetricsContext {
            gate,
            connections,
            tenants,
            remote,
        }
    }

    #[test]
    fn render_text_has_serving_route_and_tenant_lines() {
        let metrics = ServeMetrics::new();
        let gate = AdmissionGate::new(4);
        let connections = AdmissionGate::new(64);
        let tenants = TenantRegistry::new(4, 2, EngineConfig::default());
        tenants.route("acme").unwrap();
        metrics.record_status(200);
        metrics.query.observe(Duration::from_micros(120));
        let text = metrics.render_text(&context(&gate, &connections, &tenants, None));
        assert!(text.contains("serve_responses_2xx 1\n"));
        assert!(text.contains("serve_in_flight_capacity 4\n"));
        assert!(text.contains("serve_connections_capacity 64\n"));
        assert!(text.contains("serve_connections_open 0\n"));
        assert!(text.contains("serve_route_requests{route=\"query\"} 1\n"));
        assert!(text.contains("serve_route_latency_p50_micros{route=\"query\"} 128\n"));
        assert!(text.contains("engine_queries{tenant=\"acme\"} 0\n"));
        assert!(text.contains("engine_cache_hits{tenant=\"acme\"} 0\n"));
        assert!(text.contains("engine_memo_hits{tenant=\"acme\"} 0\n"));
        assert!(text.contains("engine_tables{tenant=\"acme\"} 0\n"));
        assert!(
            !text.contains("remote_udf_"),
            "no remote section without a backend"
        );
    }

    #[test]
    fn render_exports_persist_counters_only_with_persistence() {
        let metrics = ServeMetrics::new();
        let gate = AdmissionGate::new(4);
        let connections = AdmissionGate::new(64);
        // In-memory tenants: no persist section anywhere.
        let tenants = TenantRegistry::new(4, 2, EngineConfig::default());
        tenants.route("mem").unwrap();
        let text = metrics.render_text(&context(&gate, &connections, &tenants, None));
        assert!(!text.contains("engine_persist_"));
        let doc =
            JsonValue::parse(&metrics.render_json(&context(&gate, &connections, &tenants, None)))
                .unwrap();
        let mem = doc.get("tenants").unwrap().get("mem").unwrap();
        assert!(mem.get("persist").is_none());
        assert!(mem.get("tables").is_some(), "object closes correctly");

        // Persistent tenants: both renderers grow a persist section.
        let root = std::env::temp_dir().join(format!(
            "expred-metrics-persist-{}-{:p}",
            std::process::id(),
            &metrics as *const _
        ));
        let persistent = TenantRegistry::new(
            4,
            2,
            EngineConfig {
                data_dir: Some(root.clone()),
                ..EngineConfig::default()
            },
        );
        persistent.route("disk").unwrap();
        let text = metrics.render_text(&context(&gate, &connections, &persistent, None));
        assert!(text.contains("engine_persist_appended{tenant=\"disk\"} 0\n"));
        assert!(text.contains("engine_persist_rehydrated_rows{tenant=\"disk\"} 0\n"));
        let doc = JsonValue::parse(&metrics.render_json(&context(
            &gate,
            &connections,
            &persistent,
            None,
        )))
        .expect("valid JSON with persist section");
        let disk = doc.get("tenants").unwrap().get("disk").unwrap();
        let persist = disk.get("persist").unwrap();
        assert_eq!(persist.get("appended").unwrap().as_u64(), Some(0));
        assert_eq!(
            persist.get("rehydrated_namespaces").unwrap().as_u64(),
            Some(0)
        );
        drop(persistent);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn render_text_exports_remote_counters_when_configured() {
        let metrics = ServeMetrics::new();
        let gate = AdmissionGate::new(4);
        let connections = AdmissionGate::new(64);
        let tenants = TenantRegistry::new(4, 2, EngineConfig::default());
        let snapshot = RemoteStatsSnapshot {
            requests: 10,
            retries: 3,
            ..RemoteStatsSnapshot::default()
        };
        let remote = Some(("10.0.0.7:9400".to_owned(), snapshot));
        let text = metrics.render_text(&context(&gate, &connections, &tenants, remote));
        assert!(text.contains("remote_udf_requests{endpoint=\"10.0.0.7:9400\"} 10\n"));
        assert!(text.contains("remote_udf_retries{endpoint=\"10.0.0.7:9400\"} 3\n"));
        assert!(text.contains("remote_udf_breaker_opens{endpoint=\"10.0.0.7:9400\"} 0\n"));
    }

    #[test]
    fn render_json_is_parseable_and_complete() {
        let metrics = ServeMetrics::new();
        let gate = AdmissionGate::new(2);
        let connections = AdmissionGate::new(8);
        let tenants = TenantRegistry::new(4, 2, EngineConfig::default());
        tenants.route("a").unwrap();
        tenants.route("b").unwrap();
        metrics.record_status(429);
        metrics.record_status(500);
        let plain = metrics.render_json(&context(&gate, &connections, &tenants, None));
        let doc = JsonValue::parse(&plain).expect("valid JSON");
        let server = doc.get("server").unwrap();
        assert_eq!(server.get("responses_4xx").unwrap().as_u64(), Some(1));
        assert_eq!(server.get("responses_5xx").unwrap().as_u64(), Some(1));
        assert_eq!(server.get("in_flight_capacity").unwrap().as_u64(), Some(2));
        assert_eq!(
            server.get("connections_capacity").unwrap().as_u64(),
            Some(8)
        );
        assert!(doc.get("remote").is_none(), "no remote key without backend");
        let routes = doc.get("routes").unwrap();
        for name in ["query", "metrics", "health"] {
            assert!(routes.get(name).is_some(), "route {name} exported");
        }
        let tenants_obj = doc.get("tenants").unwrap();
        for name in ["a", "b"] {
            let t = tenants_obj.get(name).unwrap();
            assert_eq!(
                t.get("engine").unwrap().get("queries").unwrap().as_u64(),
                Some(0)
            );
            assert!(t.get("cache").is_some());
            assert!(t.get("result_memo").is_some());
        }
        let snapshot = RemoteStatsSnapshot {
            hedges: 2,
            hedge_wins: 1,
            ..RemoteStatsSnapshot::default()
        };
        let remote = Some(("backend:1".to_owned(), snapshot));
        let with_remote = metrics.render_json(&context(&gate, &connections, &tenants, remote));
        let doc = JsonValue::parse(&with_remote).expect("valid JSON with remote");
        let remote_obj = doc.get("remote").unwrap();
        assert_eq!(
            remote_obj.get("endpoint").unwrap().as_str(),
            Some("backend:1")
        );
        let counters = remote_obj.get("counters").unwrap();
        assert_eq!(counters.get("hedges").unwrap().as_u64(), Some(2));
        assert_eq!(counters.get("hedge_wins").unwrap().as_u64(), Some(1));
    }
}
