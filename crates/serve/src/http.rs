//! A minimal HTTP/1.1 codec over std I/O: request parsing with
//! content-length framing, response writing, keep-alive.
//!
//! The workspace builds offline, so there is no hyper/axum to lean on —
//! and none is needed: the serving tier speaks exactly the slice of
//! HTTP/1.1 a query front-end requires (request line, headers,
//! `Content-Length` bodies, persistent connections). Everything outside
//! that slice is rejected *as a protocol error the connection can
//! survive*: a malformed request becomes a 400 response, not a worker
//! panic.
//!
//! Framing rules implemented here:
//!
//! * request line + headers are bounded by [`Limits::max_head_bytes`];
//!   bodies by [`Limits::max_body_bytes`] (413 when exceeded);
//! * a body is read iff `Content-Length` is present (chunked
//!   transfer-encoding is refused — this is a JSON API, not a proxy);
//! * HTTP/1.1 connections persist unless either side says
//!   `Connection: close`; HTTP/1.0 closes unless `keep-alive` is asked.

use std::io::{BufRead, Write};
use std::time::Duration;

/// Hard bounds a connection's input must respect.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Max bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Max bytes of declared body.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path plus optional query string).
    pub target: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Headers, names lowercased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (before any `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The target's raw query string (after the first `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Whether the connection should persist after this exchange.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed cleanly before sending a request line — the normal
    /// end of a keep-alive connection, not an error to report.
    Closed,
    /// Transport failure mid-request.
    Io(std::io::Error),
    /// Protocol violation; the payload is the human-readable reason.
    /// Maps to 400.
    Malformed(String),
    /// The declared body exceeds [`Limits::max_body_bytes`]. Maps to 413.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured bound.
        limit: usize,
    },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(reason) => write!(f, "malformed request: {reason}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds limit {limit}")
            }
        }
    }
}

/// Reads one line terminated by `\n` (tolerating a trailing `\r`),
/// charging its bytes against `budget`.
fn read_line(
    reader: &mut impl BufRead,
    budget: &mut usize,
    first_line: bool,
) -> Result<String, HttpError> {
    let mut raw = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return if first_line && raw.is_empty() {
                    Err(HttpError::Closed)
                } else {
                    Err(HttpError::Malformed("unexpected end of stream".into()))
                };
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(HttpError::Malformed("request head too large".into()));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    break;
                }
                raw.push(byte[0]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| HttpError::Malformed("non-UTF-8 in request head".into()))
}

/// Reads one request off the connection. Blocks until a full request
/// arrives, the peer closes ([`HttpError::Closed`]), or the stream's read
/// timeout fires ([`HttpError::Io`]).
pub fn read_request(reader: &mut impl BufRead, limits: &Limits) -> Result<HttpRequest, HttpError> {
    let mut budget = limits.max_head_bytes;
    let request_line = read_line(reader, &mut budget, true)?;
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_owned(), t.to_owned(), v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpError::Malformed(format!(
                "unsupported version {other:?}"
            )))
        }
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut budget, false)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let request = HttpRequest {
        method,
        target,
        http11,
        headers,
        body: Vec::new(),
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Malformed(
            "transfer-encoding is not supported; send Content-Length".into(),
        ));
    }
    let declared = match request.header("content-length") {
        None => 0,
        Some(text) => text
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {text:?}")))?,
    };
    if declared > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            declared,
            limit: limits.max_body_bytes,
        });
    }
    let mut request = request;
    if declared > 0 {
        let mut body = vec![0u8; declared];
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                HttpError::Malformed("body shorter than content-length".into())
            } else {
                HttpError::Io(e)
            }
        })?;
        request.body = body;
    }
    Ok(request)
}

/// One response under construction.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the framing set the writer adds.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// An empty response with this status.
    pub fn new(status: u16) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A response carrying a JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self::new(status)
            .with_header("content-type", "application/json")
            .with_body(body.into().into_bytes())
    }

    /// A response carrying a plain-text body.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self::new(status)
            .with_header("content-type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// Appends one header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Sets the body.
    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Serializes the response, adding `Content-Length` and the
    /// `Connection` header (`keep-alive`/`close` per `keep_alive`).
    pub fn write_to(&self, writer: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("content-length: {}\r\n", self.body.len()));
        head.push_str(if keep_alive {
            "connection: keep-alive\r\n"
        } else {
            "connection: close\r\n"
        });
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Per-connection socket read timeout: a idle keep-alive connection held
/// open longer than this is closed so its thread can be reclaimed.
pub const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<HttpRequest, HttpError> {
        read_request(&mut BufReader::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /query?x=1 HTTP/1.1\r\nHost: h\r\nX-Tenant: alice\r\n\
              Content-Length: 4\r\n\r\nbody",
        )
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/query");
        assert_eq!(req.query(), Some("x=1"));
        assert_eq!(req.header("x-tenant"), Some("alice"));
        assert_eq!(req.header("X-TENANT"), Some("alice"));
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_header_controls_persistence() {
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close.keep_alive());
        let old = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!old.keep_alive(), "HTTP/1.0 defaults to close");
        let old_ka = parse(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(old_ka.keep_alive());
    }

    #[test]
    fn malformed_requests_are_malformed_errors() {
        for bad in [
            &b"NOT_A_REQUEST\r\n\r\n"[..],
            b"GET / HTTP/2\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad header line\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: oops\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(HttpError::Malformed(_))),
                "accepted: {}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn clean_eof_is_closed_not_malformed() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
        assert!(matches!(parse(b"GET"), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn body_and_head_limits_are_enforced() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        let over_body = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        match read_request(&mut BufReader::new(&over_body[..]), &limits) {
            Err(HttpError::BodyTooLarge {
                declared: 9,
                limit: 8,
            }) => {}
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
        let huge_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        assert!(matches!(
            read_request(&mut BufReader::new(huge_head.as_bytes()), &limits),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn two_requests_frame_cleanly_on_one_stream() {
        let stream: &[u8] = b"POST /query HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                              GET /metrics HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(stream);
        let first = read_request(&mut reader, &Limits::default()).unwrap();
        assert_eq!(first.body, b"hi");
        let second = read_request(&mut reader, &Limits::default()).unwrap();
        assert_eq!(second.path(), "/metrics");
        assert!(matches!(
            read_request(&mut reader, &Limits::default()),
            Err(HttpError::Closed)
        ));
    }

    #[test]
    fn responses_serialize_with_framing_headers() {
        let mut out = Vec::new();
        HttpResponse::json(200, "{\"ok\":true}")
            .with_header("retry-after", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        HttpResponse::text(429, "shed")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("connection: close\r\n"));
    }
}
