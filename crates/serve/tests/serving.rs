//! End-to-end tests over real TCP: a served engine must be
//! indistinguishable from a direct [`QueryEngine::submit`] — byte-for-byte
//! on success bodies — while the HTTP edge alone absorbs malformed
//! input, saturation, and tenant exhaustion.

use expred_core::{QueryEngine, QueryRequest, QuerySpec};
use expred_serve::{serve, HttpClient, ServeConfig, TableKey};
use expred_stats::json::JsonValue;
use expred_table::datasets::{Dataset, DatasetSpec, LENDING_CLUB, PROSPER};
use expred_udf::CostModel;
use std::time::Duration;

fn small_config() -> ServeConfig {
    ServeConfig {
        max_rows: 5_000,
        ..ServeConfig::default()
    }
}

/// The direct-submit mirror of what the server does for one tenant:
/// one engine plus one table instance per [`TableKey`], exactly like the
/// tenant session, so memo hits and cross-query cache reuse line up.
struct Mirror {
    engine: QueryEngine,
    tables: std::collections::HashMap<TableKey, Dataset>,
}

impl Mirror {
    fn new() -> Self {
        Self {
            engine: QueryEngine::new(),
            tables: std::collections::HashMap::new(),
        }
    }

    /// Submits directly and renders with the same writer the HTTP layer
    /// uses.
    fn submit(&mut self, tenant: &str, key: &TableKey, request: &QueryRequest) -> String {
        let ds = self.tables.entry(key.clone()).or_insert_with(|| {
            let base = match key.spec.as_str() {
                "prosper" => PROSPER,
                "lc" => LENDING_CLUB,
                other => panic!("unknown spec {other}"),
            };
            Dataset::generate(
                DatasetSpec {
                    rows: key.rows,
                    ..base
                },
                key.seed,
            )
        });
        let outcome = self
            .engine
            .submit(ds, request)
            .expect("mirror submit succeeds");
        expred_serve::api::render_outcome(tenant, &outcome)
    }
}

#[test]
fn health_metrics_and_routing() {
    let handle = serve("127.0.0.1:0", small_config()).unwrap();
    let mut client = HttpClient::connect(handle.local_addr()).unwrap();

    let health = client.get("/health").unwrap();
    assert_eq!((health.status, health.body_text().as_str()), (200, "ok\n"));

    let missing = client.get("/no/such/route").unwrap();
    assert_eq!(missing.status, 404);
    assert!(missing.body_text().contains("\"error\":\"not_found\""));

    let wrong_method = client.post("/metrics", "{}").unwrap();
    assert_eq!(wrong_method.status, 405);

    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.body_text();
    assert!(text.contains("serve_connections_accepted 1\n"));
    assert!(text.contains("serve_route_requests{route=\"health\"} 1\n"));

    let json = client.get("/metrics.json").unwrap();
    let doc = JsonValue::parse(&json.body_text()).expect("metrics.json parses");
    assert!(doc.get("server").is_some());
    assert!(doc.get("routes").unwrap().get("query").is_some());
}

#[test]
fn concurrent_clients_match_direct_submit_byte_identically() {
    let handle = serve("127.0.0.1:0", small_config()).unwrap();
    let addr = handle.local_addr();

    // Each thread is one tenant running a sequence of distinct queries
    // over its own keep-alive connection. The mirror replays the same
    // sequence, in the same order, on a private engine — so memo hits,
    // cache reuse, and bills line up exactly, and every HTTP body must
    // equal the direct render byte-for-byte.
    let workers: Vec<_> = (0..4)
        .map(|worker| {
            std::thread::spawn(move || {
                let tenant = format!("tenant-{worker}");
                let mut mirror = Mirror::new();
                let mut client = HttpClient::connect(addr).unwrap();
                for step in 0..6u64 {
                    // Repeat step 0's query verbatim at step 5: the
                    // second serve answers from the result memo and must
                    // still render identically to the mirror's memoized
                    // outcome.
                    let (spec_name, rows, table_seed, query_seed) = if step == 5 {
                        ("prosper", 300, 7, 0)
                    } else if step % 2 == 0 {
                        ("prosper", 300, 7, step)
                    } else {
                        ("lc", 250, 8, step)
                    };
                    let body = format!(
                        "{{\"tenant\":\"{tenant}\",\
                         \"table\":{{\"spec\":\"{spec_name}\",\"rows\":{rows},\"seed\":{table_seed}}},\
                         \"seed\":{query_seed},\
                         \"query\":{{\"kind\":\"intel_sample\",\"predictor\":\"grade\"}}}}"
                    );
                    let response = client.post("/query", &body).unwrap();
                    assert_eq!(response.status, 200, "worker {worker} step {step}");

                    let key = TableKey {
                        spec: spec_name.into(),
                        rows,
                        seed: table_seed,
                    };
                    let request = QueryRequest::intel_sample(expred_core::IntelSampleConfig {
                        spec: QuerySpec::paper_default(),
                        rule: expred_core::SampleSizeRule::Fraction(0.05),
                        corr: expred_core::CorrelationModel::Independent,
                        predictor: expred_core::PredictorChoice::Fixed("grade".into()),
                    })
                    .with_seed(query_seed);
                    let expected = mirror.submit(&tenant, &key, &request);
                    assert_eq!(
                        response.body_text(),
                        expected,
                        "worker {worker} step {step}: HTTP body must be byte-identical"
                    );
                }
                mirror.engine.session_counts()
            })
        })
        .collect();
    let mirror_counts: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // Bill conservation per tenant: the served engine was charged exactly
    // what the mirror was.
    for (worker, expected) in mirror_counts.iter().enumerate() {
        let tenant = handle.tenants().route(&format!("tenant-{worker}")).unwrap();
        assert_eq!(
            tenant.engine().session_counts(),
            *expected,
            "tenant-{worker} bill diverged from direct submit"
        );
        assert_eq!(tenant.engine().stats().queries, 6);
        assert_eq!(
            tenant.engine().stats().result_hits,
            1,
            "the repeated step answered from the memo"
        );
    }
}

#[test]
fn engine_error_variants_map_to_documented_statuses() {
    let handle = serve("127.0.0.1:0", small_config()).unwrap();
    let mut client = HttpClient::connect(handle.local_addr()).unwrap();
    let table = "\"table\":{\"spec\":\"prosper\",\"rows\":200}";

    // InvalidSpec → 400: contract parameters out of range.
    let r = client
        .post(
            "/query",
            &format!("{{{table},\"query\":{{\"kind\":\"naive\",\"alpha\":1.5}}}}"),
        )
        .unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body_text().contains("\"error\":\"invalid_spec\""));

    // UnknownColumn → 404: well-formed request, nonexistent predictor.
    let r = client
        .post(
            "/query",
            &format!(
                "{{{table},\"query\":{{\"kind\":\"optimal\",\"predictor\":\"no_such_column\"}}}}"
            ),
        )
        .unwrap();
    assert_eq!(r.status, 404);
    assert!(r.body_text().contains("\"error\":\"unknown_column\""));

    // Work-multiplier fields are admission-controlled at the API door,
    // so requests the engine would reject as InvalidRequest (and
    // unbounded ones it would happily run) are a 400 before any engine
    // touch. The InvalidRequest → 400 mapping itself is unit-tested in
    // `api::tests::status_mapping_covers_every_engine_error_variant`.
    for query in [
        "{\"kind\":\"iterative\",\"predictor\":\"grade\",\"rounds\":0}",
        "{\"kind\":\"multiple\",\"imputations\":10000000000}",
        "{\"kind\":\"intel_sample\",\"sample_fraction\":2.0}",
    ] {
        let r = client
            .post("/query", &format!("{{{table},\"query\":{query}}}"))
            .unwrap();
        assert_eq!(r.status, 400, "{query}");
        assert!(
            r.body_text().contains("\"error\":\"bad_request\""),
            "{query}"
        );
    }

    // Infeasible → 422: near-certain contract under the adversarial
    // correlation model, with the strict policy requested.
    let r = client
        .post(
            "/query",
            &format!(
                "{{{table},\"on_infeasible\":\"error\",\
                 \"query\":{{\"kind\":\"intel_sample\",\"predictor\":\"grade\",\
                 \"alpha\":0.999,\"beta\":0.999,\"rho\":0.999,\"corr\":\"unknown\"}}}}"
            ),
        )
        .unwrap();
    assert_eq!(r.status, 422);
    assert!(r.body_text().contains("\"error\":\"infeasible\""));

    // BadExpression has no HTTP surface (the wire schema only names
    // single predicates); its mapping is pinned by the unit test
    // `status_mapping_covers_every_engine_error_variant`.

    // Only the Infeasible probe counts as an engine query: InvalidSpec
    // never left the parser, and UnknownColumn failed `validate` before
    // the engine's query counter.
    let tenant = handle.tenants().route("default").unwrap();
    assert_eq!(tenant.engine().stats().queries, 1);
}

#[test]
fn malformed_http_and_json_answer_4xx() {
    let handle = serve("127.0.0.1:0", small_config()).unwrap();
    let addr = handle.local_addr();

    // Garbage on the wire → 400, connection closed.
    let mut client = HttpClient::connect(addr).unwrap();
    let r = client.raw(b"NOT A REQUEST\r\n\r\n").unwrap();
    assert_eq!(r.status, 400);
    assert_eq!(r.header("connection"), Some("close"));

    // Invalid JSON body → 400 with offset detail.
    let mut client = HttpClient::connect(addr).unwrap();
    let r = client.post("/query", "{\"table\": nope}").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body_text().contains("not valid JSON"));

    // Unknown fields are rejected, not ignored.
    let r = client
        .post(
            "/query",
            "{\"table\":{\"spec\":\"prosper\",\"rows\":10},\"query\":{\"kind\":\"naive\"},\"frobnicate\":1}",
        )
        .unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body_text().contains("unknown field"));

    // Missing required pieces.
    let r = client.post("/query", "{}").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body_text().contains("missing \\\"table\\\"") || r.body_text().contains("missing"));

    // Declared body beyond the limit → 413 before the body is read.
    let mut client = HttpClient::connect(addr).unwrap();
    let r = client
        .raw(b"POST /query HTTP/1.1\r\nhost: x\r\ncontent-length: 99999999\r\n\r\n")
        .unwrap();
    assert_eq!(r.status, 413);

    // Rows beyond the configured bound → 400 (admission over memory).
    let mut client = HttpClient::connect(addr).unwrap();
    let r = client
        .post(
            "/query",
            "{\"table\":{\"spec\":\"prosper\",\"rows\":999999},\"query\":{\"kind\":\"naive\"}}",
        )
        .unwrap();
    assert_eq!(r.status, 400);

    // None of this ever created a tenant or touched an engine.
    assert!(handle.tenants().is_empty());
}

#[test]
fn saturation_sheds_immediately_and_conserves_the_bill() {
    // One slot, and every fresh evaluation takes 2ms — a naive query
    // over 400 rows holds the slot for ~1s.
    let handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            max_in_flight: 1,
            udf_latency: Duration::from_millis(2),
            max_rows: 5_000,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();
    let body = "{\"table\":{\"spec\":\"prosper\",\"rows\":400},\"query\":{\"kind\":\"naive\"}}";

    let slow = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).unwrap();
        client.post("/query", body).unwrap()
    });
    // Wait until the slow query actually holds the slot.
    while handle.gate().in_flight() == 0 {
        std::thread::yield_now();
    }

    // Everything else is shed in constant time with a load-derived
    // retry hint: the gate is at capacity, so the base hint is its
    // maximum (4) plus the deterministic 0/1 shed-count jitter.
    for _ in 0..5 {
        let mut client = HttpClient::connect(addr).unwrap();
        let shed = client.post("/query", body).unwrap();
        assert_eq!(shed.status, 429);
        let hint: u64 = shed
            .header("retry-after")
            .expect("shed response carries a retry hint")
            .parse()
            .expect("retry-after is integral seconds");
        assert!((4..=5).contains(&hint), "full gate hints 4-5s, got {hint}");
        assert!(shed.body_text().contains("\"error\":\"saturated\""));
    }

    let admitted = slow.join().unwrap();
    assert_eq!(admitted.status, 200, "in-flight request completed normally");
    assert_eq!(handle.gate().shed(), 5);
    assert_eq!(handle.gate().admitted(), 1);

    // Exact bill conservation: the tenant engine was charged for the one
    // admitted query and nothing else — shed requests never reached it.
    let mut mirror = Mirror::new();
    let expected = mirror.submit(
        "default",
        &TableKey {
            spec: "prosper".into(),
            rows: 400,
            seed: 0,
        },
        &QueryRequest::naive(QuerySpec::try_new(0.8, 0.8, 0.8, CostModel::PAPER_DEFAULT).unwrap()),
    );
    assert_eq!(admitted.body_text(), expected);
    let tenant = handle.tenants().route("default").unwrap();
    assert_eq!(tenant.engine().stats().queries, 1);
    assert_eq!(
        tenant.engine().session_counts(),
        mirror.engine.session_counts()
    );

    // The gate recovers once the slot frees.
    let mut client = HttpClient::connect(addr).unwrap();
    assert_eq!(client.post("/query", body).unwrap().status, 200);

    // And /metrics saw it all.
    let metrics = client.get("/metrics").unwrap().body_text();
    assert!(metrics.contains("serve_shed 5\n"));
    assert!(metrics.contains("serve_in_flight_capacity 1\n"));
}

#[test]
fn tenant_registry_exhaustion_is_503_and_retryable() {
    let handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            max_tenants: 1,
            max_rows: 5_000,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = HttpClient::connect(handle.local_addr()).unwrap();
    let query = "\"table\":{\"spec\":\"prosper\",\"rows\":100},\"query\":{\"kind\":\"naive\"}";

    let first = client
        .post("/query", &format!("{{\"tenant\":\"a\",{query}}}"))
        .unwrap();
    assert_eq!(first.status, 200);

    let refused = client
        .post("/query", &format!("{{\"tenant\":\"b\",{query}}}"))
        .unwrap();
    assert_eq!(refused.status, 503);
    assert_eq!(refused.header("retry-after"), Some("1"));
    assert!(refused
        .body_text()
        .contains("\"error\":\"tenants_exhausted\""));

    // The existing tenant keeps working.
    let again = client
        .post("/query", &format!("{{\"tenant\":\"a\",{query}}}"))
        .unwrap();
    assert_eq!(again.status, 200);
}

#[test]
fn keep_alive_and_connection_close_are_honored() {
    let handle = serve("127.0.0.1:0", small_config()).unwrap();
    let mut client = HttpClient::connect(handle.local_addr()).unwrap();

    // Many requests down one connection; the server must answer each
    // with keep-alive framing.
    for _ in 0..8 {
        let r = client.get("/health").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("connection"), Some("keep-alive"));
    }
    assert_eq!(
        handle
            .metrics()
            .connections_accepted
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "one connection served all eight requests"
    );

    // An explicit `Connection: close` is echoed and the socket closes.
    let r = client
        .raw(b"GET /health HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")
        .unwrap();
    assert_eq!(r.header("connection"), Some("close"));
    assert!(
        client.get("/health").is_err(),
        "server closed the connection after Connection: close"
    );
}

#[test]
fn tenant_header_overrides_body_tenant() {
    let handle = serve("127.0.0.1:0", small_config()).unwrap();
    let mut client = HttpClient::connect(handle.local_addr()).unwrap();
    let r = client
        .raw(
            b"POST /query HTTP/1.1\r\nhost: x\r\nx-tenant: from-header\r\ncontent-length: 79\r\n\r\n\
              {\"tenant\":\"from-body\",\"table\":{\"spec\":\"lc\",\"rows\":50},\"query\":{\"kind\":\"naive\"}}",
        )
        .unwrap();
    assert_eq!(r.status, 200);
    assert!(r.body_text().starts_with("{\"tenant\":\"from-header\""));
    let names: Vec<String> = handle
        .tenants()
        .snapshot()
        .iter()
        .map(|t| t.name().to_owned())
        .collect();
    assert_eq!(names, ["from-header"]);
}

#[test]
fn predicate_strings_match_direct_submit_byte_identically() {
    let handle = serve("127.0.0.1:0", small_config()).unwrap();
    let mut client = HttpClient::connect(handle.local_addr()).unwrap();
    let mut mirror = Mirror::new();

    let tenant = "dsl-tenant";
    let key = TableKey {
        spec: "prosper".into(),
        rows: 400,
        seed: 11,
    };
    let table = "\"table\":{\"spec\":\"prosper\",\"rows\":400,\"seed\":11}";
    let predicate = "udf_label and (udf_label or not udf_label)";
    let registry = expred_udf::OracleRegistry::new();
    let parsed = || expred_udf::parse_predicate(predicate, &registry).expect("valid predicate");

    // Optimized (the default), twice: the repeat must answer from the
    // result memo on both sides and still render identically.
    let body = format!(
        "{{\"tenant\":\"{tenant}\",{table},\"seed\":3,\
         \"query\":{{\"kind\":\"expr\",\"predicate\":\"{predicate}\"}}}}"
    );
    let request =
        QueryRequest::expr_scan_optimized(parsed(), CostModel::PAPER_DEFAULT).with_seed(3);
    for round in 0..2 {
        let response = client.post("/query", &body).unwrap();
        assert_eq!(response.status, 200, "round {round}");
        let expected = mirror.submit(tenant, &key, &request);
        assert_eq!(
            response.body_text(),
            expected,
            "round {round}: HTTP predicate body must be byte-identical to direct submit"
        );
    }

    // `"optimize": false` routes to the static-order strategy — a
    // distinct memo identity, still byte-identical to the direct path.
    let body = format!(
        "{{\"tenant\":\"{tenant}\",{table},\"seed\":3,\
         \"query\":{{\"kind\":\"expr\",\"predicate\":\"{predicate}\",\"optimize\":false}}}}"
    );
    let response = client.post("/query", &body).unwrap();
    assert_eq!(response.status, 200);
    let request = QueryRequest::expr_scan(parsed(), CostModel::PAPER_DEFAULT).with_seed(3);
    let expected = mirror.submit(tenant, &key, &request);
    assert_eq!(response.body_text(), expected);

    // A malformed predicate is absorbed at the door: 400 bad_expression
    // with the parser's byte position, no engine touch, no panic.
    let r = client
        .post(
            "/query",
            &format!("{{{table},\"query\":{{\"kind\":\"expr\",\"predicate\":\"udf_label and\"}}}}"),
        )
        .unwrap();
    assert_eq!(r.status, 400);
    let text = r.body_text();
    assert!(text.contains("\"error\":\"bad_expression\""), "{text}");
    assert!(text.contains("byte 13"), "{text}");
}

#[test]
fn connection_cap_refuses_inline_with_503_and_recovers() {
    let handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            max_connections: 2,
            ..small_config()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // Two live keep-alive connections fill the gate.
    let mut a = HttpClient::connect(addr).unwrap();
    let mut b = HttpClient::connect(addr).unwrap();
    assert_eq!(a.get("/health").unwrap().status, 200);
    assert_eq!(b.get("/health").unwrap().status, 200);
    assert_eq!(handle.connections().in_flight(), 2);

    // A third socket is refused inline on the accept thread — the 503
    // arrives without the client sending a single byte, which is only
    // possible if no connection thread was spawned for it.
    let mut refused = HttpClient::connect(addr).unwrap();
    let r = refused.raw(b"").unwrap();
    assert_eq!(r.status, 503);
    assert!(r.header("retry-after").is_some());
    assert!(r
        .body_text()
        .contains("\"error\":\"connections_exhausted\""));
    assert_eq!(handle.connections().shed(), 1);

    // The refusal counts toward the metrics the surviving connections
    // can still read.
    let metrics = a.get("/metrics").unwrap().body_text();
    assert!(metrics.contains("serve_connections_capacity 2\n"));
    assert!(metrics.contains("serve_connections_open 2\n"));
    assert!(metrics.contains("serve_connections_shed 1\n"));

    // Closing one connection frees its slot (the idle loop notices the
    // peer's FIN within one poll quantum) and a new client is admitted.
    drop(b);
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while handle.connections().in_flight() > 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        handle.connections().in_flight(),
        1,
        "slot released on close"
    );
    let mut c = HttpClient::connect(addr).unwrap();
    assert_eq!(c.get("/health").unwrap().status, 200);
}

#[test]
fn shutdown_drains_idle_connections_within_the_deadline() {
    let mut handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            drain_deadline: Duration::from_secs(3),
            ..small_config()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // Two idle keep-alive connections that already served a request.
    let mut a = HttpClient::connect(addr).unwrap();
    let mut b = HttpClient::connect(addr).unwrap();
    assert_eq!(a.get("/health").unwrap().status, 200);
    assert_eq!(b.get("/health").unwrap().status, 200);
    assert_eq!(handle.connections().in_flight(), 2);

    // Graceful shutdown must not wait out the full drain deadline (let
    // alone the 5s idle read timeout): idle connections poll the
    // shutdown flag every 100ms and release their slots.
    let started = std::time::Instant::now();
    handle.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "idle drain took {:?}",
        started.elapsed()
    );
    assert_eq!(handle.connections().in_flight(), 0, "all slots released");
    assert!(
        a.get("/health").is_err() && b.get("/health").is_err(),
        "drained connections are closed"
    );
}

#[test]
fn remote_backend_counters_surface_in_both_metrics_exports() {
    use expred_remote::{ClientConfig, FaultPlan, RemoteClient, UdfServer};
    use std::sync::Arc;

    // A healthy in-process UDF backend with one oracle.
    let labels: Arc<Vec<bool>> = Arc::new((0..64).map(|i| i % 3 == 0).collect());
    let mut oracles = std::collections::HashMap::new();
    oracles.insert("default".to_owned(), labels);
    let backend = UdfServer::bind("127.0.0.1:0", oracles, FaultPlan::healthy()).unwrap();
    let endpoint = backend.addr().to_string();

    let remote = Arc::new(RemoteClient::new(ClientConfig::new(endpoint.clone())));
    assert_eq!(remote.probe("default", 0), Ok(true));
    assert_eq!(remote.probe("default", 1), Ok(false));

    let handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            remote: Some(Arc::clone(&remote)),
            ..small_config()
        },
    )
    .unwrap();
    let mut client = HttpClient::connect(handle.local_addr()).unwrap();

    let text = client.get("/metrics").unwrap().body_text();
    let requests_line = format!("remote_udf_requests{{endpoint=\"{endpoint}\"}} 2\n");
    assert!(text.contains(&requests_line), "{text}");
    assert!(text.contains(&format!(
        "remote_udf_breaker_opens{{endpoint=\"{endpoint}\"}} 0\n"
    )));

    let doc = JsonValue::parse(&client.get("/metrics.json").unwrap().body_text()).unwrap();
    let remote_obj = doc.get("remote").expect("remote key present");
    assert_eq!(
        remote_obj.get("endpoint").unwrap().as_str(),
        Some(endpoint.as_str())
    );
    assert_eq!(
        remote_obj
            .get("counters")
            .unwrap()
            .get("requests")
            .unwrap()
            .as_u64(),
        Some(2)
    );
}
