//! Out-of-process warm-restart smoke test: boot the real `expred-serve`
//! binary with a data directory, pay for every row once, SIGTERM-drain
//! it, boot a second process over the same directory, and require the
//! repeat query to come back byte-identical with **zero** fresh UDF
//! evaluations — the whole point of the persistence tier.

#![cfg(unix)]

use expred_serve::HttpClient;
use expred_stats::json::JsonValue;
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const ROWS: u64 = 300;

/// Spawns the served binary on an ephemeral port and parses the bound
/// address from its announcement line.
fn boot(data_dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_expred-serve"))
        .args(["--addr", "127.0.0.1:0", "--data-dir"])
        .arg(data_dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn expred-serve");
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line).expect("read server stdout") == 0 {
            let status = child.wait().expect("reap server");
            panic!("server exited ({status}) before announcing its address");
        }
        if let Some(rest) = line
            .trim()
            .strip_prefix("expred-serve listening on http://")
        {
            break rest.parse().expect("announced address parses");
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    (child, addr)
}

/// SIGTERM (not `Child::kill`, which is SIGKILL) so the drain path runs,
/// then waits for the clean exit the binary promises.
fn terminate(mut child: Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success(), "kill -TERM failed");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("poll server exit") {
            Some(status) => {
                assert!(status.success(), "server exited uncleanly: {status}");
                return;
            }
            None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            None => {
                let _ = child.kill();
                panic!("server did not drain within 30s of SIGTERM");
            }
        }
    }
}

fn count(body: &JsonValue, field: &str) -> u64 {
    body.get("counts")
        .and_then(|c| c.get(field))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("counts.{field} missing"))
}

fn persist_counter(metrics: &JsonValue, field: &str) -> u64 {
    metrics
        .get("tenants")
        .and_then(|t| t.get("default"))
        .and_then(|t| t.get("persist"))
        .and_then(|p| p.get(field))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("tenant persist counter {field} missing"))
}

#[test]
fn warm_restart_answers_byte_identically_with_zero_fresh_evaluations() {
    let dir = std::env::temp_dir().join(format!("expred-warm-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create data dir");

    // β = 1.0 makes naive evaluate every row, so the warm-up pays o_e
    // for the whole table and the spill sink hears each fresh answer.
    let warm_up = format!(
        "{{\"table\":{{\"spec\":\"prosper\",\"rows\":{ROWS},\"seed\":7}},\
         \"seed\":1,\"query\":{{\"kind\":\"naive\",\"beta\":1.0}}}}"
    );
    // Q differs from the warm-up (request seed), so it is computed —
    // never memo-answered — in both processes, over a fully warm cache.
    let repeat = format!(
        "{{\"table\":{{\"spec\":\"prosper\",\"rows\":{ROWS},\"seed\":7}},\
         \"seed\":2,\"query\":{{\"kind\":\"naive\",\"beta\":1.0}}}}"
    );

    // ---- Boot 1: pay once, observe the spill, drain. ----
    let (first_child, addr) = boot(&dir);
    let first_body;
    {
        let mut client = HttpClient::connect(addr).expect("connect to first boot");
        let warm = client
            .post("/query", &warm_up)
            .expect("warm-up round-trips");
        assert_eq!(warm.status, 200, "{}", warm.body_text());
        let warm_doc = JsonValue::parse(&warm.body_text()).expect("warm-up body parses");
        assert_eq!(
            count(&warm_doc, "evaluated"),
            ROWS,
            "cold run pays o_e per row"
        );
        assert_eq!(count(&warm_doc, "reuse_hits"), 0);

        let response = client.post("/query", &repeat).expect("repeat round-trips");
        assert_eq!(response.status, 200, "{}", response.body_text());
        first_body = response.body_text();
        let doc = JsonValue::parse(&first_body).expect("repeat body parses");
        assert_eq!(
            count(&doc, "evaluated"),
            0,
            "warm session re-evaluates nothing"
        );
        assert_eq!(count(&doc, "reuse_hits"), ROWS);

        let metrics = client.get("/metrics.json").expect("metrics round-trips");
        let doc = JsonValue::parse(&metrics.body_text()).expect("metrics parse");
        assert!(
            persist_counter(&doc, "spilled_offers") >= ROWS,
            "every fresh answer was offered to the WAL"
        );
        assert_eq!(
            persist_counter(&doc, "rehydrated_rows"),
            0,
            "first boot had nothing to rehydrate"
        );
    }
    terminate(first_child);

    // ---- Boot 2: same directory, fresh process, nothing in memory. ----
    let (second_child, addr) = boot(&dir);
    {
        let mut client = HttpClient::connect(addr).expect("connect to second boot");
        let response = client.post("/query", &repeat).expect("repeat round-trips");
        assert_eq!(response.status, 200, "{}", response.body_text());
        assert_eq!(
            response.body_text(),
            first_body,
            "warm restart must serve the byte-identical answer"
        );
        // Byte-identity already implies evaluated == 0; spell the billing
        // consequence out anyway so a failure names the broken invariant.
        let doc = JsonValue::parse(&response.body_text()).expect("body parses");
        assert_eq!(count(&doc, "evaluated"), 0, "restart charged fresh o_e");
        assert_eq!(count(&doc, "reuse_hits"), ROWS);

        let metrics = client.get("/metrics.json").expect("metrics round-trips");
        let doc = JsonValue::parse(&metrics.body_text()).expect("metrics parse");
        assert!(
            persist_counter(&doc, "rehydrated_rows") >= ROWS,
            "the persisted answers were loaded back"
        );
        assert!(persist_counter(&doc, "rehydrated_namespaces") >= 1);
        assert!(
            persist_counter(&doc, "recovered_rows") >= ROWS,
            "recovery replayed the WAL/snapshot rows"
        );
    }
    terminate(second_child);

    let _ = std::fs::remove_dir_all(&dir);
}
