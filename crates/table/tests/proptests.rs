//! Property tests for the relation substrate.

use expred_table::csv::{read_csv, write_csv};
use expred_table::datasets::{all_specs, Dataset, DatasetSpec};
use expred_table::{DataType, DerivedCache, Field, ScanPredicate, Schema, Table, Value};
use proptest::prelude::*;

/// A single nullable column of `values` as a table.
fn one_column_table(name: &str, data_type: DataType, values: Vec<Value>) -> Table {
    let schema = Schema::new(vec![Field::nullable(name, data_type)]);
    Table::from_rows(schema, values.into_iter().map(|v| vec![v]).collect()).unwrap()
}

/// Structural grouping equality that treats NaN keys by their bit-level
/// sort key (derived `PartialEq` on `Value::Float(NaN)` is always false,
/// which would make NaN-keyed groupings incomparable).
fn same_grouping(a: &expred_table::GroupBy, b: &expred_table::GroupBy) -> bool {
    a.column() == b.column()
        && a.num_rows() == b.num_rows()
        && a.num_groups() == b.num_groups()
        && (0..a.num_groups())
            .all(|g| a.key(g).sort_key() == b.key(g).sort_key() && a.rows(g) == b.rows(g))
}

/// Decodes a small index into a float drawn from a set that stresses the
/// grouping kernel's total-order contract: signed zeros, infinities, and
/// two distinct NaN payloads.
fn float_from_index(i: u8) -> f64 {
    match i % 8 {
        0 => 0.0,
        1 => -0.0,
        2 => 1.5,
        3 => -3.25,
        4 => f64::INFINITY,
        5 => f64::NEG_INFINITY,
        6 => f64::NAN,
        _ => f64::from_bits(f64::NAN.to_bits() | 1), // distinct NaN payload
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn group_by_partitions_every_row(values in prop::collection::vec(0i64..6, 1..300)) {
        let schema = Schema::new(vec![Field::new("g", DataType::Int)]);
        let rows: Vec<Vec<Value>> = values.iter().map(|&v| vec![Value::Int(v)]).collect();
        let table = Table::from_rows(schema, rows).unwrap();
        let groups = table.group_by("g").unwrap();
        // Partition: every row exactly once.
        let mut seen = vec![false; values.len()];
        for (_, key, rows) in groups.iter() {
            for &r in rows {
                prop_assert!(!seen[r as usize], "row {r} in two groups");
                seen[r as usize] = true;
                prop_assert_eq!(&Value::Int(values[r as usize]), key);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Keys sorted ascending.
        for w in (0..groups.num_groups()).collect::<Vec<_>>().windows(2) {
            prop_assert!(groups.key(w[0]).sort_key() < groups.key(w[1]).sort_key());
        }
    }

    #[test]
    fn csv_round_trip_arbitrary_strings(cells in prop::collection::vec("[ -~]{0,12}", 1..40)) {
        // Printable-ASCII strings (commas, quotes and all) must survive a
        // write/read cycle. Empty strings become NULL by the format's
        // convention, so map them away.
        let schema = Schema::new(vec![Field::new("s", DataType::Str)]);
        let rows: Vec<Vec<Value>> = cells
            .iter()
            .map(|c| {
                let c = if c.is_empty() { "_" } else { c.as_str() };
                vec![Value::Str(c.to_owned())]
            })
            .collect();
        let table = Table::from_rows(schema, rows).unwrap();
        let mut buf = Vec::new();
        write_csv(&table, &mut buf).unwrap();
        let back = read_csv(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.num_rows(), table.num_rows());
        for r in 0..table.num_rows() {
            // Numeric-looking strings may re-infer as numbers; compare via
            // display form, which is inference-invariant.
            prop_assert_eq!(
                back.column_at(0).value(r).to_string(),
                table.column_at(0).value(r).to_string()
            );
        }
    }

    #[test]
    fn dataset_clones_calibrate_across_seeds(seed in 0u64..30, which in 0usize..4) {
        let spec = all_specs()[which];
        // Shrink for speed while keeping calibration checkable.
        let spec = DatasetSpec { rows: spec.rows / 4, ..spec };
        let ds = Dataset::generate(spec, seed);
        let stats = ds.group_stats(spec.predictor);
        prop_assert_eq!(ds.table.num_rows(), spec.rows);
        prop_assert_eq!(stats.num_groups, spec.groups);
        prop_assert!(
            (stats.overall_selectivity - spec.selectivity).abs() < 0.03,
            "{}: selectivity {} vs {}",
            spec.name,
            stats.overall_selectivity,
            spec.selectivity
        );
        // Correlation sign must match the paper's.
        if spec.size_sel_corr.abs() > 0.3 {
            prop_assert_eq!(
                stats.size_sel_corr.signum(),
                spec.size_sel_corr.signum(),
                "{}: corr {} vs {}",
                spec.name,
                stats.size_sel_corr,
                spec.size_sel_corr
            );
        }
    }

    #[test]
    fn kernel_group_by_matches_reference_int(cells in prop::collection::vec((0u8..10, -5i64..5), 0..300)) {
        // ~10% NULLs mixed into a small integer domain.
        let values: Vec<Value> = cells
            .iter()
            .map(|&(null, v)| if null == 0 { Value::Null } else { Value::Int(v) })
            .collect();
        let t = one_column_table("g", DataType::Int, values);
        prop_assert_eq!(t.group_by("g").unwrap(), t.group_by_reference("g").unwrap());
    }

    #[test]
    fn kernel_group_by_matches_reference_float(cells in prop::collection::vec(0u8..9, 0..300)) {
        // Index 8 is NULL; 0..8 covers zeros, infinities, and two NaN
        // payloads (which the reference groups as *distinct* keys).
        let values: Vec<Value> = cells
            .iter()
            .map(|&i| if i == 8 { Value::Null } else { Value::Float(float_from_index(i)) })
            .collect();
        let t = one_column_table("g", DataType::Float, values);
        prop_assert!(same_grouping(
            &t.group_by("g").unwrap(),
            &t.group_by_reference("g").unwrap()
        ));
    }

    #[test]
    fn kernel_group_by_matches_reference_str(cells in prop::collection::vec("[a-c]{0,3}", 0..200)) {
        let values: Vec<Value> = cells
            .iter()
            .map(|c| if c.is_empty() { Value::Null } else { Value::Str(c.clone()) })
            .collect();
        let t = one_column_table("g", DataType::Str, values);
        prop_assert_eq!(t.group_by("g").unwrap(), t.group_by_reference("g").unwrap());
    }

    #[test]
    fn kernel_group_by_matches_reference_bool(cells in prop::collection::vec(0u8..3, 0..200)) {
        let values: Vec<Value> = cells
            .iter()
            .map(|&i| match i { 0 => Value::Null, 1 => Value::Bool(false), _ => Value::Bool(true) })
            .collect();
        let t = one_column_table("g", DataType::Bool, values);
        prop_assert_eq!(t.group_by("g").unwrap(), t.group_by_reference("g").unwrap());
    }

    #[test]
    fn zone_mapped_scan_matches_naive_filter(
        cells in prop::collection::vec((0u8..12, -50i64..50), 0..300),
        lo in -60i64..60,
        width in 0i64..40,
    ) {
        let values: Vec<Value> = cells
            .iter()
            .map(|&(null, v)| if null == 0 { Value::Null } else { Value::Int(v) })
            .collect();
        let t = one_column_table("v", DataType::Int, values.clone());
        let hi = lo + width;
        let (rows, stats) = t.scan("v", &ScanPredicate::IntRange { lo, hi }).unwrap();
        let naive: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.as_int().is_some_and(|x| x >= lo && x <= hi))
            .map(|(r, _)| r as u32)
            .collect();
        prop_assert_eq!(rows, naive);
        prop_assert!(stats.rows_tested <= t.num_rows());

        let (null_rows, _) = t.scan("v", &ScanPredicate::IsNull).unwrap();
        let naive_nulls: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_null())
            .map(|(r, _)| r as u32)
            .collect();
        prop_assert_eq!(null_rows, naive_nulls);
    }

    #[test]
    fn derived_cache_tracks_version_history(
        base in prop::collection::vec(-3i64..3, 1..40),
        extra_a in prop::collection::vec(-3i64..3, 1..10),
        extra_b in prop::collection::vec(-3i64..3, 1..10),
    ) {
        // Two clones diverge by different push_row histories; a shared
        // cache must serve each clone its own partition at every step and
        // treat every version bump as a fresh entry.
        let cache = DerivedCache::new();
        let t = one_column_table("g", DataType::Int, base.iter().map(|&v| Value::Int(v)).collect());
        let (mut a, mut b) = (t.clone(), t.clone());
        let first = cache.group_by(&t, "g").unwrap();
        prop_assert_eq!(first.as_ref(), &t.group_by_reference("g").unwrap());
        for &v in &extra_a {
            a.push_row(vec![Value::Int(v)]).unwrap();
            let got = cache.group_by(&a, "g").unwrap();
            prop_assert_eq!(got.as_ref(), &a.group_by_reference("g").unwrap());
        }
        for &v in &extra_b {
            b.push_row(vec![Value::Int(v)]).unwrap();
            let got = cache.group_by(&b, "g").unwrap();
            prop_assert_eq!(got.as_ref(), &b.group_by_reference("g").unwrap());
        }
        // The base version's entry is still correct after both histories.
        let again = cache.group_by(&t, "g").unwrap();
        prop_assert_eq!(again.as_ref(), first.as_ref());
        prop_assert!(cache.stats().hits >= 1);
    }

    #[test]
    fn distinct_count_matches_naive(values in prop::collection::vec(0i64..10, 0..200)) {
        let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
        let rows: Vec<Vec<Value>> = values.iter().map(|&v| vec![Value::Int(v)]).collect();
        let table = Table::from_rows(schema, rows).unwrap();
        let naive: std::collections::HashSet<i64> = values.iter().copied().collect();
        prop_assert_eq!(table.column_at(0).distinct_count(), naive.len());
    }
}
