//! Property tests for the relation substrate.

use expred_table::csv::{read_csv, write_csv};
use expred_table::datasets::{all_specs, Dataset, DatasetSpec};
use expred_table::{DataType, Field, Schema, Table, Value};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn group_by_partitions_every_row(values in prop::collection::vec(0i64..6, 1..300)) {
        let schema = Schema::new(vec![Field::new("g", DataType::Int)]);
        let rows: Vec<Vec<Value>> = values.iter().map(|&v| vec![Value::Int(v)]).collect();
        let table = Table::from_rows(schema, rows).unwrap();
        let groups = table.group_by("g").unwrap();
        // Partition: every row exactly once.
        let mut seen = vec![false; values.len()];
        for (_, key, rows) in groups.iter() {
            for &r in rows {
                prop_assert!(!seen[r as usize], "row {r} in two groups");
                seen[r as usize] = true;
                prop_assert_eq!(&Value::Int(values[r as usize]), key);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Keys sorted ascending.
        for w in (0..groups.num_groups()).collect::<Vec<_>>().windows(2) {
            prop_assert!(groups.key(w[0]).sort_key() < groups.key(w[1]).sort_key());
        }
    }

    #[test]
    fn csv_round_trip_arbitrary_strings(cells in prop::collection::vec("[ -~]{0,12}", 1..40)) {
        // Printable-ASCII strings (commas, quotes and all) must survive a
        // write/read cycle. Empty strings become NULL by the format's
        // convention, so map them away.
        let schema = Schema::new(vec![Field::new("s", DataType::Str)]);
        let rows: Vec<Vec<Value>> = cells
            .iter()
            .map(|c| {
                let c = if c.is_empty() { "_" } else { c.as_str() };
                vec![Value::Str(c.to_owned())]
            })
            .collect();
        let table = Table::from_rows(schema, rows).unwrap();
        let mut buf = Vec::new();
        write_csv(&table, &mut buf).unwrap();
        let back = read_csv(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.num_rows(), table.num_rows());
        for r in 0..table.num_rows() {
            // Numeric-looking strings may re-infer as numbers; compare via
            // display form, which is inference-invariant.
            prop_assert_eq!(
                back.column_at(0).value(r).to_string(),
                table.column_at(0).value(r).to_string()
            );
        }
    }

    #[test]
    fn dataset_clones_calibrate_across_seeds(seed in 0u64..30, which in 0usize..4) {
        let spec = all_specs()[which];
        // Shrink for speed while keeping calibration checkable.
        let spec = DatasetSpec { rows: spec.rows / 4, ..spec };
        let ds = Dataset::generate(spec, seed);
        let stats = ds.group_stats(spec.predictor);
        prop_assert_eq!(ds.table.num_rows(), spec.rows);
        prop_assert_eq!(stats.num_groups, spec.groups);
        prop_assert!(
            (stats.overall_selectivity - spec.selectivity).abs() < 0.03,
            "{}: selectivity {} vs {}",
            spec.name,
            stats.overall_selectivity,
            spec.selectivity
        );
        // Correlation sign must match the paper's.
        if spec.size_sel_corr.abs() > 0.3 {
            prop_assert_eq!(
                stats.size_sel_corr.signum(),
                spec.size_sel_corr.signum(),
                "{}: corr {} vs {}",
                spec.name,
                stats.size_sel_corr,
                spec.size_sel_corr
            );
        }
    }

    #[test]
    fn distinct_count_matches_naive(values in prop::collection::vec(0i64..10, 0..200)) {
        let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
        let rows: Vec<Vec<Value>> = values.iter().map(|&v| vec![Value::Int(v)]).collect();
        let table = Table::from_rows(schema, rows).unwrap();
        let naive: std::collections::HashSet<i64> = values.iter().copied().collect();
        prop_assert_eq!(table.column_at(0).distinct_count(), naive.len());
    }
}
