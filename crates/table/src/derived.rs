//! Session-level cache of derived data: group partitions and encoding
//! dictionaries.
//!
//! Every query that predicts through a real column re-derives the same
//! [`GroupBy`] over the same table, and every learning baseline re-builds
//! the same one-hot dictionaries. [`DerivedCache`] is the session-scoped
//! memo that stops paying that tax: entries are keyed by
//! `(TableId, version, column, kind)`, mirroring the `CacheStore`
//! namespacing in `expred-exec` and inheriting its invalidation
//! semantics — `push_row` bumps the content version, so every stale
//! entry simply stops being addressable, and diverged clones (same id,
//! different versions) can never cross-serve.
//!
//! The cache is `&self`-safe for the concurrent engine: lookups and
//! inserts take a single mutex, while the derivation itself runs outside
//! the lock (racing identical derivations are benign — both compute the
//! same deterministic value and one wins the insert). Capacity is
//! bounded with the same second-chance (clock) policy the result memo
//! uses: a hit marks the entry, the evictor skips marked entries once.

use crate::kernels::GroupCodes;
use crate::table::{GroupBy, Table};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of derived entries a session retains. A session rarely
/// touches more than a handful of `(table, column)` pairs at a time;
/// this leaves generous headroom for multi-table workloads.
pub const DEFAULT_DERIVED_CAPACITY: usize = 128;

/// What kind of derived artifact an entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DerivedKind {
    Groups,
    Codes,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct DerivedKey {
    table: u64,
    version: u64,
    column: String,
    kind: DerivedKind,
}

#[derive(Debug, Clone)]
enum DerivedValue {
    Groups(Arc<GroupBy>),
    Codes(Arc<GroupCodes>),
}

#[derive(Debug)]
struct CachedEntry {
    value: DerivedValue,
    /// Second-chance bit: set on hit, cleared (then evicted) by the clock.
    touched: bool,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<DerivedKey, CachedEntry>,
    clock: VecDeque<DerivedKey>,
}

/// Counter snapshot for observability (see [`DerivedCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DerivedCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to derive fresh.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

impl DerivedCacheStats {
    /// `(name, value)` pairs in a stable order, for metrics exporters.
    pub fn fields(&self) -> [(&'static str, u64); 3] {
        [
            ("derived_hits", self.hits),
            ("derived_misses", self.misses),
            ("derived_evictions", self.evictions),
        ]
    }
}

/// Capacity-bounded, thread-safe cache of derived per-column artifacts.
#[derive(Debug)]
pub struct DerivedCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for DerivedCache {
    fn default() -> Self {
        Self::new()
    }
}

impl DerivedCache {
    /// A cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_DERIVED_CAPACITY)
    }

    /// A cache retaining at most `capacity` entries. Capacity 0 disables
    /// retention entirely: every lookup derives fresh (and counts as a
    /// miss).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("derived cache poisoned").map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counters since construction (or the last
    /// counter-preserving [`clear`](Self::clear)).
    pub fn stats(&self) -> DerivedCacheStats {
        DerivedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("derived cache poisoned");
        inner.map.clear();
        inner.clock.clear();
    }

    /// The partition of `table` by `column`, served from the cache when
    /// the same `(table id, version, column)` was grouped before.
    /// Byte-identical to [`Table::group_by`].
    pub fn group_by(&self, table: &Table, column: &str) -> Result<Arc<GroupBy>, String> {
        let key = DerivedKey {
            table: table.id().as_u64(),
            version: table.version(),
            column: column.to_owned(),
            kind: DerivedKind::Groups,
        };
        if let Some(DerivedValue::Groups(hit)) = self.lookup(&key) {
            return Ok(hit);
        }
        let fresh = Arc::new(table.group_by(column)?);
        self.insert(key, DerivedValue::Groups(Arc::clone(&fresh)));
        Ok(fresh)
    }

    /// The dictionary codes of `column`, cached per `(table id, version,
    /// column)`. The substrate for one-hot feature encoding.
    pub fn group_codes(&self, table: &Table, column: &str) -> Result<Arc<GroupCodes>, String> {
        let key = DerivedKey {
            table: table.id().as_u64(),
            version: table.version(),
            column: column.to_owned(),
            kind: DerivedKind::Codes,
        };
        if let Some(DerivedValue::Codes(hit)) = self.lookup(&key) {
            return Ok(hit);
        }
        let col = table
            .column(column)
            .ok_or_else(|| format!("no column named {column:?}"))?;
        let fresh = Arc::new(col.group_codes());
        self.insert(key, DerivedValue::Codes(Arc::clone(&fresh)));
        Ok(fresh)
    }

    fn lookup(&self, key: &DerivedKey) -> Option<DerivedValue> {
        let mut inner = self.inner.lock().expect("derived cache poisoned");
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.touched = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: DerivedKey, value: DerivedValue) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("derived cache poisoned");
        if inner.map.contains_key(&key) {
            // A racing derivation beat us; keep the incumbent (equal
            // content) and don't double-queue the key.
            return;
        }
        // Second-chance eviction: recently hit entries get one more lap.
        while inner.map.len() >= self.capacity {
            let Some(victim) = inner.clock.pop_front() else {
                break;
            };
            match inner.map.get_mut(&victim) {
                Some(entry) if entry.touched => {
                    entry.touched = false;
                    inner.clock.push_back(victim);
                }
                Some(_) => {
                    inner.map.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => {}
            }
        }
        inner.clock.push_back(key.clone());
        inner.map.insert(
            key,
            CachedEntry {
                value,
                touched: false,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::{DataType, Value};

    fn table_of(values: &[i64]) -> Table {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        Table::from_rows(
            schema,
            values.iter().map(|&v| vec![Value::Int(v)]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn repeat_lookups_hit() {
        let cache = DerivedCache::new();
        let t = table_of(&[1, 2, 1]);
        let a = cache.group_by(&t, "a").unwrap();
        let b = cache.group_by(&t, "a").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup reuses the partition");
        assert_eq!(*a, t.group_by("a").unwrap());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn push_row_forces_a_miss() {
        let cache = DerivedCache::new();
        let mut t = table_of(&[1, 2]);
        let before = cache.group_by(&t, "a").unwrap();
        t.push_row(vec![Value::Int(1)]).unwrap();
        let after = cache.group_by(&t, "a").unwrap();
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(*after, t.group_by("a").unwrap());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn diverged_clones_never_cross_serve() {
        let cache = DerivedCache::new();
        let base = table_of(&[1, 2]);
        let mut a = base.clone();
        let mut b = base.clone();
        a.push_row(vec![Value::Int(10)]).unwrap();
        b.push_row(vec![Value::Int(20)]).unwrap();
        assert_eq!(a.id(), b.id(), "clones share an id");
        let ga = cache.group_by(&a, "a").unwrap();
        let gb = cache.group_by(&b, "a").unwrap();
        assert_eq!(*ga, a.group_by("a").unwrap());
        assert_eq!(*gb, b.group_by("a").unwrap());
        assert_ne!(*ga, *gb);
    }

    #[test]
    fn group_codes_are_cached_too() {
        let cache = DerivedCache::new();
        let t = table_of(&[3, 3, 4]);
        let a = cache.group_codes(&t, "a").unwrap();
        let b = cache.group_codes(&t, "a").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.codes(), &[0, 0, 1]);
        assert!(cache.group_codes(&t, "nope").is_err());
    }

    #[test]
    fn capacity_bounds_and_second_chance() {
        let cache = DerivedCache::with_capacity(2);
        let tables: Vec<Table> = (0..4).map(|v| table_of(&[v])).collect();
        cache.group_by(&tables[0], "a").unwrap();
        cache.group_by(&tables[1], "a").unwrap();
        // Touch table 0 so the clock spares it over table 1.
        cache.group_by(&tables[0], "a").unwrap();
        cache.group_by(&tables[2], "a").unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.stats().evictions >= 1);
        // Table 0 survived the eviction; looking it up again is a hit.
        let hits_before = cache.stats().hits;
        cache.group_by(&tables[0], "a").unwrap();
        assert_eq!(cache.stats().hits, hits_before + 1);
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let cache = DerivedCache::with_capacity(0);
        let t = table_of(&[1]);
        cache.group_by(&t, "a").unwrap();
        cache.group_by(&t, "a").unwrap();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn clear_drops_entries_keeps_counters() {
        let cache = DerivedCache::new();
        let t = table_of(&[1]);
        cache.group_by(&t, "a").unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }
}
