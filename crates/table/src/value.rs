//! Dynamically typed cell values.

use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean values.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
        };
        f.write_str(s)
    }
}

/// One cell of a table: a typed scalar or NULL.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
}

impl Value {
    /// The data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extracts a bool, if the value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts an integer, if the value is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extracts a float; integers widen losslessly.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extracts a string slice, if the value is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A 64-bit content fingerprint, stable across processes.
    ///
    /// Feeds [`crate::table::Table`]'s version fingerprint: equal values
    /// (including NaN payload and type, so `Int(1)` ≠ `Float(1.0)`) hash
    /// equal, and the type tag keeps cross-type collisions structural
    /// rather than accidental.
    pub fn fingerprint(&self) -> u64 {
        const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
        let (tag, body) = match self {
            Value::Null => (0u64, 0u64),
            Value::Bool(b) => (1, *b as u64),
            Value::Int(i) => (2, *i as u64),
            Value::Float(f) => (3, total_order_bits(*f)),
            Value::Str(s) => (4, expred_stats::hash::fnv1a(s.as_bytes())),
        };
        splitmix(tag.wrapping_mul(GOLDEN) ^ body)
    }

    /// A total-order key usable for grouping and sorting.
    ///
    /// NULLs sort first; floats order by IEEE total ordering so NaNs are
    /// grouped consistently rather than poisoning comparisons.
    pub fn sort_key(&self) -> ValueKey<'_> {
        match self {
            Value::Null => ValueKey::Null,
            Value::Bool(b) => ValueKey::Bool(*b),
            Value::Int(i) => ValueKey::Int(*i),
            Value::Float(f) => ValueKey::Float(total_order_bits(*f)),
            Value::Str(s) => ValueKey::Str(s),
        }
    }
}

/// SplitMix64 finalizer: diffuses a 64-bit word into a fingerprint.
fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a float to bits that order identically to IEEE total order.
///
/// Shared with the grouping kernels in [`crate::kernels`], which key float
/// dictionaries by these bits so distinct NaN payloads stay distinct groups
/// exactly as [`Value::sort_key`] would order them.
pub(crate) fn total_order_bits(f: f64) -> u64 {
    let bits = f.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// A borrowed, hashable, totally ordered key for a [`Value`].
///
/// Used as the group-by key: deriving `Ord`/`Hash` here is safe because the
/// float variant stores total-order bits instead of a raw `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueKey<'a> {
    /// NULL (sorts first).
    Null,
    /// Boolean key.
    Bool(bool),
    /// Integer key.
    Int(i64),
    /// Float key in total-order bit representation.
    Float(u64),
    /// String key.
    Str(&'a str),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(-3).as_int(), Some(-3));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::Str("hi".into()).as_str(), Some("hi"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_int(), None);
    }

    #[test]
    fn data_types() {
        assert_eq!(Value::Bool(false).data_type(), Some(DataType::Bool));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(DataType::Str.to_string(), "str");
    }

    #[test]
    fn sort_keys_order_sensibly() {
        let mut vals = [
            Value::Float(2.0),
            Value::Float(-1.0),
            Value::Float(0.0),
            Value::Float(f64::NAN),
        ];
        vals.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        assert_eq!(vals[0].as_float(), Some(-1.0));
        assert_eq!(vals[1].as_float(), Some(0.0));
        assert_eq!(vals[2].as_float(), Some(2.0));
        assert!(vals[3].as_float().unwrap().is_nan());
    }

    #[test]
    fn null_sorts_first() {
        let a = Value::Null.sort_key();
        let b = Value::Int(i64::MIN).sort_key();
        assert!(a < b);
    }

    #[test]
    fn nan_keys_group_together() {
        let k1 = Value::Float(f64::NAN).sort_key();
        let k2 = Value::Float(f64::NAN).sort_key();
        assert_eq!(k1, k2);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(1.5), Value::Float(1.5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Str("ab".into()).to_string(), "ab");
    }
}
