//! A minimal CSV reader/writer.
//!
//! The paper's artifacts are CSV files (Lending Club, Prosper, UCI dumps).
//! Our reproduction generates data synthetically, but users pointing the
//! library at *real* CSV exports need an ingestion path; this module
//! provides one without pulling in an external dependency. It supports
//! RFC-4180 quoting, type inference (int → float → string, empty → NULL),
//! and round-trips through [`write_csv`].

use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};
use std::io::{BufRead, Write};

/// Parses CSV text (with a header row) into a [`Table`], inferring column
/// types from the data: a column is `Int` if every non-empty cell parses as
/// `i64`, else `Float` if every non-empty cell parses as `f64`, else `Str`.
/// Columns containing `true`/`false` exclusively become `Bool`. Empty cells
/// are NULL and make the column nullable.
pub fn read_csv<R: BufRead>(reader: R) -> Result<Table, String> {
    let records = parse_records(reader)?;
    let mut iter = records.into_iter();
    let header = iter.next().ok_or("empty CSV input")?;
    let rows: Vec<Vec<String>> = iter.collect();
    for (i, row) in rows.iter().enumerate() {
        if row.len() != header.len() {
            return Err(format!(
                "row {} has {} fields, header has {}",
                i + 2,
                row.len(),
                header.len()
            ));
        }
    }
    let num_cols = header.len();
    let mut fields = Vec::with_capacity(num_cols);
    let mut types = Vec::with_capacity(num_cols);
    for c in 0..num_cols {
        let cells = rows.iter().map(|r| r[c].as_str());
        let (dt, nullable) = infer_type(cells);
        types.push(dt);
        fields.push(if nullable {
            Field::nullable(header[c].clone(), dt)
        } else {
            Field::new(header[c].clone(), dt)
        });
    }
    let schema = Schema::new(fields);
    let mut table = Table::empty(schema);
    for row in rows {
        let values: Result<Vec<Value>, String> = row
            .iter()
            .zip(&types)
            .map(|(cell, &dt)| parse_cell(cell, dt))
            .collect();
        table.push_row(values?)?;
    }
    Ok(table)
}

/// Serializes a table as CSV with a header row. Strings containing commas,
/// quotes, or newlines are quoted; NULLs serialize as empty cells.
pub fn write_csv<W: Write>(table: &Table, writer: &mut W) -> std::io::Result<()> {
    let names: Vec<&str> = table.schema().fields().iter().map(|f| f.name()).collect();
    writeln!(
        writer,
        "{}",
        names
            .iter()
            .map(|n| escape(n))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for r in 0..table.num_rows() {
        let mut cells = Vec::with_capacity(table.num_columns());
        for c in 0..table.num_columns() {
            cells.push(escape(&table.column_at(c).value(r).to_string()));
        }
        writeln!(writer, "{}", cells.join(","))?;
    }
    Ok(())
}

fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

fn infer_type<'a>(cells: impl Iterator<Item = &'a str> + Clone) -> (DataType, bool) {
    let mut nullable = false;
    let mut all_bool = true;
    let mut all_int = true;
    let mut all_float = true;
    let mut saw_value = false;
    for cell in cells {
        if cell.is_empty() {
            nullable = true;
            continue;
        }
        saw_value = true;
        if cell != "true" && cell != "false" {
            all_bool = false;
        }
        if cell.parse::<i64>().is_err() {
            all_int = false;
        }
        if cell.parse::<f64>().is_err() {
            all_float = false;
        }
    }
    let dt = if !saw_value {
        DataType::Str
    } else if all_bool {
        DataType::Bool
    } else if all_int {
        DataType::Int
    } else if all_float {
        DataType::Float
    } else {
        DataType::Str
    };
    (dt, nullable)
}

fn parse_cell(cell: &str, dt: DataType) -> Result<Value, String> {
    if cell.is_empty() {
        return Ok(Value::Null);
    }
    match dt {
        DataType::Bool => cell
            .parse::<bool>()
            .map(Value::Bool)
            .map_err(|e| format!("bad bool {cell:?}: {e}")),
        DataType::Int => cell
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| format!("bad int {cell:?}: {e}")),
        DataType::Float => cell
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| format!("bad float {cell:?}: {e}")),
        DataType::Str => Ok(Value::Str(cell.to_owned())),
    }
}

/// Splits CSV input into records of unquoted fields (RFC-4180).
fn parse_records<R: BufRead>(mut reader: R) -> Result<Vec<Vec<String>>, String> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| format!("io error: {e}"))?;
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut any = false;
    while let Some(ch) = chars.next() {
        any = true;
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(ch),
            }
        } else {
            match ch {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    // Swallow; the \n (if any) terminates the record.
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(ch),
            }
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".into());
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_types_and_nulls() {
        let csv = "id,score,grade,ok\n1,0.5,A,true\n2,,B,false\n3,1.5,C,true\n";
        let t = read_csv(Cursor::new(csv)).unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.schema().field("id").unwrap().data_type(), DataType::Int);
        assert_eq!(
            t.schema().field("score").unwrap().data_type(),
            DataType::Float
        );
        assert!(t.schema().field("score").unwrap().is_nullable());
        assert_eq!(
            t.schema().field("grade").unwrap().data_type(),
            DataType::Str
        );
        assert_eq!(t.schema().field("ok").unwrap().data_type(), DataType::Bool);
        assert_eq!(t.value(1, "score"), Some(Value::Null));
        assert_eq!(t.value(2, "ok"), Some(Value::Bool(true)));
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n";
        let t = read_csv(Cursor::new(csv)).unwrap();
        assert_eq!(t.value(0, "a"), Some(Value::from("x,y")));
        assert_eq!(t.value(0, "b"), Some(Value::from("he said \"hi\"")));
    }

    #[test]
    fn crlf_line_endings() {
        let csv = "a,b\r\n1,2\r\n3,4\r\n";
        let t = read_csv(Cursor::new(csv)).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(1, "b"), Some(Value::Int(4)));
    }

    #[test]
    fn missing_trailing_newline() {
        let csv = "a\n1\n2";
        let t = read_csv(Cursor::new(csv)).unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn ragged_rows_error() {
        let csv = "a,b\n1\n";
        assert!(read_csv(Cursor::new(csv)).is_err());
    }

    #[test]
    fn empty_input_errors() {
        assert!(read_csv(Cursor::new("")).is_err());
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(read_csv(Cursor::new("a\n\"oops\n")).is_err());
    }

    #[test]
    fn round_trip() {
        let csv = "id,note,x\n1,\"a,b\",0.5\n2,,1.25\n";
        let t = read_csv(Cursor::new(csv)).unwrap();
        let mut out = Vec::new();
        write_csv(&t, &mut out).unwrap();
        let t2 = read_csv(Cursor::new(String::from_utf8(out).unwrap())).unwrap();
        assert_eq!(t.num_rows(), t2.num_rows());
        assert_eq!(t.value(0, "note"), t2.value(0, "note"));
        assert_eq!(t.value(1, "x"), t2.value(1, "x"));
    }
}
