//! Vectorized grouping kernels over typed column vectors.
//!
//! [`Table::group_by`](crate::table::Table::group_by) historically
//! materialized an owned [`Value`] per cell and bucketed them through a
//! `HashMap<ValueKey, _>` — enum dispatch, a clone, and a hash of a
//! wrapper per row. The kernels here work on the typed `Vec<Option<T>>`
//! storage directly: one pass builds a first-seen dictionary over
//! primitive keys, the (small) dictionary is sorted, and a dense `u32`
//! code per row is remapped into final group ids.
//!
//! The output contract is *byte-identical* to the legacy path:
//!
//! * group ids are dense `0..num_groups`, ascending by the group key's
//!   total order with NULL first (floats order by IEEE total-order bits,
//!   so distinct NaN payloads are distinct groups, exactly like
//!   [`Value::sort_key`]);
//! * row ids within a group are in ascending row order;
//! * group keys are the owned [`Value`]s a per-cell scan would have
//!   produced.
//!
//! [`GroupCodes`] is also the substrate for one-hot feature encoding in
//! `expred-ml`: the per-row code replaces a per-cell heap `String`, and
//! the dictionary is rendered to strings once per *distinct* value.

use crate::column::Column;
use crate::table::GroupBy;
use crate::value::{total_order_bits, Value};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Dense per-row group codes plus the sorted key dictionary.
///
/// Codes are dense `0..num_groups()` and ordered ascending by key with
/// NULL first: if the column has any NULL, code 0 is the NULL group and
/// `keys()[0]` is [`Value::Null`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupCodes {
    codes: Vec<u32>,
    keys: Vec<Value>,
}

impl GroupCodes {
    /// One dense group id per row, in row order.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The group keys, ascending by total order (NULL first if present).
    /// `keys()[code]` is the key of the rows carrying `code`.
    pub fn keys(&self) -> &[Value] {
        &self.keys
    }

    /// Number of distinct groups (NULL counts as one group if present).
    pub fn num_groups(&self) -> usize {
        self.keys.len()
    }

    /// Number of rows encoded.
    pub fn num_rows(&self) -> usize {
        self.codes.len()
    }

    /// Whether group 0 is the NULL group.
    pub fn has_null(&self) -> bool {
        matches!(self.keys.first(), Some(Value::Null))
    }

    /// Expands the codes into the row-list representation used by the
    /// pipelines, labelled with `column`. Equals the legacy
    /// [`Table::group_by`](crate::table::Table::group_by) output exactly.
    pub fn to_group_by(&self, column: &str) -> GroupBy {
        let k = self.keys.len();
        let mut sizes = vec![0u32; k];
        for &c in &self.codes {
            sizes[c as usize] += 1;
        }
        let mut rows: Vec<Vec<u32>> = sizes
            .iter()
            .map(|&n| Vec::with_capacity(n as usize))
            .collect();
        for (row, &c) in self.codes.iter().enumerate() {
            rows[c as usize].push(row as u32);
        }
        GroupBy::new(column.to_owned(), self.keys.clone(), rows, self.codes.len())
    }
}

/// Shared dictionary-encoding loop: `cells` yields one `Option<T>` per
/// row; `key_of` maps a value to a hashable, `Ord` primitive key (the
/// sort order of the final codes); `into_value` recovers the owned
/// [`Value`] for the dictionary. NULL takes provisional code 0 and sorts
/// first; non-NULL values are coded in first-seen order, then remapped to
/// key-sorted dense ids.
fn dictionary_codes<T, K>(
    cells: impl Iterator<Item = Option<T>>,
    len: usize,
    key_of: impl Fn(&T) -> K,
    into_value: impl Fn(T) -> Value,
) -> GroupCodes
where
    K: Ord + std::hash::Hash + Eq,
{
    let mut provisional: Vec<u32> = Vec::with_capacity(len);
    let mut dict: HashMap<K, u32> = HashMap::new();
    // Provisional code -> representative value (code 0 = NULL, so
    // representatives are offset by one).
    let mut reps: Vec<T> = Vec::new();
    let mut saw_null = false;
    for cell in cells {
        let code = match cell {
            None => {
                saw_null = true;
                0
            }
            Some(x) => match dict.entry(key_of(&x)) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(slot) => {
                    let c = reps.len() as u32 + 1;
                    slot.insert(c);
                    reps.push(x);
                    c
                }
            },
        };
        provisional.push(code);
    }
    // Sort the distinct non-NULL values by key; the dictionary is tiny
    // relative to the row count, so this is the cheap part.
    let mut order: Vec<u32> = (0..reps.len() as u32).collect();
    order.sort_by(|&a, &b| key_of(&reps[a as usize]).cmp(&key_of(&reps[b as usize])));
    // Remap provisional codes to final dense, key-sorted ids (NULL first).
    let base = saw_null as u32;
    let mut remap = vec![0u32; reps.len() + 1];
    for (rank, &prov) in order.iter().enumerate() {
        remap[prov as usize + 1] = rank as u32 + base;
    }
    let codes: Vec<u32> = provisional.into_iter().map(|c| remap[c as usize]).collect();
    let mut keys = Vec::with_capacity(reps.len() + base as usize);
    if saw_null {
        keys.push(Value::Null);
    }
    let mut slots: Vec<Option<T>> = reps.into_iter().map(Some).collect();
    for &prov in &order {
        let rep = slots[prov as usize].take().expect("each rep moved once");
        keys.push(into_value(rep));
    }
    GroupCodes { codes, keys }
}

impl Column {
    /// Dictionary-encodes the column into dense group codes plus a
    /// key-sorted dictionary, straight from the typed vectors — no
    /// per-cell [`Value`] materialization. See [`GroupCodes`] for the
    /// ordering contract.
    pub fn group_codes(&self) -> GroupCodes {
        match self {
            Column::Bool(v) => dictionary_codes(v.iter().copied(), v.len(), |b| *b, Value::Bool),
            Column::Int(v) => dictionary_codes(v.iter().copied(), v.len(), |i| *i, Value::Int),
            Column::Float(v) => dictionary_codes(
                v.iter().copied(),
                v.len(),
                |f| total_order_bits(*f),
                Value::Float,
            ),
            Column::Str(v) => dictionary_codes(
                v.iter().map(|s| s.as_deref()),
                v.len(),
                |s| *s,
                |s| Value::Str(s.to_owned()),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn column_of(data_type: DataType, values: Vec<Value>) -> Column {
        let mut c = Column::empty(data_type);
        for v in values {
            c.push(v).unwrap();
        }
        c
    }

    #[test]
    fn int_codes_sort_with_null_first() {
        let c = column_of(
            DataType::Int,
            vec![
                Value::Int(5),
                Value::Null,
                Value::Int(-2),
                Value::Int(5),
                Value::Int(0),
            ],
        );
        let gc = c.group_codes();
        assert_eq!(
            gc.keys(),
            &[Value::Null, Value::Int(-2), Value::Int(0), Value::Int(5)]
        );
        assert_eq!(gc.codes(), &[3, 0, 1, 3, 2]);
        assert!(gc.has_null());
        assert_eq!(gc.num_groups(), 4);
        assert_eq!(gc.num_rows(), 5);
    }

    #[test]
    fn str_codes_sort_lexicographically() {
        let c = column_of(
            DataType::Str,
            vec![Value::from("b"), Value::from("a"), Value::from("b")],
        );
        let gc = c.group_codes();
        assert_eq!(gc.keys(), &[Value::from("a"), Value::from("b")]);
        assert_eq!(gc.codes(), &[1, 0, 1]);
        assert!(!gc.has_null());
    }

    #[test]
    fn float_codes_follow_total_order() {
        // -0.0 < 0.0 in total order, and NaN sorts above +inf.
        let c = column_of(
            DataType::Float,
            vec![
                Value::Float(f64::NAN),
                Value::Float(0.0),
                Value::Float(-0.0),
                Value::Float(f64::NEG_INFINITY),
            ],
        );
        let gc = c.group_codes();
        assert_eq!(gc.codes(), &[3, 2, 1, 0]);
        assert_eq!(gc.keys()[0], Value::Float(f64::NEG_INFINITY));
        assert!(gc.keys()[3].as_float().unwrap().is_nan());
    }

    #[test]
    fn to_group_by_round_trips() {
        let c = column_of(
            DataType::Int,
            vec![Value::Int(1), Value::Int(2), Value::Int(1)],
        );
        let g = c.group_codes().to_group_by("a");
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.rows(0), &[0, 2]);
        assert_eq!(g.rows(1), &[1]);
        assert_eq!(g.key(0), &Value::Int(1));
    }

    #[test]
    fn empty_column_yields_no_groups() {
        let gc = Column::empty(DataType::Bool).group_codes();
        assert_eq!(gc.num_groups(), 0);
        assert_eq!(gc.num_rows(), 0);
        let g = gc.to_group_by("b");
        assert_eq!(g.num_groups(), 0);
        assert_eq!(g.num_rows(), 0);
    }
}
