//! Synthetic dataset generators calibrated to the paper's evaluation data.
//!
//! The paper evaluates on four real datasets (Lending Club, Prosper,
//! Census/Adult, Bank Marketing) that are not redistributable. Its
//! algorithms, however, observe the data only through (a) group sizes
//! `t_a`, (b) group selectivities (via sampling or exactly), and (c)
//! feature vectors for the ML baselines. The paper publishes all of the
//! group-level statistics it depends on — Table 2 (overall selectivity)
//! and Table 3 (group count, group-size deviation, group-selectivity
//! deviation, and the Pearson correlation between size and selectivity) —
//! so we generate synthetic clones matching those statistics and add
//! auxiliary columns of varying predictive strength to exercise the
//! column-selection and ML-virtual-column machinery (§4.4, §6.3.2).
//!
//! Where positivity forces a compromise (Census's published size deviation
//! exceeds its mean group size, which caps how much spread positive sizes
//! can carry for a smooth generator), the generator gets as close as it can
//! and [`Dataset::group_stats`] reports the *achieved* statistics; the
//! Table 3 experiment prints achieved-vs-paper side by side.

use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};
use expred_stats::descriptive::{pearson, Accumulator};
use expred_stats::rng::Prng;

/// Name of the hidden ground-truth column carried by every synthetic
/// dataset. Algorithms must never read it directly; the `expred-udf` crate
/// wraps it in an audited oracle.
pub const LABEL_COLUMN: &str = "udf_label";

/// Target statistics for a synthetic dataset (from the paper's Tables 2/3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: &'static str,
    /// Total number of tuples.
    pub rows: usize,
    /// Number of groups under the designated predictor column.
    pub groups: usize,
    /// Overall (tuple-weighted) selectivity of the UDF predicate.
    pub selectivity: f64,
    /// Sample standard deviation of group sizes.
    pub size_dev: f64,
    /// Sample standard deviation of group selectivities.
    pub sel_dev: f64,
    /// Pearson correlation between group size and group selectivity.
    pub size_sel_corr: f64,
    /// Name of the designated predictor column.
    pub predictor: &'static str,
}

/// Lending Club clone: 53k tuples, selectivity 0.72, 7 grade groups.
pub const LENDING_CLUB: DatasetSpec = DatasetSpec {
    name: "lc",
    rows: 53_000,
    groups: 7,
    selectivity: 0.72,
    size_dev: 5_233.0,
    sel_dev: 0.13,
    size_sel_corr: 0.84,
    predictor: "grade",
};

/// Prosper clone: 30k tuples, selectivity 0.45, 8 grade groups.
pub const PROSPER: DatasetSpec = DatasetSpec {
    name: "prosper",
    rows: 30_000,
    groups: 8,
    selectivity: 0.45,
    size_dev: 1_521.0,
    sel_dev: 0.20,
    size_sel_corr: 0.20,
    predictor: "grade",
};

/// Census (Adult) clone: 45k tuples, selectivity 0.24, 7 marital-status
/// groups.
pub const CENSUS: DatasetSpec = DatasetSpec {
    name: "census",
    rows: 45_000,
    groups: 7,
    selectivity: 0.24,
    size_dev: 8_183.0,
    sel_dev: 0.15,
    size_sel_corr: 0.36,
    predictor: "marital_status",
};

/// Bank Marketing clone: 41k tuples, selectivity 0.11, 10
/// employment-variation-rate groups.
pub const MARKETING: DatasetSpec = DatasetSpec {
    name: "marketing",
    rows: 41_000,
    groups: 10,
    selectivity: 0.11,
    size_dev: 5_070.0,
    sel_dev: 0.20,
    size_sel_corr: -0.65,
    predictor: "emp_var_rate",
};

/// The paper's four datasets, in the order they appear in Table 2.
pub fn all_specs() -> [DatasetSpec; 4] {
    [LENDING_CLUB, PROSPER, CENSUS, MARKETING]
}

/// Looks up a spec by name (`lc`, `prosper`, `census`, `marketing`).
pub fn spec_by_name(name: &str) -> Option<DatasetSpec> {
    all_specs().into_iter().find(|s| s.name == name)
}

/// A generated dataset: the table plus the metadata experiments need.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The generated relation, including the hidden [`LABEL_COLUMN`].
    pub table: Table,
    /// The spec this dataset was calibrated to.
    pub spec: DatasetSpec,
    /// The seed it was generated from.
    pub seed: u64,
}

/// Achieved group-level statistics (the quantities of the paper's Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStatsSummary {
    /// Number of groups.
    pub num_groups: usize,
    /// Sample standard deviation of group sizes.
    pub size_dev: f64,
    /// Sample standard deviation of group selectivities.
    pub sel_dev: f64,
    /// Pearson correlation between size and selectivity.
    pub size_sel_corr: f64,
    /// Tuple-weighted overall selectivity.
    pub overall_selectivity: f64,
    /// Per-group `(size, selectivity)` pairs in group order.
    pub per_group: Vec<(usize, f64)>,
}

impl Dataset {
    /// Generates the dataset for a spec with a given seed.
    pub fn generate(spec: DatasetSpec, seed: u64) -> Self {
        let mut rng = Prng::seeded(seed ^ hash_name(spec.name));
        let (sizes, sels) = calibrate_groups(&spec, &mut rng);

        // Per-row plan: (group index, ground-truth label), shuffled so that
        // physical row order carries no signal.
        let mut plan: Vec<(usize, bool)> = Vec::with_capacity(spec.rows);
        for (g, (&t, &s)) in sizes.iter().zip(&sels).enumerate() {
            let correct = ((t as f64) * s).round().clamp(0.0, t as f64) as usize;
            let mut labels = vec![true; correct];
            labels.extend(std::iter::repeat_n(false, t - correct));
            rng.shuffle(&mut labels);
            plan.extend(labels.into_iter().map(|l| (g, l)));
        }
        rng.shuffle(&mut plan);

        let table = build_table(&spec, &plan, &mut rng);
        Self { table, spec, seed }
    }

    /// The designated predictor column name.
    pub fn predictor(&self) -> &'static str {
        self.spec.predictor
    }

    /// Computes the achieved Table 3 statistics for `column` against the
    /// hidden label. This reads ground truth and is for *evaluation only*.
    pub fn group_stats(&self, column: &str) -> GroupStatsSummary {
        let groups = self
            .table
            .group_by(column)
            .expect("group column must exist");
        let labels = self
            .table
            .column(LABEL_COLUMN)
            .expect("label column must exist");
        let mut sizes = Vec::new();
        let mut sels = Vec::new();
        let mut per_group = Vec::new();
        let mut correct_total = 0usize;
        for (_, _, rows) in groups.iter() {
            let correct = rows
                .iter()
                .filter(|&&r| labels.bool_at(r as usize) == Some(true))
                .count();
            correct_total += correct;
            let sel = correct as f64 / rows.len() as f64;
            sizes.push(rows.len() as f64);
            sels.push(sel);
            per_group.push((rows.len(), sel));
        }
        GroupStatsSummary {
            num_groups: sizes.len(),
            size_dev: Accumulator::from_slice(&sizes).sample_std_dev(),
            sel_dev: Accumulator::from_slice(&sels).sample_std_dev(),
            size_sel_corr: pearson(&sizes, &sels),
            overall_selectivity: correct_total as f64 / self.table.num_rows() as f64,
            per_group,
        }
    }

    /// Names of all categorical columns that are plausible predictor
    /// candidates (everything except the label and the row id).
    pub fn candidate_columns(&self) -> Vec<String> {
        self.table
            .schema()
            .fields()
            .iter()
            .filter(|f| f.name() != LABEL_COLUMN && f.name() != "row_id")
            .filter(|f| f.data_type() == DataType::Str)
            .map(|f| f.name().to_owned())
            .collect()
    }

    /// Names of the numeric feature columns (for the ML baselines).
    pub fn numeric_columns(&self) -> Vec<String> {
        self.table
            .schema()
            .fields()
            .iter()
            .filter(|f| f.name() != "row_id")
            .filter(|f| matches!(f.data_type(), DataType::Float | DataType::Int))
            .map(|f| f.name().to_owned())
            .collect()
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, so each dataset name perturbs the seed deterministically.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Constructs group sizes and selectivities matching the spec's deviations
/// and correlation as closely as positivity allows.
fn calibrate_groups(spec: &DatasetSpec, rng: &mut Prng) -> (Vec<usize>, Vec<f64>) {
    let k = spec.groups;
    assert!(k >= 2, "need at least two groups");

    // u: standardized increasing pattern — the selectivity direction.
    let u = standardize((0..k).map(|i| i as f64).collect());

    // w: a positively skewed direction orthogonal to u (sample inner
    // product), so group sizes can spread widely while staying positive.
    let w = {
        let mut base: Vec<f64>;
        loop {
            base = (0..k).map(|_| (1.2 * rng.gaussian()).exp()).collect();
            let centered = center(&base);
            let proj: f64 = dot(&centered, &u) / dot(&u, &u).max(1e-12);
            let resid: Vec<f64> = centered
                .iter()
                .zip(&u)
                .map(|(b, ui)| b - proj * ui)
                .collect();
            if dot(&resid, &resid) > 1e-6 {
                break standardize(resid);
            }
        }
    };

    // z: unit-deviation direction with exact sample correlation r to u.
    let r = spec.size_sel_corr.clamp(-0.999, 0.999);
    let z: Vec<f64> = u
        .iter()
        .zip(&w)
        .map(|(ui, wi)| r * ui + (1.0 - r * r).sqrt() * wi)
        .collect();

    // Sizes: mean + dev * z, with dev capped so the smallest group stays
    // above a floor (positivity compromise; see module docs).
    let mean_size = spec.rows as f64 / k as f64;
    let floor = (spec.rows as f64 * 0.004).max(64.0);
    let min_z = z.iter().cloned().fold(f64::INFINITY, f64::min);
    let dev = if min_z < 0.0 {
        spec.size_dev.min(0.98 * (mean_size - floor) / (-min_z))
    } else {
        spec.size_dev
    };
    let mut sizes_f: Vec<f64> = z
        .iter()
        .map(|zi| (mean_size + dev * zi).max(floor))
        .collect();
    // Renormalize to the exact row count with largest-remainder rounding.
    let total: f64 = sizes_f.iter().sum();
    for s in &mut sizes_f {
        *s *= spec.rows as f64 / total;
    }
    let mut sizes: Vec<usize> = sizes_f
        .iter()
        .map(|&s| s.floor().max(1.0) as usize)
        .collect();
    let mut deficit = spec.rows as isize - sizes.iter().sum::<usize>() as isize;
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        let fa = sizes_f[a] - sizes_f[a].floor();
        let fb = sizes_f[b] - sizes_f[b].floor();
        fb.partial_cmp(&fa).unwrap()
    });
    let mut i = 0;
    while deficit != 0 {
        let g = order[i % k];
        if deficit > 0 {
            sizes[g] += 1;
            deficit -= 1;
        } else if sizes[g] > 1 {
            sizes[g] -= 1;
            deficit += 1;
        }
        i += 1;
    }

    // Selectivities s_i = clamp(c + sel_dev * u_i). The tuple-weighted mean
    // is monotone nondecreasing in the intercept c, so bisection pins it to
    // the spec exactly (up to clamp saturation, which cannot occur unless
    // the target itself lies outside the clamp range).
    let weighted_mean = |c: f64| -> f64 {
        sizes
            .iter()
            .zip(&u)
            .map(|(&t, &ui)| t as f64 * (c + spec.sel_dev * ui).clamp(0.02, 0.98))
            .sum::<f64>()
            / spec.rows as f64
    };
    let (mut lo, mut hi) = (-2.0, 3.0);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if weighted_mean(mid) < spec.selectivity {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let c = 0.5 * (lo + hi);
    let sels: Vec<f64> = u
        .iter()
        .map(|&ui| (c + spec.sel_dev * ui).clamp(0.02, 0.98))
        .collect();
    (sizes, sels)
}

fn center(xs: &[f64]) -> Vec<f64> {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    xs.iter().map(|x| x - mean).collect()
}

fn standardize(xs: Vec<f64>) -> Vec<f64> {
    let centered = center(&xs);
    let acc = Accumulator::from_slice(&xs);
    let sd = acc.sample_std_dev().max(1e-12);
    centered.into_iter().map(|x| x / sd).collect()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// The auxiliary-column suite: one strong noisy copy of the predictor,
/// several label-driven categoricals of decreasing strength, pure-noise
/// categoricals, and numeric features carrying a logistic signal.
fn build_table(spec: &DatasetSpec, plan: &[(usize, bool)], rng: &mut Prng) -> Table {
    let k = spec.groups;
    // Per-tuple feature signal is deliberately weak: the paper's real
    // datasets are far from linearly separable (their ML baselines need
    // large labelled samples, §6.2), and class overlap is not among the
    // published statistics we calibrate to. Group-level structure (the
    // predictor column) carries the exploitable correlation; the auxiliary
    // features only nudge per-tuple posteriors.
    let aux_cat: [(&str, f64, usize); 4] = [
        // (name, label-signal strength, cardinality)
        ("housing_status", 0.28, 4),
        ("purpose", 0.18, 8),
        ("employment_title", 0.10, 12),
        ("term", 0.12, 2),
    ];
    let noisy_predictors: [(&str, f64); 3] = [
        // Corrupted copies of the predictor column at varying fidelity.
        ("sub_grade", 0.85),
        ("channel", 0.55),
        ("region_bucket", 0.30),
    ];
    let noise_cats: [(&str, usize); 2] = [("zip3", 40), ("weekday", 7)];
    let numeric: [(&str, f64, f64, f64); 3] = [
        // (name, base, label delta in sigmas, sigma)
        ("annual_income", 52_000.0, 0.35, 18_000.0),
        ("debt_to_income", 0.42, -0.25, 0.16),
        ("account_age", 7.5, 0.10, 3.0),
    ];

    let mut fields = vec![
        Field::new("row_id", DataType::Int),
        Field::new(spec.predictor, DataType::Str),
    ];
    for (name, _) in noisy_predictors {
        fields.push(Field::new(name, DataType::Str));
    }
    for (name, _, _) in aux_cat {
        fields.push(Field::new(name, DataType::Str));
    }
    for (name, _) in noise_cats {
        fields.push(Field::new(name, DataType::Str));
    }
    for (name, _, _, _) in numeric {
        fields.push(Field::new(name, DataType::Float));
    }
    fields.push(Field::new(LABEL_COLUMN, DataType::Bool));
    let schema = Schema::new(fields);
    let mut table = Table::empty(schema);

    // Label-driven categorical distributions: geometric weights, reversed
    // between the two label classes; `strength` interpolates with uniform.
    let cat_value = |rng: &mut Prng, label: bool, strength: f64, card: usize| -> usize {
        if !rng.bernoulli(strength) {
            return rng.below(card);
        }
        // Geometric-ish skew toward one end, direction depends on label.
        let mut idx = 0usize;
        while idx + 1 < card && rng.bernoulli(0.45) {
            idx += 1;
        }
        if label {
            idx
        } else {
            card - 1 - idx
        }
    };

    for (row_id, &(group, label)) in plan.iter().enumerate() {
        let mut row: Vec<Value> = Vec::with_capacity(table.num_columns());
        row.push(Value::Int(row_id as i64));
        row.push(Value::Str(group_label(spec.predictor, group)));
        for (_, fidelity) in noisy_predictors {
            let g = if rng.bernoulli(fidelity) {
                group
            } else {
                rng.below(k)
            };
            row.push(Value::Str(group_label("noisy", g)));
        }
        for (name, strength, card) in aux_cat {
            let v = cat_value(rng, label, strength, card);
            row.push(Value::Str(format!("{name}_{v}")));
        }
        for (name, card) in noise_cats {
            row.push(Value::Str(format!("{name}_{}", rng.below(card))));
        }
        for (_, base, delta_sigmas, sigma) in numeric {
            let shift = if label { delta_sigmas * sigma } else { 0.0 };
            row.push(Value::Float(base + shift + sigma * rng.gaussian()));
        }
        row.push(Value::Bool(label));
        table
            .push_row(row)
            .expect("generated row must match schema");
    }
    table
}

/// Human-readable group labels: letters for grade-like columns, numbered
/// levels otherwise.
fn group_label(prefix: &str, group: usize) -> String {
    if prefix == "grade" || prefix == "noisy" {
        let letter = (b'A' + (group % 26) as u8) as char;
        format!("{letter}")
    } else {
        format!("{prefix}_{group}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_lookup() {
        assert_eq!(spec_by_name("lc"), Some(LENDING_CLUB));
        assert_eq!(spec_by_name("nope"), None);
        assert_eq!(all_specs().len(), 4);
    }

    #[test]
    fn lending_club_matches_calibration() {
        let ds = Dataset::generate(LENDING_CLUB, 1);
        assert_eq!(ds.table.num_rows(), 53_000);
        let stats = ds.group_stats("grade");
        assert_eq!(stats.num_groups, 7);
        assert!(
            (stats.overall_selectivity - 0.72).abs() < 0.01,
            "selectivity {}",
            stats.overall_selectivity
        );
        assert!(
            (stats.sel_dev - 0.13).abs() < 0.04,
            "sel_dev {}",
            stats.sel_dev
        );
        assert!(
            stats.size_sel_corr > 0.5,
            "corr {} should be strongly positive",
            stats.size_sel_corr
        );
        assert!(stats.size_dev > 2_000.0, "size_dev {}", stats.size_dev);
    }

    #[test]
    fn marketing_has_negative_correlation() {
        let ds = Dataset::generate(MARKETING, 1);
        let stats = ds.group_stats("emp_var_rate");
        assert_eq!(stats.num_groups, 10);
        assert!(
            stats.size_sel_corr < -0.3,
            "corr {} should be strongly negative",
            stats.size_sel_corr
        );
        assert!(
            (stats.overall_selectivity - 0.11).abs() < 0.01,
            "selectivity {}",
            stats.overall_selectivity
        );
    }

    #[test]
    fn all_datasets_hit_overall_selectivity() {
        for spec in all_specs() {
            let ds = Dataset::generate(spec, 7);
            let stats = ds.group_stats(spec.predictor);
            assert!(
                (stats.overall_selectivity - spec.selectivity).abs() < 0.015,
                "{}: got {}",
                spec.name,
                stats.overall_selectivity
            );
            assert_eq!(stats.num_groups, spec.groups, "{}", spec.name);
            assert_eq!(ds.table.num_rows(), spec.rows, "{}", spec.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(PROSPER, 5);
        let b = Dataset::generate(PROSPER, 5);
        assert_eq!(a.table, b.table);
        let c = Dataset::generate(PROSPER, 6);
        assert_ne!(a.table, c.table);
    }

    #[test]
    fn candidate_columns_exclude_label_and_id() {
        let ds = Dataset::generate(PROSPER, 2);
        let cols = ds.candidate_columns();
        assert!(cols.contains(&"grade".to_owned()));
        assert!(!cols.contains(&LABEL_COLUMN.to_owned()));
        assert!(!cols.contains(&"row_id".to_owned()));
        assert!(cols.len() >= 8, "want a rich candidate set, got {cols:?}");
    }

    #[test]
    fn numeric_columns_present() {
        let ds = Dataset::generate(CENSUS, 3);
        let nums = ds.numeric_columns();
        assert!(nums.contains(&"annual_income".to_owned()));
        assert!(nums.contains(&"debt_to_income".to_owned()));
    }

    #[test]
    fn numeric_signal_separates_classes() {
        let ds = Dataset::generate(LENDING_CLUB, 4);
        let income = ds.table.column("annual_income").unwrap();
        let labels = ds.table.column(LABEL_COLUMN).unwrap();
        let (mut pos, mut neg) = (Accumulator::new(), Accumulator::new());
        for r in 0..ds.table.num_rows() {
            let x = income.float_at(r).unwrap();
            if labels.bool_at(r).unwrap() {
                pos.push(x);
            } else {
                neg.push(x);
            }
        }
        // The signal is deliberately weak (0.35 sigma = ~6.3k) so the ML
        // baselines face realistic class overlap; it must still exist.
        assert!(
            pos.mean() - neg.mean() > 3_000.0,
            "income should separate classes: {} vs {}",
            pos.mean(),
            neg.mean()
        );
    }

    #[test]
    fn predictor_groups_carry_signal() {
        // The designated predictor must be far more informative than noise:
        // its per-group selectivities must spread widely.
        let ds = Dataset::generate(LENDING_CLUB, 5);
        let stats = ds.group_stats("grade");
        let noise = ds.group_stats("weekday");
        assert!(stats.sel_dev > 4.0 * noise.sel_dev.max(1e-3));
    }
}
