//! The in-memory relation and its group-by operation.
//!
//! The paper's algorithms never need joins or sorts over the base relation;
//! they need (a) row access by index, (b) partitioning rows into *groups*
//! by the value of a (possibly virtual) correlated column, and (c) cheap
//! per-column metadata (distinct counts) for the column-selection procedure
//! of §4.4. [`Table`] provides exactly that.

use crate::column::Column;
use crate::schema::Schema;
use crate::stats::{scan_column, ColumnStats, ScanPredicate, ScanStats, StatsCache};
use crate::value::{Value, ValueKey};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-unique identity of one [`Table`] instance.
///
/// Cache layers key entries by `(TableId, version)`: the id distinguishes
/// *instances* (two independently built tables never share cache entries,
/// even with identical content), while [`Table::version`] distinguishes
/// *states* of one instance across mutations. Clones share the id — they
/// start as the same logical table — and diverge by version as soon as
/// their contents diverge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(u64);

impl TableId {
    /// The raw id, for embedding into cache namespace keys.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Source of fresh [`TableId`]s. Starts at 1 so 0 can mean "no table" in
/// downstream key encodings.
static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(1);

/// An immutable-after-build, columnar, in-memory relation.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
    id: TableId,
    version: u64,
    /// Lazily computed per-`(column, version)` stats memo, shared by
    /// clones (entries are version-keyed, so sharing is safe even after
    /// clones diverge).
    stats: Arc<StatsCache>,
}

impl PartialEq for Table {
    /// Content equality: identity (id, version) is deliberately excluded,
    /// so two tables built independently from the same rows compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.columns == other.columns
            && self.num_rows == other.num_rows
    }
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.data_type()))
            .collect();
        Self {
            schema,
            columns,
            num_rows: 0,
            id: TableId(NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed)),
            version: 0,
            stats: Arc::new(StatsCache::default()),
        }
    }

    /// Builds a table from rows, validating types against the schema.
    pub fn from_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Result<Self, String> {
        let mut table = Self::empty(schema);
        for row in rows {
            table.push_row(row)?;
        }
        Ok(table)
    }

    /// Appends one row. Errors on arity or type mismatch, and on NULLs in
    /// non-nullable fields.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), String> {
        if row.len() != self.schema.len() {
            return Err(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.schema.len()
            ));
        }
        for (idx, value) in row.iter().enumerate() {
            let field = self.schema.field_at(idx);
            if value.is_null() && !field.is_nullable() {
                return Err(format!("NULL in non-nullable field {:?}", field.name()));
            }
        }
        // Fold the row into the version fingerprint *after* validation, so
        // failed pushes leave the version (and hence cache keys) untouched.
        let mut row_hash = 0xcbf2_9ce4_8422_2325u64;
        for value in &row {
            row_hash = row_hash
                .rotate_left(5)
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(value.fingerprint());
        }
        for (idx, value) in row.into_iter().enumerate() {
            self.columns[idx].push(value)?;
        }
        self.num_rows += 1;
        self.version = self
            .version
            .rotate_left(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(row_hash)
            | 1; // never 0, so "mutated at least once" is observable
        Ok(())
    }

    /// This instance's stable identity (shared by clones).
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Content fingerprint of the table's current state.
    ///
    /// Deterministic in the sequence of pushed rows: every mutation bumps
    /// it, equal construction histories produce equal versions, and
    /// diverging clones diverge. Cache entries keyed by `(id, version)`
    /// are therefore invalidated wholesale by any mutation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The column with the given name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// The column at an index.
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// The cell at `(row, column-name)`.
    pub fn value(&self, row: usize, column: &str) -> Option<Value> {
        self.column(column).map(|c| c.value(row))
    }

    /// Materializes one full row (mostly for tests and display).
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Partitions all rows by the value of `column`.
    ///
    /// Group order is deterministic: ascending by the group key's total
    /// order (NULL first), so downstream algorithms and experiments are
    /// reproducible. Runs on the vectorized grouping kernel
    /// ([`Column::group_codes`](crate::kernels::GroupCodes)); output is
    /// byte-identical to the scalar [`Self::group_by_reference`].
    pub fn group_by(&self, column: &str) -> Result<GroupBy, String> {
        let col = self
            .column(column)
            .ok_or_else(|| format!("no column named {column:?}"))?;
        Ok(col.group_codes().to_group_by(column))
    }

    /// The legacy per-[`Value`] group-by: materializes an owned value per
    /// cell and buckets through a `HashMap<ValueKey, _>`. Kept as the
    /// scalar reference the kernel path is property-tested (and benched)
    /// against.
    pub fn group_by_reference(&self, column: &str) -> Result<GroupBy, String> {
        let col = self
            .column(column)
            .ok_or_else(|| format!("no column named {column:?}"))?;
        // First pass: bucket row ids by key.
        let mut buckets: HashMap<ValueKey<'_>, Vec<u32>> = HashMap::new();
        let keys_owned: Vec<Value> = (0..self.num_rows).map(|r| col.value(r)).collect();
        for (row, key) in keys_owned.iter().enumerate() {
            buckets.entry(key.sort_key()).or_default().push(row as u32);
        }
        // Deterministic group order: sort by key.
        let mut entries: Vec<(ValueKey<'_>, Vec<u32>)> = buckets.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut keys = Vec::with_capacity(entries.len());
        let mut rows = Vec::with_capacity(entries.len());
        for (key, group_rows) in entries {
            // Recover an owned Value for the key from its first row.
            let first = group_rows[0] as usize;
            debug_assert_eq!(keys_owned[first].sort_key(), key);
            keys.push(keys_owned[first].clone());
            rows.push(group_rows);
        }
        Ok(GroupBy::new(column.to_owned(), keys, rows, self.num_rows))
    }

    /// Memoized per-column statistics (bounds, NULL census, distinct
    /// count, zone maps) for the named column. Computed lazily, once per
    /// `(column, version)`; repeat calls — including across clones at the
    /// same version — are a map lookup.
    pub fn column_stats(&self, name: &str) -> Option<Arc<ColumnStats>> {
        self.schema.index_of(name).map(|i| self.column_stats_at(i))
    }

    /// [`Self::column_stats`] by column index.
    pub fn column_stats_at(&self, idx: usize) -> Arc<ColumnStats> {
        self.stats
            .get_or_compute(idx, self.version, &self.columns[idx])
    }

    /// Evaluates a cheap predicate over `column` through its zone maps:
    /// chunks whose bounds prove no row can match are skipped without any
    /// per-row work. Returns matching row ids (ascending) and the skip
    /// accounting.
    pub fn scan(
        &self,
        column: &str,
        pred: &ScanPredicate,
    ) -> Result<(Vec<u32>, ScanStats), String> {
        let idx = self
            .schema
            .index_of(column)
            .ok_or_else(|| format!("no column named {column:?}"))?;
        let stats = self.column_stats_at(idx);
        scan_column(&self.columns[idx], &stats, pred)
    }
}

/// The result of partitioning a table's rows by a column's values.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupBy {
    column: String,
    keys: Vec<Value>,
    rows: Vec<Vec<u32>>,
    num_rows: usize,
}

impl GroupBy {
    /// Builds a grouping from externally computed assignments.
    ///
    /// This is also the entry point for *virtual* columns (paper §4.4):
    /// bucketized classifier scores never materialize as a table column,
    /// they arrive here directly.
    pub fn new(column: String, keys: Vec<Value>, rows: Vec<Vec<u32>>, num_rows: usize) -> Self {
        assert_eq!(keys.len(), rows.len(), "one key per group required");
        assert!(
            rows.iter().all(|g| !g.is_empty()),
            "groups must be nonempty"
        );
        let total: usize = rows.iter().map(|g| g.len()).sum();
        assert_eq!(total, num_rows, "groups must partition all rows");
        Self {
            column,
            keys,
            rows,
            num_rows,
        }
    }

    /// Builds a grouping from a per-row group-id assignment (ids must be
    /// dense `0..k`).
    pub fn from_assignments(column: &str, assignments: &[usize]) -> Self {
        let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (row, &g) in assignments.iter().enumerate() {
            rows[g].push(row as u32);
        }
        // Drop empty buckets while preserving order, renumbering keys.
        let mut keys = Vec::new();
        let mut kept = Vec::new();
        for (id, group) in rows.into_iter().enumerate() {
            if !group.is_empty() {
                keys.push(Value::Int(id as i64));
                kept.push(group);
            }
        }
        Self::new(column.to_owned(), keys, kept, assignments.len())
    }

    /// The grouping column's name (or the virtual column's label).
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.keys.len()
    }

    /// Total number of rows across groups.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The key of group `g`.
    pub fn key(&self, g: usize) -> &Value {
        &self.keys[g]
    }

    /// The row ids in group `g`.
    pub fn rows(&self, g: usize) -> &[u32] {
        &self.rows[g]
    }

    /// The size `t_a` of group `g`.
    pub fn size(&self, g: usize) -> usize {
        self.rows[g].len()
    }

    /// All group sizes.
    pub fn sizes(&self) -> Vec<usize> {
        self.rows.iter().map(|g| g.len()).collect()
    }

    /// Iterator over `(group_index, key, row_ids)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Value, &[u32])> {
        self.keys
            .iter()
            .enumerate()
            .map(move |(i, k)| (i, k, self.rows[i].as_slice()))
    }

    /// Inverse mapping: for each row, which group contains it.
    pub fn group_of_rows(&self) -> Vec<usize> {
        let mut out = vec![usize::MAX; self.num_rows];
        for (g, rows) in self.rows.iter().enumerate() {
            for &r in rows {
                out[r as usize] = g;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("name", DataType::Str),
            Field::new("good", DataType::Bool),
        ]);
        let rows = vec![
            vec![Value::Int(1), Value::from("w"), Value::Bool(true)],
            vec![Value::Int(2), Value::from("x"), Value::Bool(false)],
            vec![Value::Int(1), Value::from("y"), Value::Bool(true)],
            vec![Value::Int(3), Value::from("z"), Value::Bool(false)],
            vec![Value::Int(2), Value::from("v"), Value::Bool(true)],
        ];
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn build_and_access() {
        let t = sample_table();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.value(3, "name"), Some(Value::from("z")));
        assert_eq!(
            t.row(0),
            vec![Value::Int(1), Value::from("w"), Value::Bool(true)]
        );
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = sample_table();
        assert!(t.push_row(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn null_in_non_nullable_rejected() {
        let mut t = sample_table();
        let err = t
            .push_row(vec![Value::Null, Value::from("q"), Value::Bool(true)])
            .unwrap_err();
        assert!(err.contains("non-nullable"), "{err}");
    }

    #[test]
    fn group_by_partitions_rows() {
        let t = sample_table();
        let g = t.group_by("a").unwrap();
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.num_rows(), 5);
        // Sorted keys: 1, 2, 3.
        assert_eq!(g.key(0), &Value::Int(1));
        assert_eq!(g.rows(0), &[0, 2]);
        assert_eq!(g.key(1), &Value::Int(2));
        assert_eq!(g.rows(1), &[1, 4]);
        assert_eq!(g.size(2), 1);
        assert_eq!(g.sizes(), vec![2, 2, 1]);
    }

    #[test]
    fn group_of_rows_inverts() {
        let t = sample_table();
        let g = t.group_by("a").unwrap();
        let inv = g.group_of_rows();
        for (gi, _, rows) in g.iter() {
            for &r in rows {
                assert_eq!(inv[r as usize], gi);
            }
        }
    }

    #[test]
    fn group_by_missing_column_errors() {
        let t = sample_table();
        assert!(t.group_by("nope").is_err());
    }

    #[test]
    fn from_assignments_drops_empty_buckets() {
        let g = GroupBy::from_assignments("virt", &[0, 2, 2, 0]);
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.rows(0), &[0, 3]);
        assert_eq!(g.rows(1), &[1, 2]);
        assert_eq!(g.key(0), &Value::Int(0));
        assert_eq!(g.key(1), &Value::Int(2));
    }

    #[test]
    fn ids_are_unique_and_clones_share_them() {
        let a = sample_table();
        let b = sample_table();
        assert_ne!(a.id(), b.id(), "independent tables get distinct ids");
        assert_eq!(a, b, "identity must not leak into content equality");
        let c = a.clone();
        assert_eq!(a.id(), c.id());
        assert_eq!(a.version(), c.version());
    }

    #[test]
    fn version_tracks_content() {
        let mut a = sample_table();
        let mut b = sample_table();
        assert_eq!(a.version(), b.version(), "same build history, same version");
        let before = a.version();
        a.push_row(vec![Value::Int(9), Value::from("q"), Value::Bool(true)])
            .unwrap();
        assert_ne!(a.version(), before, "mutation must bump the version");
        // Same mutation on an equal table converges to the same version…
        b.push_row(vec![Value::Int(9), Value::from("q"), Value::Bool(true)])
            .unwrap();
        assert_eq!(a.version(), b.version());
        // …while a different row diverges.
        let mut c = sample_table();
        c.push_row(vec![Value::Int(9), Value::from("q"), Value::Bool(false)])
            .unwrap();
        assert_ne!(a.version(), c.version());
    }

    #[test]
    fn failed_push_leaves_version_unchanged() {
        let mut t = sample_table();
        let before = t.version();
        assert!(t.push_row(vec![Value::Int(1)]).is_err());
        assert!(t
            .push_row(vec![Value::Null, Value::from("q"), Value::Bool(true)])
            .is_err());
        assert_eq!(t.version(), before);
    }

    #[test]
    fn empty_table_version_is_zero() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let t = Table::empty(schema);
        assert_eq!(t.version(), 0);
    }

    #[test]
    #[should_panic]
    fn groupby_must_partition() {
        GroupBy::new("c".into(), vec![Value::Int(0)], vec![vec![0, 1]], 5);
    }
}
