//! Columnar storage.
//!
//! Columns are typed vectors with an optional per-slot NULL. At the paper's
//! scale (≤ ~53k rows) `Vec<Option<T>>` is simple and fast enough; the
//! accessors below are what the group-by, the samplers, and the feature
//! extractor iterate over.

use crate::value::{DataType, Value};

/// A single typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Boolean column.
    Bool(Vec<Option<bool>>),
    /// Integer column.
    Int(Vec<Option<i64>>),
    /// Float column.
    Float(Vec<Option<f64>>),
    /// String column.
    Str(Vec<Option<String>>),
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(data_type: DataType) -> Self {
        match data_type {
            DataType::Bool => Column::Bool(Vec::new()),
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Str => Column::Str(Vec::new()),
        }
    }

    /// An empty column with reserved capacity.
    pub fn with_capacity(data_type: DataType, cap: usize) -> Self {
        match data_type {
            DataType::Bool => Column::Bool(Vec::with_capacity(cap)),
            DataType::Int => Column::Int(Vec::with_capacity(cap)),
            DataType::Float => Column::Float(Vec::with_capacity(cap)),
            DataType::Str => Column::Str(Vec::with_capacity(cap)),
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Bool(_) => DataType::Bool,
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value. Returns an error message if the type mismatches.
    pub fn push(&mut self, value: Value) -> Result<(), String> {
        match (self, value) {
            (Column::Bool(v), Value::Bool(b)) => v.push(Some(b)),
            (Column::Int(v), Value::Int(i)) => v.push(Some(i)),
            (Column::Float(v), Value::Float(f)) => v.push(Some(f)),
            (Column::Float(v), Value::Int(i)) => v.push(Some(i as f64)),
            (Column::Str(v), Value::Str(s)) => v.push(Some(s)),
            (col, Value::Null) => match col {
                Column::Bool(v) => v.push(None),
                Column::Int(v) => v.push(None),
                Column::Float(v) => v.push(None),
                Column::Str(v) => v.push(None),
            },
            (col, value) => {
                return Err(format!(
                    "type mismatch: cannot push {:?} into {} column",
                    value,
                    col.data_type()
                ))
            }
        }
        Ok(())
    }

    /// The value at `row` (NULL as [`Value::Null`]). Panics if out of range.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Bool(v) => v[row].map_or(Value::Null, Value::Bool),
            Column::Int(v) => v[row].map_or(Value::Null, Value::Int),
            Column::Float(v) => v[row].map_or(Value::Null, Value::Float),
            Column::Str(v) => v[row]
                .as_ref()
                .map_or(Value::Null, |s| Value::Str(s.clone())),
        }
    }

    /// Borrow the string at `row` without cloning, if this is a string
    /// column with a non-NULL entry.
    pub fn str_at(&self, row: usize) -> Option<&str> {
        match self {
            Column::Str(v) => v[row].as_deref(),
            _ => None,
        }
    }

    /// The boolean at `row` if this is a non-NULL bool entry.
    pub fn bool_at(&self, row: usize) -> Option<bool> {
        match self {
            Column::Bool(v) => v[row],
            _ => None,
        }
    }

    /// The float at `row`, widening integers, if non-NULL numeric.
    pub fn float_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::Float(v) => v[row],
            Column::Int(v) => v[row].map(|i| i as f64),
            _ => None,
        }
    }

    /// Number of NULL entries.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Str(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Number of distinct non-NULL values.
    pub fn distinct_count(&self) -> usize {
        use std::collections::HashSet;
        match self {
            Column::Bool(v) => v.iter().flatten().collect::<HashSet<_>>().len(),
            Column::Int(v) => v.iter().flatten().collect::<HashSet<_>>().len(),
            Column::Float(v) => v
                .iter()
                .flatten()
                .map(|f| f.to_bits())
                .collect::<HashSet<_>>()
                .len(),
            Column::Str(v) => v.iter().flatten().collect::<HashSet<_>>().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut c = Column::empty(DataType::Int);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.distinct_count(), 2);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let mut c = Column::empty(DataType::Bool);
        assert!(c.push(Value::Int(1)).is_err());
        assert!(c.push(Value::Bool(true)).is_ok());
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut c = Column::empty(DataType::Float);
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.value(0), Value::Float(2.0));
        assert_eq!(c.float_at(0), Some(2.0));
    }

    #[test]
    fn typed_accessors() {
        let mut c = Column::empty(DataType::Str);
        c.push(Value::Str("a".into())).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.str_at(0), Some("a"));
        assert_eq!(c.str_at(1), None);
        assert_eq!(c.bool_at(0), None);

        let mut b = Column::empty(DataType::Bool);
        b.push(Value::Bool(true)).unwrap();
        assert_eq!(b.bool_at(0), Some(true));
    }

    #[test]
    fn distinct_counts_floats_by_bits() {
        let mut c = Column::empty(DataType::Float);
        for v in [1.0, 1.0, 2.0, f64::NAN, f64::NAN] {
            c.push(Value::Float(v)).unwrap();
        }
        // NaN == NaN at the bit level here, so distinct = {1.0, 2.0, NaN}.
        assert_eq!(c.distinct_count(), 3);
    }

    #[test]
    fn capacity_constructor() {
        let c = Column::with_capacity(DataType::Int, 100);
        assert!(c.is_empty());
        assert_eq!(c.data_type(), DataType::Int);
    }
}
