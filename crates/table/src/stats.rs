//! Per-column statistics and zone maps for scan skipping.
//!
//! [`ColumnStats`] is computed lazily, once per `(column, version)`, and
//! memoized on the [`Table`](crate::table::Table) (clones share the memo
//! because it is keyed by the content version). It carries what the
//! session layer keeps re-deriving by scanning:
//!
//! * `distinct_count` — `column_select` eligibility checks it per
//!   candidate per ranking pass; the memo turns O(n) rescans into a map
//!   lookup.
//! * `min` / `max` / `null_count` — whole-column bounds.
//! * zone maps — per-[`ZONE_ROWS`]-row chunk bounds that let a cheap
//!   predicate skip chunks *without touching a single row*. Pruning is
//!   conservative: a zone is skipped only when its bounds prove no row
//!   can match.
//!
//! Float bounds (whole-column and per-zone) are numeric min/max over
//! non-NaN values — *not* total-order bounds. Total order would place
//! `-0.0` strictly below `0.0` and rank NaNs above infinity, either of
//! which could prune a zone that numerically matches a range. A zone
//! whose float bounds are `None` holds only NULLs and NaNs, and NaN never
//! satisfies a range predicate, so skipping it stays exact.

use crate::column::Column;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Rows per zone-map chunk. Small enough that one excluded zone saves
/// real work at the paper's table sizes, large enough that the per-zone
/// bookkeeping is negligible.
pub const ZONE_ROWS: usize = 1024;

/// Bounds and NULL census for one chunk of [`ZONE_ROWS`] rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Zone {
    /// First row id covered by this zone.
    pub start: u32,
    /// Number of rows covered (the final zone may be short).
    pub len: u32,
    /// NULL entries within the zone.
    pub null_count: u32,
    /// Smallest non-NULL value (for floats: smallest non-NaN; `None` if
    /// every entry is NULL, or NULL/NaN for a float zone).
    pub min: Option<Value>,
    /// Largest non-NULL (non-NaN for floats) value, same convention.
    pub max: Option<Value>,
}

/// Lazily computed, memoized per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// NULL entries in the whole column.
    pub null_count: usize,
    /// Distinct non-NULL values (floats distinct by bit pattern, matching
    /// [`Column::distinct_count`]).
    pub distinct_count: usize,
    /// Whole-column lower bound, same convention as [`Zone::min`].
    pub min: Option<Value>,
    /// Whole-column upper bound, same convention as [`Zone::max`].
    pub max: Option<Value>,
    zones: Vec<Zone>,
}

impl ColumnStats {
    /// Computes stats for a column in one pass per concern.
    pub fn of(column: &Column) -> Self {
        let (zones, min, max, null_count) = match column {
            Column::Bool(v) => zones_for(
                v.iter().map(|x| x.as_ref()),
                v.len(),
                |b| Some(*b),
                |b| Value::Bool(*b),
            ),
            Column::Int(v) => zones_for(
                v.iter().map(|x| x.as_ref()),
                v.len(),
                |i| Some(*i),
                |i| Value::Int(*i),
            ),
            Column::Float(v) => zones_for(
                v.iter().map(|x| x.as_ref()),
                v.len(),
                // NaN is excluded from bounds; see the module docs.
                |f| if f.is_nan() { None } else { Some(FloatOrd(*f)) },
                |f| Value::Float(*f),
            ),
            Column::Str(v) => zones_for(
                v.iter().map(|x| x.as_ref()),
                v.len(),
                |s| Some(s.as_str()),
                |s| Value::Str(s.clone()),
            ),
        };
        Self {
            null_count,
            distinct_count: column.distinct_count(),
            min,
            max,
            zones,
        }
    }

    /// The zone maps, in row order.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }
}

/// Numeric (non-NaN) float ordering for bound tracking. Only ever built
/// for non-NaN floats, so the total order it induces is the numeric one.
#[derive(Clone, Copy, PartialEq)]
struct FloatOrd(f64);

impl Eq for FloatOrd {}
impl PartialOrd for FloatOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FloatOrd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("no NaN in bounds")
    }
}

/// One pass over the cells building per-zone and whole-column bounds.
/// `bound_key` returns `None` for values excluded from bounds (NaN).
#[allow(clippy::type_complexity)]
fn zones_for<'a, T: 'a, K: Ord + Copy>(
    cells: impl Iterator<Item = Option<&'a T>>,
    len: usize,
    bound_key: impl Fn(&'a T) -> Option<K>,
    into_value: impl Fn(&'a T) -> Value,
) -> (Vec<Zone>, Option<Value>, Option<Value>, usize) {
    let mut zones = Vec::with_capacity(len.div_ceil(ZONE_ROWS));
    let mut total_nulls = 0usize;
    let (mut col_min, mut col_max): (Option<(K, &T)>, Option<(K, &T)>) = (None, None);
    let mut cells = cells.enumerate().peekable();
    while let Some(&(start, _)) = cells.peek() {
        let mut zone_nulls = 0u32;
        let (mut zmin, mut zmax): (Option<(K, &T)>, Option<(K, &T)>) = (None, None);
        let mut taken = 0u32;
        while taken < ZONE_ROWS as u32 {
            let Some((_, cell)) = cells.next() else { break };
            taken += 1;
            match cell {
                None => zone_nulls += 1,
                Some(x) => {
                    if let Some(k) = bound_key(x) {
                        if zmin.as_ref().is_none_or(|(m, _)| k < *m) {
                            zmin = Some((k, x));
                        }
                        if zmax.as_ref().is_none_or(|(m, _)| k > *m) {
                            zmax = Some((k, x));
                        }
                    }
                }
            }
        }
        if let Some((k, x)) = zmin {
            if col_min.as_ref().is_none_or(|(m, _)| k < *m) {
                col_min = Some((k, x));
            }
        }
        if let Some((k, x)) = zmax {
            if col_max.as_ref().is_none_or(|(m, _)| k > *m) {
                col_max = Some((k, x));
            }
        }
        total_nulls += zone_nulls as usize;
        zones.push(Zone {
            start: start as u32,
            len: taken,
            null_count: zone_nulls,
            min: zmin.map(|(_, x)| into_value(x)),
            max: zmax.map(|(_, x)| into_value(x)),
        });
    }
    (
        zones,
        col_min.map(|(_, x)| into_value(x)),
        col_max.map(|(_, x)| into_value(x)),
        total_nulls,
    )
}

/// A cheap predicate a zone-mapped scan can evaluate.
///
/// These are the predicate shapes the session's cheap-column scans use;
/// the expensive UDF predicate never goes through here.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanPredicate {
    /// `lo <= x <= hi` over an integer column.
    IntRange {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// `lo <= x <= hi` over a float (or integer, widening) column. NaN
    /// never matches.
    FloatRange {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// Exact string equality over a string column.
    StrEquals(String),
    /// Boolean equality over a bool column.
    BoolIs(bool),
    /// Matches NULL entries of any column type.
    IsNull,
}

/// Work accounting for one zone-mapped scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanStats {
    /// Zones the column was divided into.
    pub zones_total: usize,
    /// Zones whose bounds proved no row could match: zero per-row work.
    pub zones_skipped: usize,
    /// Rows actually tested (sum of non-skipped zone lengths).
    pub rows_tested: usize,
}

/// Whether any row in `zone` *could* satisfy `pred` (conservative).
fn zone_may_match(zone: &Zone, pred: &ScanPredicate) -> bool {
    match pred {
        ScanPredicate::IsNull => zone.null_count > 0,
        ScanPredicate::IntRange { lo, hi } => match (&zone.min, &zone.max) {
            (Some(zmin), Some(zmax)) => {
                let (zmin, zmax) = (zmin.as_int().unwrap(), zmax.as_int().unwrap());
                zmin <= *hi && zmax >= *lo
            }
            _ => false,
        },
        ScanPredicate::FloatRange { lo, hi } => match (&zone.min, &zone.max) {
            (Some(zmin), Some(zmax)) => {
                let (zmin, zmax) = (zmin.as_float().unwrap(), zmax.as_float().unwrap());
                zmin <= *hi && zmax >= *lo
            }
            _ => false,
        },
        ScanPredicate::StrEquals(s) => match (&zone.min, &zone.max) {
            (Some(zmin), Some(zmax)) => {
                zmin.as_str().unwrap() <= s.as_str() && zmax.as_str().unwrap() >= s.as_str()
            }
            _ => false,
        },
        ScanPredicate::BoolIs(b) => match (&zone.min, &zone.max) {
            (Some(zmin), Some(zmax)) => {
                zmin.as_bool().unwrap() <= *b && zmax.as_bool().unwrap() >= *b
            }
            _ => false,
        },
    }
}

/// Runs a zone-mapped scan: zones whose bounds exclude the predicate are
/// skipped without touching any row; surviving zones are tested with a
/// typed per-row loop. Returns matching row ids (ascending) plus the work
/// accounting. Errors if the predicate shape does not apply to the
/// column's type.
pub fn scan_column(
    column: &Column,
    stats: &ColumnStats,
    pred: &ScanPredicate,
) -> Result<(Vec<u32>, ScanStats), String> {
    let compatible = matches!(
        (column, pred),
        (Column::Int(_), ScanPredicate::IntRange { .. })
            | (Column::Int(_), ScanPredicate::FloatRange { .. })
            | (Column::Float(_), ScanPredicate::FloatRange { .. })
            | (Column::Str(_), ScanPredicate::StrEquals(_))
            | (Column::Bool(_), ScanPredicate::BoolIs(_))
            | (_, ScanPredicate::IsNull)
    );
    if !compatible {
        return Err(format!(
            "predicate {pred:?} does not apply to a {} column",
            column.data_type()
        ));
    }
    let mut out = Vec::new();
    let mut accounting = ScanStats {
        zones_total: stats.zones().len(),
        ..ScanStats::default()
    };
    for zone in stats.zones() {
        if !zone_may_match(zone, pred) {
            accounting.zones_skipped += 1;
            continue;
        }
        accounting.rows_tested += zone.len as usize;
        let (start, end) = (zone.start as usize, (zone.start + zone.len) as usize);
        scan_zone(column, pred, start, end, &mut out);
    }
    Ok((out, accounting))
}

/// Typed per-row predicate loop over one zone's row range.
fn scan_zone(column: &Column, pred: &ScanPredicate, start: usize, end: usize, out: &mut Vec<u32>) {
    match (column, pred) {
        (Column::Int(v), ScanPredicate::IntRange { lo, hi }) => {
            for (r, cell) in v[start..end].iter().enumerate() {
                if let Some(x) = cell {
                    if *x >= *lo && *x <= *hi {
                        out.push((start + r) as u32);
                    }
                }
            }
        }
        (Column::Int(v), ScanPredicate::FloatRange { lo, hi }) => {
            for (r, cell) in v[start..end].iter().enumerate() {
                if let Some(x) = cell {
                    let x = *x as f64;
                    if x >= *lo && x <= *hi {
                        out.push((start + r) as u32);
                    }
                }
            }
        }
        (Column::Float(v), ScanPredicate::FloatRange { lo, hi }) => {
            for (r, cell) in v[start..end].iter().enumerate() {
                if let Some(x) = cell {
                    if *x >= *lo && *x <= *hi {
                        out.push((start + r) as u32);
                    }
                }
            }
        }
        (Column::Str(v), ScanPredicate::StrEquals(s)) => {
            for (r, cell) in v[start..end].iter().enumerate() {
                if cell.as_deref() == Some(s.as_str()) {
                    out.push((start + r) as u32);
                }
            }
        }
        (Column::Bool(v), ScanPredicate::BoolIs(b)) => {
            for (r, cell) in v[start..end].iter().enumerate() {
                if *cell == Some(*b) {
                    out.push((start + r) as u32);
                }
            }
        }
        (col, ScanPredicate::IsNull) => {
            for r in start..end {
                let is_null = match col {
                    Column::Bool(v) => v[r].is_none(),
                    Column::Int(v) => v[r].is_none(),
                    Column::Float(v) => v[r].is_none(),
                    Column::Str(v) => v[r].is_none(),
                };
                if is_null {
                    out.push(r as u32);
                }
            }
        }
        _ => unreachable!("scan_column validated predicate/column compatibility"),
    }
}

/// Bounded per-table memo of `(column index, version) ->`
/// [`ColumnStats`]. Shared by clones via `Arc` — safe because entries are
/// keyed by the content version, so diverged clones never see each
/// other's stats. When the memo grows past its bound (old versions of a
/// mutating table), it is cleared wholesale: it is a cache of cheap
/// recomputations, not a store.
#[derive(Debug, Default)]
pub(crate) struct StatsCache {
    entries: Mutex<HashMap<(usize, u64), Arc<ColumnStats>>>,
}

/// Stats memo bound: generous for wide tables (one live entry per
/// column), tight enough that a long push_row history cannot leak.
const STATS_CACHE_CAP: usize = 64;

impl StatsCache {
    pub(crate) fn get_or_compute(
        &self,
        col_idx: usize,
        version: u64,
        column: &Column,
    ) -> Arc<ColumnStats> {
        let key = (col_idx, version);
        if let Some(hit) = self.entries.lock().expect("stats memo poisoned").get(&key) {
            return Arc::clone(hit);
        }
        // Compute outside the lock; racing computes produce equal stats.
        let stats = Arc::new(ColumnStats::of(column));
        let mut entries = self.entries.lock().expect("stats memo poisoned");
        if entries.len() >= STATS_CACHE_CAP && !entries.contains_key(&key) {
            entries.clear();
        }
        Arc::clone(entries.entry(key).or_insert(stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_column(values: impl IntoIterator<Item = Option<i64>>) -> Column {
        Column::Int(values.into_iter().collect())
    }

    #[test]
    fn whole_column_bounds_and_nulls() {
        let c = int_column([Some(3), None, Some(-1), Some(7)]);
        let s = ColumnStats::of(&c);
        assert_eq!(s.min, Some(Value::Int(-1)));
        assert_eq!(s.max, Some(Value::Int(7)));
        assert_eq!(s.null_count, 1);
        assert_eq!(s.distinct_count, 3);
        assert_eq!(s.zones().len(), 1);
        assert_eq!(s.zones()[0].len, 4);
    }

    #[test]
    fn zones_chunk_the_column() {
        let n = ZONE_ROWS * 2 + 10;
        let c = int_column((0..n as i64).map(Some));
        let s = ColumnStats::of(&c);
        assert_eq!(s.zones().len(), 3);
        assert_eq!(s.zones()[1].start as usize, ZONE_ROWS);
        assert_eq!(s.zones()[2].len, 10);
        assert_eq!(s.zones()[0].max, Some(Value::Int(ZONE_ROWS as i64 - 1)));
        assert_eq!(s.zones()[2].min, Some(Value::Int(2 * ZONE_ROWS as i64)));
    }

    #[test]
    fn float_bounds_ignore_nan_and_honor_negative_zero() {
        let c = Column::Float(vec![Some(f64::NAN), Some(-0.0), None]);
        let s = ColumnStats::of(&c);
        // Bounds are numeric: -0.0 == 0.0, so a [0.0, 1.0] range must not
        // be pruned away by a total-order "max < lo" argument.
        assert_eq!(s.min, Some(Value::Float(-0.0)));
        assert_eq!(s.max, Some(Value::Float(-0.0)));
        let (rows, stats) =
            scan_column(&c, &s, &ScanPredicate::FloatRange { lo: 0.0, hi: 1.0 }).unwrap();
        assert_eq!(rows, vec![1], "-0.0 satisfies x >= 0.0");
        assert_eq!(stats.zones_skipped, 0);
    }

    #[test]
    fn all_nan_zone_skips_ranges_exactly() {
        let c = Column::Float(vec![Some(f64::NAN), None]);
        let s = ColumnStats::of(&c);
        assert_eq!(s.min, None);
        let (rows, stats) = scan_column(
            &c,
            &s,
            &ScanPredicate::FloatRange {
                lo: f64::NEG_INFINITY,
                hi: f64::INFINITY,
            },
        )
        .unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.zones_skipped, 1);
        assert_eq!(stats.rows_tested, 0);
    }

    #[test]
    fn excluded_zones_do_zero_row_work() {
        // Clustered values: zone z holds values in [z*1000, z*1000+999].
        let n = ZONE_ROWS * 4;
        let c = int_column((0..n).map(|r| Some((r / ZONE_ROWS * 1000 + r % 1000) as i64)));
        let s = ColumnStats::of(&c);
        let (rows, stats) =
            scan_column(&c, &s, &ScanPredicate::IntRange { lo: 2000, hi: 2003 }).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(stats.zones_total, 4);
        assert_eq!(stats.zones_skipped, 3, "only zone 2 can match");
        assert_eq!(
            stats.rows_tested, ZONE_ROWS,
            "excluded zones contribute zero per-row tests"
        );

        // A predicate no zone can satisfy touches no rows at all.
        let (rows, stats) =
            scan_column(&c, &s, &ScanPredicate::IntRange { lo: -10, hi: -1 }).unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.zones_skipped, stats.zones_total);
        assert_eq!(stats.rows_tested, 0);
    }

    #[test]
    fn is_null_scan_uses_null_census() {
        let mut cells: Vec<Option<i64>> = (0..ZONE_ROWS as i64).map(Some).collect();
        cells.extend((0..ZONE_ROWS).map(|r| if r == 7 { None } else { Some(r as i64) }));
        let c = int_column(cells);
        let s = ColumnStats::of(&c);
        let (rows, stats) = scan_column(&c, &s, &ScanPredicate::IsNull).unwrap();
        assert_eq!(rows, vec![(ZONE_ROWS + 7) as u32]);
        assert_eq!(stats.zones_skipped, 1, "the NULL-free zone is skipped");
    }

    #[test]
    fn str_and_bool_scans() {
        let c = Column::Str(vec![Some("b".into()), Some("a".into()), None]);
        let s = ColumnStats::of(&c);
        let (rows, _) = scan_column(&c, &s, &ScanPredicate::StrEquals("a".into())).unwrap();
        assert_eq!(rows, vec![1]);
        let (rows, stats) = scan_column(&c, &s, &ScanPredicate::StrEquals("z".into())).unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.zones_skipped, 1, "out-of-bounds key prunes the zone");

        let b = Column::Bool(vec![Some(true), Some(true), None]);
        let bs = ColumnStats::of(&b);
        let (rows, stats) = scan_column(&b, &bs, &ScanPredicate::BoolIs(false)).unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.zones_skipped, 1);
        let (rows, _) = scan_column(&b, &bs, &ScanPredicate::BoolIs(true)).unwrap();
        assert_eq!(rows, vec![0, 1]);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let c = int_column([Some(1)]);
        let s = ColumnStats::of(&c);
        assert!(scan_column(&c, &s, &ScanPredicate::StrEquals("x".into())).is_err());
        assert!(scan_column(&c, &s, &ScanPredicate::BoolIs(true)).is_err());
        // Widening float range over an int column is allowed.
        assert!(scan_column(&c, &s, &ScanPredicate::FloatRange { lo: 0.0, hi: 2.0 }).is_ok());
    }

    #[test]
    fn int_column_float_range_widens() {
        let c = int_column([Some(1), Some(2), Some(3)]);
        let s = ColumnStats::of(&c);
        let (rows, _) =
            scan_column(&c, &s, &ScanPredicate::FloatRange { lo: 1.5, hi: 2.5 }).unwrap();
        assert_eq!(rows, vec![1]);
    }

    #[test]
    fn stats_cache_memoizes_and_bounds() {
        let cache = StatsCache::default();
        let c = int_column([Some(1), Some(2)]);
        let a = cache.get_or_compute(0, 7, &c);
        let b = cache.get_or_compute(0, 7, &c);
        assert!(Arc::ptr_eq(&a, &b), "second lookup is a memo hit");
        for v in 0..(STATS_CACHE_CAP as u64 + 8) {
            cache.get_or_compute(0, 1000 + v, &c);
        }
        assert!(
            cache.entries.lock().unwrap().len() <= STATS_CACHE_CAP,
            "memo stays bounded under version churn"
        );
    }
}
