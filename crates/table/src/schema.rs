//! Table schemas.

use crate::value::DataType;
use expred_stats::hash::Fnv64;
use std::fmt;

/// One named, typed column descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    name: String,
    data_type: DataType,
    nullable: bool,
}

impl Field {
    /// A non-nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// A nullable field.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    /// Field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Field type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    /// Whether NULLs are permitted.
    pub fn is_nullable(&self) -> bool {
        self.nullable
    }
}

/// An ordered collection of uniquely named fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema, validating that field names are unique and
    /// non-empty. Panics on violation — schemas are programmer-supplied
    /// constants, not runtime inputs.
    pub fn new(fields: Vec<Field>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for f in &fields {
            assert!(!f.name().is_empty(), "field names must be non-empty");
            assert!(
                seen.insert(f.name().to_owned()),
                "duplicate field name {:?}",
                f.name()
            );
        }
        Self { fields }
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name() == name)
    }

    /// The field with the given name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name() == name)
    }

    /// The field at a position.
    pub fn field_at(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// A 64-bit structural fingerprint, stable across processes (FNV-1a
    /// over field names, types, and nullability, in declaration order).
    ///
    /// Together with [`crate::table::Table::version`] (a *content*
    /// fingerprint) this gives a table a durable identity that —
    /// unlike [`crate::table::TableId`], a process-local counter —
    /// survives restarts: two tables agreeing on both fingerprints hold
    /// the same rows under the same schema, so persisted per-row answers
    /// keyed by `(schema fingerprint, version)` can be rehydrated into a
    /// fresh process without ever serving a stale or mismatched entry.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.fields.len() as u64);
        for field in &self.fields {
            h.write_str(field.name());
            let type_tag = match field.data_type() {
                DataType::Bool => 1u64,
                DataType::Int => 2,
                DataType::Float => 3,
                DataType::Str => 4,
            };
            h.write_u64(type_tag);
            h.write_u64(field.is_nullable() as u64);
        }
        h.finish()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name(), field.data_type())?;
            if field.is_nullable() {
                write!(f, "?")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_and_index() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::nullable("b", DataType::Str),
        ]);
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.index_of("b"), Some(1));
        assert_eq!(schema.index_of("missing"), None);
        assert_eq!(schema.field("a").unwrap().data_type(), DataType::Int);
        assert!(schema.field_at(1).is_nullable());
        assert!(!schema.field_at(0).is_nullable());
    }

    #[test]
    fn display_is_readable() {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::nullable("y", DataType::Bool),
        ]);
        assert_eq!(schema.to_string(), "(x: float, y: bool?)");
    }

    #[test]
    fn fingerprint_is_structural() {
        let a = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::nullable("b", DataType::Str),
        ]);
        let same = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::nullable("b", DataType::Str),
        ]);
        assert_eq!(a.fingerprint(), same.fingerprint());
        // Every structural difference must move the fingerprint: field
        // order, name, type, and nullability all participate.
        let reordered = Schema::new(vec![
            Field::nullable("b", DataType::Str),
            Field::new("a", DataType::Int),
        ]);
        let renamed = Schema::new(vec![
            Field::new("a2", DataType::Int),
            Field::nullable("b", DataType::Str),
        ]);
        let retyped = Schema::new(vec![
            Field::new("a", DataType::Float),
            Field::nullable("b", DataType::Str),
        ]);
        let denulled = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
        ]);
        for other in [&reordered, &renamed, &retyped, &denulled] {
            assert_ne!(a.fingerprint(), other.fingerprint());
        }
    }

    #[test]
    #[should_panic]
    fn rejects_duplicate_names() {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ]);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_names() {
        Schema::new(vec![Field::new("", DataType::Int)]);
    }
}
