//! Table schemas.

use crate::value::DataType;
use std::fmt;

/// One named, typed column descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    name: String,
    data_type: DataType,
    nullable: bool,
}

impl Field {
    /// A non-nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// A nullable field.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    /// Field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Field type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    /// Whether NULLs are permitted.
    pub fn is_nullable(&self) -> bool {
        self.nullable
    }
}

/// An ordered collection of uniquely named fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema, validating that field names are unique and
    /// non-empty. Panics on violation — schemas are programmer-supplied
    /// constants, not runtime inputs.
    pub fn new(fields: Vec<Field>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for f in &fields {
            assert!(!f.name().is_empty(), "field names must be non-empty");
            assert!(
                seen.insert(f.name().to_owned()),
                "duplicate field name {:?}",
                f.name()
            );
        }
        Self { fields }
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name() == name)
    }

    /// The field with the given name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name() == name)
    }

    /// The field at a position.
    pub fn field_at(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name(), field.data_type())?;
            if field.is_nullable() {
                write!(f, "?")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_and_index() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::nullable("b", DataType::Str),
        ]);
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.index_of("b"), Some(1));
        assert_eq!(schema.index_of("missing"), None);
        assert_eq!(schema.field("a").unwrap().data_type(), DataType::Int);
        assert!(schema.field_at(1).is_nullable());
        assert!(!schema.field_at(0).is_nullable());
    }

    #[test]
    fn display_is_readable() {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::nullable("y", DataType::Bool),
        ]);
        assert_eq!(schema.to_string(), "(x: float, y: bool?)");
    }

    #[test]
    #[should_panic]
    fn rejects_duplicate_names() {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ]);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_names() {
        Schema::new(vec![Field::new("", DataType::Int)]);
    }
}
