//! In-memory columnar relation substrate for the `expred` workspace.
//!
//! The paper's query `SELECT * FROM R(A, ID) WHERE f(ID) = 1` needs a small
//! relational backbone: typed tables, a group-by over the correlated
//! attribute, per-column metadata for predictor selection, and ingestion.
//! This crate provides it from scratch:
//!
//! * [`value`] / [`schema`] / [`crate::column`] / [`table`] — the data model.
//!   [`table::GroupBy`] is the central structure: the partition of rows by
//!   a real or *virtual* correlated column.
//! * [`csv`] — minimal RFC-4180 CSV ingestion for users with real data.
//! * [`datasets`] — synthetic clones of the paper's four evaluation
//!   datasets, calibrated to the published Table 2/3 statistics (see
//!   DESIGN.md for the substitution argument).

pub mod column;
pub mod csv;
pub mod datasets;
pub mod schema;
pub mod table;
pub mod value;

pub use column::Column;
pub use datasets::{Dataset, DatasetSpec, LABEL_COLUMN};
pub use schema::{Field, Schema};
pub use table::{GroupBy, Table, TableId};
pub use value::{DataType, Value};
