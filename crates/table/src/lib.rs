//! In-memory columnar relation substrate for the `expred` workspace.
//!
//! The paper's query `SELECT * FROM R(A, ID) WHERE f(ID) = 1` needs a small
//! relational backbone: typed tables, a group-by over the correlated
//! attribute, per-column metadata for predictor selection, and ingestion.
//! This crate provides it from scratch.
//!
//! # Storage model
//!
//! Storage is **typed-columnar**, not row-oriented: a [`table::Table`] is a
//! [`schema::Schema`] plus one [`column::Column`] per field, and each
//! column is a typed vector — `Vec<Option<bool>>`, `Vec<Option<i64>>`,
//! `Vec<Option<f64>>`, or `Vec<Option<String>>` — with `None` as NULL.
//! [`value::Value`] is a *cell view* for ingestion, display, and group
//! keys; it is materialized at the edges, never stored per cell. Hot
//! paths run on the typed vectors directly:
//!
//! * [`kernels`] — vectorized grouping: [`kernels::GroupCodes`] dictionary-
//!   encodes a column into dense group ids plus a key-sorted dictionary
//!   in one typed pass (byte-identical output to the scalar reference
//!   [`table::Table::group_by_reference`]). Also the substrate for
//!   one-hot feature encoding in `expred-ml`.
//! * [`stats`] — lazily computed, memoized per-`(column, version)`
//!   statistics: min/max bounds, NULL census, distinct count, and
//!   per-chunk *zone maps* that let [`table::Table::scan`] skip chunks a
//!   cheap predicate cannot match without touching a row.
//! * [`derived`] — [`derived::DerivedCache`], the session-level memo of
//!   derived artifacts ([`table::GroupBy`] partitions, encoding
//!   dictionaries) keyed by `(TableId, version, column)`; `push_row`
//!   bumps the version, so mutation invalidates by making stale entries
//!   unaddressable.
//!
//! # Modules
//!
//! * [`value`] / [`schema`] / [`crate::column`] / [`table`] — the data model.
//!   [`table::GroupBy`] is the central structure: the partition of rows by
//!   a real or *virtual* correlated column.
//! * [`csv`] — minimal RFC-4180 CSV ingestion for users with real data.
//! * [`datasets`] — synthetic clones of the paper's four evaluation
//!   datasets, calibrated to the published Table 2/3 statistics (see
//!   DESIGN.md for the substitution argument).

pub mod column;
pub mod csv;
pub mod datasets;
pub mod derived;
pub mod kernels;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use column::Column;
pub use datasets::{Dataset, DatasetSpec, LABEL_COLUMN};
pub use derived::{DerivedCache, DerivedCacheStats, DEFAULT_DERIVED_CAPACITY};
pub use kernels::GroupCodes;
pub use schema::{Field, Schema};
pub use stats::{ColumnStats, ScanPredicate, ScanStats, Zone, ZONE_ROWS};
pub use table::{GroupBy, Table, TableId};
pub use value::{DataType, Value};
