//! [`SelectivityTracker`]: observed per-leaf pass rates for a session.
//!
//! The expression optimizer reorders `AND`/`OR` siblings by each leaf's
//! *observed* selectivity — the fraction of fresh evaluations that
//! returned `true` — instead of declared costs alone. Those observations
//! come for free: the audited invoker already knows every fresh answer it
//! computes, so it feeds them here, keyed by the same
//! [`CacheNamespace`] `(udf fingerprint, table id, table version)` the
//! row cache uses. A new table version starts cold on purpose: pass
//! rates of a mutated table are a different distribution.
//!
//! Unlike the row cache, the tracker holds *statistics*, not reusable
//! answers — a session keeps them across [`clear_caches`]-style resets
//! (dropping a cache never invalidates what was observed). The map is
//! still bounded: namespaces evict in deterministic FIFO insertion order
//! once `capacity` is exceeded, so version churn cannot grow it without
//! bound, and eviction order never depends on thread timing.
//!
//! [`clear_caches`]: crate::store::CacheStore::clear

use crate::store::CacheNamespace;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on tracked namespaces.
pub const DEFAULT_SELECTIVITY_CAPACITY: usize = 65_536;

/// Pass/total counters for one `(udf, table, version)` namespace.
#[derive(Debug, Default)]
struct LeafStats {
    passes: AtomicU64,
    total: AtomicU64,
}

/// A borrowed view of one namespace's counters: resolve it once per
/// invoker (one tracker lock), then record lock-free per batch.
#[derive(Debug, Clone)]
pub struct SelectivityHandle {
    stats: Arc<LeafStats>,
}

impl SelectivityHandle {
    /// Records one observed answer.
    pub fn record(&self, passed: bool) {
        self.record_many(passed as u64, 1);
    }

    /// Records a batch: `passes` of `total` observed answers were `true`.
    pub fn record_many(&self, passes: u64, total: u64) {
        if total == 0 {
            return;
        }
        debug_assert!(passes <= total, "passes {passes} > total {total}");
        self.stats.passes.fetch_add(passes, Ordering::Relaxed);
        self.stats.total.fetch_add(total, Ordering::Relaxed);
    }

    /// Observed pass rate in `[0, 1]`, or `None` before any observation.
    pub fn pass_rate(&self) -> Option<f64> {
        let total = self.stats.total.load(Ordering::Relaxed);
        (total > 0).then(|| self.stats.passes.load(Ordering::Relaxed) as f64 / total as f64)
    }

    /// How many answers have been observed.
    pub fn observations(&self) -> u64 {
        self.stats.total.load(Ordering::Relaxed)
    }
}

/// FIFO-bounded map of [`CacheNamespace`] → observed pass/total counters.
///
/// Thread-safe: `handle` takes one short lock; recording through a
/// [`SelectivityHandle`] is atomic and lock-free. A handle stays valid
/// after its namespace evicts (it owns the counters) — the eviction only
/// stops *new* lookups from seeing the history.
#[derive(Debug)]
pub struct SelectivityTracker {
    inner: Mutex<TrackerInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct TrackerInner {
    stats: HashMap<CacheNamespace, Arc<LeafStats>>,
    /// Namespaces in insertion order — the deterministic eviction queue.
    order: VecDeque<CacheNamespace>,
}

impl SelectivityTracker {
    /// A tracker bounded at [`DEFAULT_SELECTIVITY_CAPACITY`] namespaces.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SELECTIVITY_CAPACITY)
    }

    /// A tracker bounded at `capacity` namespaces (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(TrackerInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// The counters for `ns`, creating them (and possibly evicting the
    /// oldest namespace) if absent.
    pub fn handle(&self, ns: CacheNamespace) -> SelectivityHandle {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(stats) = inner.stats.get(&ns) {
            return SelectivityHandle {
                stats: Arc::clone(stats),
            };
        }
        while inner.order.len() >= self.capacity {
            if let Some(oldest) = inner.order.pop_front() {
                inner.stats.remove(&oldest);
            }
        }
        let stats = Arc::new(LeafStats::default());
        inner.stats.insert(ns, Arc::clone(&stats));
        inner.order.push_back(ns);
        SelectivityHandle { stats }
    }

    /// Observed pass rate for `ns`, or `None` if the namespace is
    /// untracked or has no observations yet.
    pub fn pass_rate(&self, ns: CacheNamespace) -> Option<f64> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let stats = inner.stats.get(&ns)?;
        let total = stats.total.load(Ordering::Relaxed);
        (total > 0).then(|| stats.passes.load(Ordering::Relaxed) as f64 / total as f64)
    }

    /// Every tracked namespace's raw `(passes, total)` counters — the
    /// persistence-facing snapshot, in deterministic insertion order.
    /// Namespaces with zero observations are skipped (nothing to carry
    /// across a restart).
    pub fn snapshot_counts(&self) -> Vec<(CacheNamespace, u64, u64)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .order
            .iter()
            .filter_map(|ns| {
                let stats = inner.stats.get(ns)?;
                let total = stats.total.load(Ordering::Relaxed);
                // `record_many` bumps passes before total, so a racing
                // snapshot can observe passes > total; clamp to keep the
                // persisted invariant.
                let passes = stats.passes.load(Ordering::Relaxed).min(total);
                (total > 0).then_some((*ns, passes, total))
            })
            .collect()
    }

    /// Seeds `ns` with absolute counters recovered from persistence.
    ///
    /// Additive on purpose: if the session already observed answers for
    /// `ns` (it shouldn't have — seeding runs before queries), the
    /// recovered history joins rather than overwrites them.
    pub fn seed_counts(&self, ns: CacheNamespace, passes: u64, total: u64) {
        if total == 0 {
            return;
        }
        self.handle(ns).record_many(passes.min(total), total);
    }

    /// Number of tracked namespaces.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stats
            .len()
    }

    /// Whether nothing has been tracked yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SelectivityTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(udf: u64) -> CacheNamespace {
        CacheNamespace {
            udf,
            table: 1,
            version: 0,
        }
    }

    #[test]
    fn records_and_reports_pass_rates() {
        let tracker = SelectivityTracker::new();
        assert_eq!(tracker.pass_rate(ns(1)), None, "unseen namespace");
        let handle = tracker.handle(ns(1));
        assert_eq!(handle.pass_rate(), None, "no observations yet");
        assert_eq!(tracker.pass_rate(ns(1)), None);
        handle.record(true);
        handle.record(false);
        handle.record(true);
        handle.record(true);
        assert_eq!(handle.pass_rate(), Some(0.75));
        assert_eq!(tracker.pass_rate(ns(1)), Some(0.75));
        assert_eq!(handle.observations(), 4);
        handle.record_many(0, 4);
        assert_eq!(tracker.pass_rate(ns(1)), Some(0.375));
        handle.record_many(3, 0);
        assert_eq!(handle.observations(), 8, "zero-total batches are no-ops");
    }

    #[test]
    fn namespaces_are_independent_and_version_scoped() {
        let tracker = SelectivityTracker::new();
        tracker.handle(ns(1)).record_many(9, 10);
        tracker.handle(ns(2)).record_many(1, 10);
        let bumped = CacheNamespace {
            version: 1,
            ..ns(1)
        };
        assert_eq!(tracker.pass_rate(ns(1)), Some(0.9));
        assert_eq!(tracker.pass_rate(ns(2)), Some(0.1));
        assert_eq!(tracker.pass_rate(bumped), None, "new version starts cold");
    }

    #[test]
    fn eviction_is_fifo_and_deterministic() {
        let tracker = SelectivityTracker::with_capacity(2);
        let a = tracker.handle(ns(1));
        a.record(true);
        tracker.handle(ns(2)).record(false);
        tracker.handle(ns(3)).record(true); // evicts ns(1): oldest first
        assert_eq!(tracker.len(), 2);
        assert_eq!(tracker.pass_rate(ns(1)), None, "ns 1 was evicted");
        assert_eq!(tracker.pass_rate(ns(2)), Some(0.0));
        assert_eq!(tracker.pass_rate(ns(3)), Some(1.0));
        // The detached handle still works: its counters are owned.
        a.record(true);
        assert_eq!(a.pass_rate(), Some(1.0));
        // Re-tracking ns(1) starts from scratch (the history evicted).
        assert_eq!(tracker.handle(ns(1)).pass_rate(), None);
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let tracker = SelectivityTracker::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let tracker = &tracker;
                scope.spawn(move || {
                    let handle = tracker.handle(ns(7));
                    for i in 0..1000u64 {
                        handle.record(i % 4 == 0);
                    }
                });
            }
        });
        assert_eq!(tracker.pass_rate(ns(7)), Some(0.25));
        assert_eq!(tracker.handle(ns(7)).observations(), 8000);
    }
}
