//! The [`Parallel`] backend: scoped-thread fan-out with deterministic
//! answer order.

use crate::executor::{BatchProbe, Executor};

/// Evaluates batches by sharding them across `std::thread::scope` workers.
///
/// Rows are split into contiguous chunks, one per worker; each worker
/// writes answers directly into its disjoint slice of the output, so the
/// result is in input order no matter how the OS schedules the threads —
/// determinism comes from *where* answers land, not from *when* they are
/// computed.
///
/// Small batches (below [`Parallel::min_batch`]) run inline: spawning
/// threads for a handful of cheap probes costs more than it saves.
#[derive(Debug, Clone, Copy)]
pub struct Parallel {
    threads: usize,
    min_batch: usize,
}

impl Parallel {
    /// A backend sized to the machine (`std::thread::available_parallelism`).
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// Spawning scoped threads costs tens of microseconds each; below
    /// this batch size the fan-out cannot pay for itself unless probes
    /// are very slow, so such batches run inline by default. Pipelines
    /// over many small correlation groups produce lots of tiny batches —
    /// without this floor, `--parallel` would *lose* to `Sequential` on
    /// cheap UDFs.
    const DEFAULT_MIN_BATCH: usize = 32;

    /// A backend with an explicit worker count (at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            min_batch: Self::DEFAULT_MIN_BATCH,
        }
    }

    /// Sets the batch size below which the batch runs inline (lower it
    /// toward 1 when individual probes are expensive enough — roughly a
    /// millisecond or more — that even tiny batches are worth threads).
    pub fn min_batch(mut self, min_batch: usize) -> Self {
        self.min_batch = min_batch.max(1);
        self
    }

    /// The worker count this backend fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for Parallel {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor for Parallel {
    fn evaluate_batch(&self, probe: &dyn BatchProbe, rows: &[usize]) -> Vec<bool> {
        if self.threads == 1 || rows.len() < self.min_batch {
            return rows.iter().map(|&row| probe.probe(row)).collect();
        }
        let chunk = rows.len().div_ceil(self.threads);
        let mut answers = vec![false; rows.len()];
        std::thread::scope(|scope| {
            for (row_chunk, answer_chunk) in rows.chunks(chunk).zip(answers.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (row, answer) in row_chunk.iter().zip(answer_chunk) {
                        *answer = probe.probe(*row);
                    }
                });
            }
        });
        answers
    }

    fn name(&self) -> &str {
        "parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sequential;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn matches_sequential_exactly() {
        let probe = |row: usize| (row * 2654435761) % 7 < 3;
        let rows: Vec<usize> = (0..1000).rev().collect();
        for threads in [1, 2, 3, 8, 64] {
            let parallel = Parallel::with_threads(threads);
            assert_eq!(
                parallel.evaluate_batch(&probe, &rows),
                Sequential.evaluate_batch(&probe, &rows),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn each_row_probed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let probe = |_row: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            true
        };
        let rows: Vec<usize> = (0..257).collect();
        Parallel::with_threads(4).evaluate_batch(&probe, &rows);
        assert_eq!(calls.load(Ordering::Relaxed), rows.len());
    }

    #[test]
    fn small_batches_run_inline() {
        // min_batch of 10: a batch of 3 must not spawn (observable only
        // through correctness here, but exercises the inline path).
        let parallel = Parallel::with_threads(8).min_batch(10);
        let probe = |row: usize| row == 1;
        assert_eq!(
            parallel.evaluate_batch(&probe, &[0, 1, 2]),
            vec![false, true, false]
        );
    }

    #[test]
    fn sleepy_probes_overlap() {
        // Four 20ms probes across 4 workers should take far less than the
        // 80ms a serial run needs. Generous bound for loaded CI machines.
        let probe = |_row: usize| {
            std::thread::sleep(Duration::from_millis(20));
            true
        };
        let rows = [0usize, 1, 2, 3];
        let start = Instant::now();
        Parallel::with_threads(4)
            .min_batch(1)
            .evaluate_batch(&probe, &rows);
        assert!(
            start.elapsed() < Duration::from_millis(70),
            "no overlap: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn empty_and_degenerate_batches() {
        let probe = |_row: usize| true;
        assert!(Parallel::new().evaluate_batch(&probe, &[]).is_empty());
        assert_eq!(
            Parallel::with_threads(16).evaluate_batch(&probe, &[9]),
            vec![true]
        );
    }
}
