//! The [`Executor`] trait and the [`Sequential`] reference backend.

/// One row-probe: the expensive call an executor fans out.
///
/// Must be deterministic per row and callable from any thread (see the
/// crate-level contract). Any `Fn(usize) -> bool + Sync` closure is a
/// probe.
pub trait BatchProbe: Sync {
    /// Evaluates the expensive predicate on one row.
    fn probe(&self, row: usize) -> bool;
}

impl<F: Fn(usize) -> bool + Sync> BatchProbe for F {
    fn probe(&self, row: usize) -> bool {
        self(row)
    }
}

/// A strategy for evaluating a batch of expensive probes.
///
/// See the crate-level documentation for the full contract (order
/// preservation, exactly-once, determinism).
pub trait Executor: Send + Sync {
    /// Evaluates `probe` on every row of `rows`, returning answers in
    /// input order (`answers[i]` belongs to `rows[i]`).
    fn evaluate_batch(&self, probe: &dyn BatchProbe, rows: &[usize]) -> Vec<bool>;

    /// Short human-readable backend name for diagnostics.
    fn name(&self) -> &str {
        "executor"
    }
}

/// The reference backend: probes one row at a time, in order, on the
/// calling thread. Exactly the behavior the paper's cost accounting was
/// originally audited against.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sequential;

impl Executor for Sequential {
    fn evaluate_batch(&self, probe: &dyn BatchProbe, rows: &[usize]) -> Vec<bool> {
        rows.iter().map(|&row| probe.probe(row)).collect()
    }

    fn name(&self) -> &str {
        "sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sequential_preserves_order_and_calls_once() {
        let calls = AtomicUsize::new(0);
        let probe = |row: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            row.is_multiple_of(3)
        };
        let rows = [5usize, 6, 0, 7, 9];
        let answers = Sequential.evaluate_batch(&probe, &rows);
        assert_eq!(answers, vec![false, true, true, false, true]);
        assert_eq!(calls.load(Ordering::Relaxed), rows.len());
        assert_eq!(Sequential.name(), "sequential");
    }

    #[test]
    fn empty_batch_is_empty() {
        let probe = |_row: usize| true;
        assert!(Sequential.evaluate_batch(&probe, &[]).is_empty());
    }

    #[test]
    fn closures_are_probes() {
        let threshold = 3usize;
        let probe = move |row: usize| row < threshold;
        assert!(probe.probe(1));
        assert!(!probe.probe(4));
    }
}
