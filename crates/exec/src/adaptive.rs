//! [`AdaptiveController`]: a shared, lock-free EWMA of observed per-probe
//! latency that tunes the effective in-flight window.
//!
//! The ROADMAP's "Adaptive `max_in_flight`" item: a fixed
//! [`crate::planner::DEFAULT_MAX_IN_FLIGHT`] is wrong at both ends of the
//! latency spectrum. For µs-probes the fixed per-slice costs (planner
//! bookkeeping, memo lookups, executor dispatch) are comparable to the
//! probe work itself, so a *small* window keeps the materialized batch in
//! cache and bounds latency with nothing to amortize; for ms-probes a
//! *deep* window is what keeps every pool worker busy across the
//! straggler tail of a drain. The controller learns which regime it is in
//! from the drains themselves and suggests a window between a floor and
//! the context's `max_in_flight` ceiling.
//!
//! One controller is shared by every planner of a session (the engine
//! owns it and [`crate::ExecContext::planner`] attaches it), so the
//! latency learned by one query's drains immediately shapes the next
//! query's batching. Observations and reads are single atomics —
//! concurrent queries never serialize on the controller.
//!
//! **Answers and bills are unaffected by construction.** The window only
//! decides how a drain is *sliced*; the planner's output order and the
//! invoker's accounting are slice-invariant (see
//! [`crate::BatchPlanner::drain_with`]), which is what lets the window
//! float freely while the equivalence suite pins outcomes bit for bit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default smallest window the controller will suggest.
pub const DEFAULT_WINDOW_FLOOR: usize = 64;

/// EWMA smoothing factor: each drain contributes a quarter of the new
/// estimate, so a latency regime change settles within a few drains
/// without one outlier slice (page cache miss, scheduler hiccup) whipping
/// the window around.
const EWMA_ALPHA: f64 = 0.25;

/// Per-probe latency (ns) at or below which the floor window is used;
/// the suggested window scales linearly above it. At 1µs/probe a floor
/// window of 64 rows already carries ~64µs of work per slice — far above
/// the per-slice fixed costs — while 1ms/probe saturates any ceiling.
const FLOOR_LATENCY_NS: f64 = 1_000.0;

/// The shared latency model: clone freely, all clones observe and read
/// one estimate.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveController {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// `f64` bits of the EWMA ns-per-probe estimate; `0` means "no
    /// observation yet" (a real measurement of exactly 0.0 ns cannot
    /// occur: `observe` floors at a fraction of a nanosecond).
    ewma_ns_bits: AtomicU64,
    /// Smallest window ever suggested (`0` in `Default` is normalized to
    /// [`DEFAULT_WINDOW_FLOOR`] on read).
    floor: AtomicU64,
}

impl AdaptiveController {
    /// A controller with the default window floor.
    pub fn new() -> Self {
        Self::with_floor(DEFAULT_WINDOW_FLOOR)
    }

    /// A controller whose suggested window never drops below `floor`
    /// (clamped to at least 1).
    pub fn with_floor(floor: usize) -> Self {
        let controller = Self::default();
        controller
            .inner
            .floor
            .store(floor.max(1) as u64, Ordering::Relaxed);
        controller
    }

    /// The configured window floor.
    pub fn floor(&self) -> usize {
        match self.inner.floor.load(Ordering::Relaxed) {
            0 => DEFAULT_WINDOW_FLOOR,
            f => f as usize,
        }
    }

    /// Folds one drained slice into the latency estimate.
    ///
    /// Racing observers may each fold against the same prior value —
    /// losing one update's weight is harmless for a heuristic, and the
    /// alternative (a CAS loop) would put a contended retry on every
    /// drain of every worker thread.
    pub fn observe(&self, rows: usize, elapsed: Duration) {
        if rows == 0 {
            return;
        }
        let per_probe = (elapsed.as_nanos() as f64 / rows as f64).max(0.1);
        let prior = self.inner.ewma_ns_bits.load(Ordering::Relaxed);
        let next = if prior == 0 {
            per_probe
        } else {
            let prior = f64::from_bits(prior);
            prior + EWMA_ALPHA * (per_probe - prior)
        };
        self.inner
            .ewma_ns_bits
            .store(next.to_bits(), Ordering::Relaxed);
    }

    /// The current per-probe latency estimate, if any drain has been
    /// observed yet.
    pub fn latency_estimate(&self) -> Option<Duration> {
        match self.inner.ewma_ns_bits.load(Ordering::Relaxed) {
            0 => None,
            bits => Some(Duration::from_nanos(f64::from_bits(bits) as u64)),
        }
    }

    /// The suggested in-flight window under `ceiling`: the floor while
    /// the latency estimate is at or below 1µs per probe (or unknown —
    /// the first drain runs conservatively and teaches the controller),
    /// scaling linearly with latency above that, clamped to
    /// `[min(floor, ceiling), ceiling]`.
    pub fn window(&self, ceiling: usize) -> usize {
        let ceiling = ceiling.max(1);
        let floor = self.floor().min(ceiling);
        let bits = self.inner.ewma_ns_bits.load(Ordering::Relaxed);
        if bits == 0 {
            return floor;
        }
        let latency_ns = f64::from_bits(bits);
        if latency_ns <= FLOOR_LATENCY_NS {
            return floor;
        }
        let scaled = (floor as f64) * (latency_ns / FLOOR_LATENCY_NS);
        if scaled >= ceiling as f64 {
            ceiling
        } else {
            (scaled as usize).clamp(floor, ceiling)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unobserved_controller_suggests_the_floor() {
        let c = AdaptiveController::new();
        assert_eq!(c.latency_estimate(), None);
        assert_eq!(c.floor(), DEFAULT_WINDOW_FLOOR);
        assert_eq!(c.window(4096), DEFAULT_WINDOW_FLOOR);
        assert_eq!(c.window(16), 16, "ceiling below floor wins");
        assert_eq!(AdaptiveController::default().floor(), DEFAULT_WINDOW_FLOOR);
    }

    #[test]
    fn cheap_probes_stay_at_the_floor() {
        let c = AdaptiveController::with_floor(32);
        // 1000 rows in 1µs: ~1ns per probe.
        c.observe(1000, Duration::from_micros(1));
        assert_eq!(c.window(4096), 32);
    }

    #[test]
    fn expensive_probes_deepen_the_window() {
        let c = AdaptiveController::with_floor(64);
        // 100µs per probe: window wants 64 * 100 = 6400, capped at 4096.
        for _ in 0..32 {
            c.observe(10, Duration::from_millis(1));
        }
        assert_eq!(c.window(4096), 4096);
        // A mid-latency estimate lands between floor and ceiling.
        let mid = AdaptiveController::with_floor(64);
        for _ in 0..32 {
            mid.observe(100, Duration::from_micros(1000)); // 10µs per probe
        }
        let w = mid.window(4096);
        assert!(w > 64 && w < 4096, "window {w} should be intermediate");
    }

    #[test]
    fn ewma_converges_and_clones_share_state() {
        let c = AdaptiveController::new();
        let view = c.clone();
        for _ in 0..64 {
            c.observe(1, Duration::from_micros(500));
        }
        let estimate = view.latency_estimate().unwrap();
        let ns = estimate.as_nanos() as f64;
        assert!(
            (ns - 500_000.0).abs() < 50_000.0,
            "estimate {ns} should settle near 500µs"
        );
    }

    #[test]
    fn zero_row_observations_are_ignored() {
        let c = AdaptiveController::new();
        c.observe(0, Duration::from_secs(1));
        assert_eq!(c.latency_estimate(), None);
    }
}
