//! [`ShardedMemo`]: a lock-striped concurrent memo table.
//!
//! The seed's invoker guarded its memo with a single `Mutex<HashMap>`,
//! which serializes every worker of a parallel batch on one lock. This
//! structure stripes the key space across many small `RwLock`ed maps:
//! readers of different shards never contend, and writers contend only
//! within a shard (1/shards of the time for uniformly hashed keys).

use std::collections::HashMap;
use std::sync::RwLock;

/// Default shard count; plenty of striping for any realistic core count
/// while keeping the empty structure small.
const DEFAULT_SHARDS: usize = 64;

/// A concurrent `usize -> V` map striped over `RwLock`ed shards.
///
/// All operations take `&self`; interior locks are per shard. Poisoning
/// is ignored (a panicked writer can only have aborted a single-entry
/// insert, which is harmless for a memo table).
#[derive(Debug)]
pub struct ShardedMemo<V> {
    shards: Box<[RwLock<HashMap<usize, V>>]>,
    mask: usize,
}

impl<V: Copy> ShardedMemo<V> {
    /// A memo with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A memo with at least `shards` stripes (rounded up to a power of
    /// two so shard selection is a mask, not a division).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards: Vec<RwLock<HashMap<usize, V>>> =
            (0..n).map(|_| RwLock::new(HashMap::new())).collect();
        Self {
            shards: shards.into_boxed_slice(),
            mask: n - 1,
        }
    }

    /// Fibonacci-hashes `key` onto a shard. Row ids arrive in runs
    /// (contiguous per correlation group), so the multiplier spreads
    /// neighboring keys across different stripes.
    fn shard(&self, key: usize) -> &RwLock<HashMap<usize, V>> {
        let spread = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(spread as usize) & self.mask]
    }

    /// The memoized value for `key`, if present.
    pub fn get(&self, key: usize) -> Option<V> {
        self.shard(key)
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .copied()
    }

    /// Whether `key` is memoized.
    pub fn contains(&self, key: usize) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `value` for `key`, returning the previous value if any.
    pub fn insert(&self, key: usize, value: V) -> Option<V> {
        self.shard(key)
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, value)
    }

    /// Total number of memoized entries (sums across shards; exact only
    /// while no writers are active).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every entry.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

impl<V: Copy> Default for ShardedMemo<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_get_insert() {
        let memo: ShardedMemo<bool> = ShardedMemo::new();
        assert!(memo.is_empty());
        assert_eq!(memo.get(7), None);
        assert_eq!(memo.insert(7, true), None);
        assert_eq!(memo.insert(7, false), Some(true));
        assert_eq!(memo.get(7), Some(false));
        assert!(memo.contains(7));
        assert_eq!(memo.len(), 1);
        memo.clear();
        assert!(memo.is_empty());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let memo: ShardedMemo<u8> = ShardedMemo::with_shards(5);
        assert_eq!(memo.shards.len(), 8);
        let memo: ShardedMemo<u8> = ShardedMemo::with_shards(0);
        assert_eq!(memo.shards.len(), 1);
    }

    #[test]
    fn many_keys_spread_over_shards() {
        let memo: ShardedMemo<usize> = ShardedMemo::with_shards(16);
        for k in 0..10_000 {
            memo.insert(k, k);
        }
        assert_eq!(memo.len(), 10_000);
        // Contiguous keys must not pile into one stripe.
        let occupancies: Vec<usize> = memo
            .shards
            .iter()
            .map(|s| s.read().unwrap().len())
            .collect();
        let max = occupancies.iter().copied().max().unwrap();
        assert!(max < 2_000, "one shard holds {max} of 10000 entries");
        for k in (0..10_000).step_by(37) {
            assert_eq!(memo.get(k), Some(k));
        }
    }

    #[test]
    fn concurrent_writers_land_every_entry() {
        let memo: ShardedMemo<usize> = ShardedMemo::new();
        std::thread::scope(|scope| {
            for worker in 0..8usize {
                let memo = &memo;
                scope.spawn(move || {
                    for i in 0..500 {
                        let key = worker * 500 + i;
                        memo.insert(key, key * 2);
                    }
                });
            }
        });
        assert_eq!(memo.len(), 4_000);
        for key in 0..4_000 {
            assert_eq!(memo.get(key), Some(key * 2));
        }
    }
}
