//! The [`InFlightWindow`] backend: a bounded window of concurrently
//! outstanding probes with out-of-order completion.
//!
//! [`crate::Parallel`] shards a batch into contiguous chunks, which is
//! right for CPU-bound probes but wrong for *remote* ones: one slow tail
//! call parks its whole chunk while other workers idle. This backend
//! instead keeps exactly `window` probes outstanding at all times — each
//! worker claims the next unclaimed batch slot from an atomic cursor the
//! moment its previous probe answers, so completion order is whatever
//! the far side produces and a straggler only ever holds back *itself*.
//! Answers still land by input index (the `Executor` contract), so the
//! out-of-order completion is invisible to callers.
//!
//! This is the scheduling half of a remote UDF backend: pair it with a
//! probe that performs a blocking RPC (e.g. `expred-remote`'s pooled
//! client) and the window size becomes the connection-pool in-flight
//! budget — connection-pool math, not core-count math.

use crate::executor::{BatchProbe, Executor};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Evaluates batches with at most `window` probes in flight at once,
/// each claimed one slot at a time from a shared cursor.
#[derive(Debug, Clone, Copy)]
pub struct InFlightWindow {
    window: usize,
}

/// Default in-flight window: sized like a small connection pool, not
/// like a core count — latency-bound probes overlap regardless of CPUs.
pub const DEFAULT_WINDOW: usize = 16;

impl InFlightWindow {
    /// A backend keeping at most `window` probes outstanding (min 1).
    pub fn new(window: usize) -> Self {
        Self {
            window: window.max(1),
        }
    }

    /// The configured in-flight budget.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Default for InFlightWindow {
    fn default() -> Self {
        Self::new(DEFAULT_WINDOW)
    }
}

impl Executor for InFlightWindow {
    fn evaluate_batch(&self, probe: &dyn BatchProbe, rows: &[usize]) -> Vec<bool> {
        if rows.is_empty() {
            return Vec::new();
        }
        let workers = self.window.min(rows.len());
        if workers == 1 {
            return rows.iter().map(|&row| probe.probe(row)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut answers = vec![false; rows.len()];
        // Each worker claims slots one at a time and records (slot,
        // answer) locally; the merge after the scope lands everything by
        // input index, so scheduling never leaks into the result.
        let mut partials: Vec<Vec<(usize, bool)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, bool)> = Vec::new();
                        loop {
                            let slot = cursor.fetch_add(1, Ordering::Relaxed);
                            if slot >= rows.len() {
                                return local;
                            }
                            local.push((slot, probe.probe(rows[slot])));
                        }
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(local) => partials.push(local),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        for (slot, answer) in partials.into_iter().flatten() {
            answers[slot] = answer;
        }
        answers
    }

    fn name(&self) -> &str {
        "in_flight_window"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sequential;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn matches_sequential_exactly() {
        let probe = |row: usize| (row * 2654435761) % 5 < 2;
        let rows: Vec<usize> = (0..777).rev().collect();
        for window in [1, 2, 7, 16, 1024] {
            assert_eq!(
                InFlightWindow::new(window).evaluate_batch(&probe, &rows),
                Sequential.evaluate_batch(&probe, &rows),
                "window = {window}"
            );
        }
    }

    #[test]
    fn each_slot_probed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let probe = |_row: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            true
        };
        let rows: Vec<usize> = (0..301).map(|i| i % 13).collect();
        InFlightWindow::new(8).evaluate_batch(&probe, &rows);
        assert_eq!(calls.load(Ordering::Relaxed), rows.len());
    }

    #[test]
    fn straggler_holds_back_only_itself() {
        // One 80ms probe among 15 fast ones, window 4: total must be far
        // under the ~(80 + 15*80/4)ms a chunked schedule could cost if
        // the straggler parked its chunk. Generous bound for CI.
        let probe = |row: usize| {
            if row == 0 {
                std::thread::sleep(Duration::from_millis(80));
            }
            true
        };
        let rows: Vec<usize> = (0..16).collect();
        let start = Instant::now();
        InFlightWindow::new(4).evaluate_batch(&probe, &rows);
        assert!(
            start.elapsed() < Duration::from_millis(200),
            "straggler stalled the window: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn window_is_clamped_and_reported() {
        assert_eq!(InFlightWindow::new(0).window(), 1);
        assert_eq!(InFlightWindow::default().window(), DEFAULT_WINDOW);
        assert_eq!(InFlightWindow::new(3).name(), "in_flight_window");
    }

    #[test]
    fn empty_batch_is_empty() {
        let probe = |_row: usize| true;
        assert!(InFlightWindow::new(4)
            .evaluate_batch(&probe, &[])
            .is_empty());
    }

    #[test]
    fn probe_panic_propagates() {
        let probe = |row: usize| {
            if row == 5 {
                panic!("boom");
            }
            true
        };
        let rows: Vec<usize> = (0..32).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            InFlightWindow::new(4).evaluate_batch(&probe, &rows)
        }));
        assert!(result.is_err(), "panic must not be swallowed");
    }
}
