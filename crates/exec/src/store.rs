//! [`CacheStore`]: the long-lived, cross-query evaluation cache.
//!
//! [`crate::ShardedMemo`] solves the *within-query* problem: concurrent
//! workers of one batch sharing one result cache without serializing on a
//! lock. This module generalizes it to the *cross-query* problem the
//! paper's §4.2 observation implies: an already-evaluated tuple "can be
//! simply returned as part of the query result without re-evaluating" —
//! and nothing about that observation stops at a query boundary. The
//! store namespaces entries by `(udf, table, table version)`, bounds its
//! memory with sharded second-chance (CLOCK) eviction, and reports
//! hit/miss/eviction/invalidation statistics.
//!
//! # Keying and invalidation
//!
//! A [`CacheNamespace`] is three raw `u64`s so this crate stays
//! foundational (no dependency on the table/UDF crates): the UDF's
//! fingerprint, the table's instance id, and the table's content version.
//! A mutated table presents a new version, which is simply a *different*
//! namespace — stale entries become unreachable immediately. To keep
//! superseded versions from pinning memory without punishing *diverged
//! clones* (two live tables sharing one id whose versions legitimately
//! coexist), [`CacheStore::handle`] retains the
//! [`MAX_LIVE_VERSIONS`] most recently borrowed versions of each
//! `(udf, table)` pair and garbage-collects the rest.
//!
//! # Consistency contract
//!
//! The store is a *cache*, not a ledger: any entry may disappear at any
//! moment (eviction, invalidation). Callers that need read-your-writes
//! stability within one query — the paper's sample-reuse logic does —
//! must layer a per-query memo in front (the invoker does exactly that)
//! and treat the store as a best-effort accelerator.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Receives cache writes for durable storage.
///
/// A sink hears about every answer that *enters* a namespace (fresh
/// evaluations — the invoker only writes through on fresh) and every
/// answer the capacity bound *evicts* (a second offer; sinks deduplicate
/// by key, so re-offers are cheap no-ops). It never hears about
/// [`CacheStore::prefill`]ed entries: those came *from* the sink, and
/// echoing them back would re-log every restart.
///
/// Implementations must never block meaningfully (the store calls them
/// outside its shard locks, but on the evaluation hot path) and must not
/// call back into the store.
pub trait SpillSink: Send + Sync + std::fmt::Debug {
    /// Offers one `(namespace, row, answer)` for durable storage.
    fn spill(&self, namespace: CacheNamespace, row: usize, answer: bool);
}

/// The store's current sink, shared by every namespace so
/// [`CacheStore::set_spill`] reaches caches created before wiring.
type SharedSink = Arc<RwLock<Option<Arc<dyn SpillSink>>>>;

/// Default per-namespace entry budget: roomy for the bundled datasets
/// while still exercising eviction on million-row workloads.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 20;

/// How many versions of one `(udf, table)` pair stay live at once.
///
/// Two covers the common shapes: a linear mutation history (current +
/// immediately superseded), and a pair of diverged clones queried
/// alternately — which must *not* thrash each other's namespaces.
pub const MAX_LIVE_VERSIONS: usize = 2;

/// Shard count per namespace (same striping rationale as `ShardedMemo`).
const NAMESPACE_SHARDS: usize = 64;

/// The key of one cache namespace: which UDF over which table state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheNamespace {
    /// The UDF's stable fingerprint.
    pub udf: u64,
    /// The table's instance id.
    pub table: u64,
    /// The table's content version; bumping it abandons the namespace.
    pub version: u64,
}

/// A snapshot of store-wide cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries discarded by the capacity bound.
    pub evictions: u64,
    /// Entries discarded by namespace invalidation (version bumps,
    /// explicit invalidation).
    pub invalidated: u64,
    /// Entries discarded because their namespace outlived the store's
    /// time-to-live ([`CacheStore::with_ttl`]), checked lazily on borrow.
    pub ttl_expirations: u64,
}

impl CacheStats {
    /// The snapshot as named counters, in stable declaration order — the
    /// serialization-ready view shared by the serving `/metrics` endpoint
    /// and the bench artifacts (render with
    /// `expred_stats::json::counters_to_json` / `counters_to_text`).
    pub fn fields(&self) -> [(&'static str, u64); 6] {
        [
            ("hits", self.hits),
            ("misses", self.misses),
            ("insertions", self.insertions),
            ("evictions", self.evictions),
            ("invalidated", self.invalidated),
            ("ttl_expirations", self.ttl_expirations),
        ]
    }
}

#[derive(Debug, Default)]
struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidated: AtomicU64,
    ttl_expirations: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            ttl_expirations: self.ttl_expirations.load(Ordering::Relaxed),
        }
    }
}

/// One cached answer plus its CLOCK referenced bit. The bit is atomic so
/// a hit can mark it under a *shared* read lock — lookups never exclude
/// other readers.
#[derive(Debug)]
struct CacheEntry {
    answer: bool,
    referenced: AtomicBool,
}

/// One lock-striped shard: entries plus the CLOCK ring over their keys.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<usize, CacheEntry>,
    /// Insertion ring the CLOCK hand walks for eviction.
    ring: VecDeque<usize>,
}

/// The entries of one namespace, striped like `ShardedMemo`.
#[derive(Debug)]
struct NamespaceCache {
    namespace: CacheNamespace,
    shards: Box<[RwLock<Shard>]>,
    mask: usize,
    shard_capacity: usize,
    stats: Arc<AtomicStats>,
    /// The store's durable sink slot (shared, so late wiring applies to
    /// every namespace); the slot holds `None` on stores without
    /// persistence.
    spill: SharedSink,
    /// When this namespace was created — prefilled namespaces backdate
    /// this by their oldest surviving entry's age so a TTL keeps counting
    /// across restarts.
    born: Instant,
}

impl NamespaceCache {
    fn new(
        namespace: CacheNamespace,
        shard_capacity: usize,
        stats: Arc<AtomicStats>,
        spill: SharedSink,
        born: Instant,
    ) -> Self {
        let shards: Vec<RwLock<Shard>> = (0..NAMESPACE_SHARDS)
            .map(|_| RwLock::new(Shard::default()))
            .collect();
        Self {
            namespace,
            shards: shards.into_boxed_slice(),
            mask: NAMESPACE_SHARDS - 1,
            shard_capacity,
            stats,
            spill,
            born,
        }
    }

    /// Whether this namespace has outlived `ttl`.
    fn expired(&self, ttl: Duration) -> bool {
        self.born.elapsed() > ttl
    }

    /// Fibonacci-spreads `key` onto a shard index — the single source of
    /// truth for key placement (`get`, `get_many`, and `insert` must all
    /// agree, or batched lookups would probe the wrong shard).
    fn shard_index(&self, key: usize) -> usize {
        let spread = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (spread as usize) & self.mask
    }

    fn shard(&self, key: usize) -> &RwLock<Shard> {
        &self.shards[self.shard_index(key)]
    }

    fn get(&self, key: usize) -> Option<bool> {
        let guard = self.shard(key).read().unwrap_or_else(|e| e.into_inner());
        match guard.map.get(&key) {
            Some(entry) => {
                entry.referenced.store(true, Ordering::Relaxed);
                let answer = entry.answer;
                drop(guard);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(answer)
            }
            None => {
                drop(guard);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Batched lookup: one read-lock acquisition per *touched shard*
    /// instead of one per key. Accounting is identical to `keys.len()`
    /// individual `get`s (one hit or miss each).
    fn get_many(&self, keys: &[usize], out: &mut [Option<bool>]) {
        debug_assert_eq!(keys.len(), out.len());
        // Group key positions by shard so each lock is taken once. A
        // shard index per key is cheap; the win is dropping per-key lock
        // traffic on the batch path.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (position, &key) in keys.iter().enumerate() {
            by_shard[self.shard_index(key)].push(position);
        }
        let mut hits = 0u64;
        let mut misses = 0u64;
        for (shard, positions) in self.shards.iter().zip(&by_shard) {
            if positions.is_empty() {
                continue;
            }
            let guard = shard.read().unwrap_or_else(|e| e.into_inner());
            for &position in positions {
                match guard.map.get(&keys[position]) {
                    Some(entry) => {
                        entry.referenced.store(true, Ordering::Relaxed);
                        out[position] = Some(entry.answer);
                        hits += 1;
                    }
                    None => {
                        out[position] = None;
                        misses += 1;
                    }
                }
            }
        }
        if hits > 0 {
            self.stats.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.stats.misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    fn insert(&self, key: usize, value: bool) {
        self.insert_inner(key, value, true);
    }

    /// Insert without touching the spill sink at all — the prefill path.
    /// The inserted entries came *from* the sink, and anything this
    /// insert evicts is either another prefilled (already durable) entry
    /// or a live entry the sink heard at its own insert, so there is
    /// nothing to tell it. Staying sink-silent is also what lets a
    /// caller prefill while holding locks the sink would re-take (the
    /// rehydration path holds its table registry's write lock).
    fn insert_silent(&self, key: usize, value: bool) {
        self.insert_inner(key, value, false);
    }

    fn insert_inner(&self, key: usize, value: bool, offer: bool) {
        // Evicted entries are re-offered to the sink after the shard
        // guard drops: for a persistent sink the re-offer is a
        // deduplicated no-op (first write wins), but it guarantees no
        // answer leaves memory without the sink having heard of it.
        // (Silent inserts skip the sink entirely — see `insert_silent`.)
        let mut evicted: Vec<(usize, bool)> = Vec::new();
        {
            let mut guard = self.shard(key).write().unwrap_or_else(|e| e.into_inner());
            let shard = &mut *guard;
            if let Some(entry) = shard.map.get_mut(&key) {
                // Refresh in place; the ring entry stays where it is.
                entry.answer = value;
                entry.referenced.store(true, Ordering::Relaxed);
            } else {
                // Second-chance sweep: referenced entries get one more
                // lap, unreferenced ones go. Bounded by ring length + 1
                // because every pass-over clears a referenced bit.
                while shard.map.len() >= self.shard_capacity {
                    let Some(candidate) = shard.ring.pop_front() else {
                        break;
                    };
                    match shard.map.get(&candidate) {
                        Some(entry) if entry.referenced.load(Ordering::Relaxed) => {
                            entry.referenced.store(false, Ordering::Relaxed);
                            shard.ring.push_back(candidate);
                        }
                        Some(_) => {
                            if let Some(entry) = shard.map.remove(&candidate) {
                                evicted.push((candidate, entry.answer));
                            }
                        }
                        None => {}
                    }
                }
                shard.map.insert(
                    key,
                    CacheEntry {
                        answer: value,
                        referenced: AtomicBool::new(false),
                    },
                );
                shard.ring.push_back(key);
            }
        }
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        if !evicted.is_empty() {
            self.stats
                .evictions
                .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        }
        if offer {
            let sink = self.spill.read().unwrap_or_else(|e| e.into_inner()).clone();
            if let Some(sink) = sink {
                sink.spill(self.namespace, key, value);
                for (row, answer) in evicted {
                    sink.spill(self.namespace, row, answer);
                }
            }
        }
    }

    /// Visits every live entry (per-shard read locks, no global freeze).
    fn for_each(&self, f: &mut dyn FnMut(usize, bool)) {
        for shard in self.shards.iter() {
            let guard = shard.read().unwrap_or_else(|e| e.into_inner());
            for (&key, entry) in guard.map.iter() {
                f(key, entry.answer);
            }
        }
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }
}

/// A cheap, clonable view of one namespace inside a [`CacheStore`].
///
/// This is what an invoker *borrows* for the duration of a query instead
/// of owning its memo: lookups and insertions go straight to the shared
/// store, so every borrower of the same namespace — across threads and
/// across queries — sees one cache.
#[derive(Clone)]
pub struct CacheHandle {
    namespace: CacheNamespace,
    cache: Arc<NamespaceCache>,
}

impl CacheHandle {
    /// The namespace this handle is scoped to.
    pub fn namespace(&self) -> CacheNamespace {
        self.namespace
    }

    /// The cached answer for `key`, if present (counts a hit or miss).
    pub fn get(&self, key: usize) -> Option<bool> {
        self.cache.get(key)
    }

    /// Batched lookup for the invoker's batch path: answers for every
    /// key, in input order, taking each touched shard's read lock once
    /// instead of once per key. Hit/miss accounting is exactly what the
    /// equivalent sequence of [`CacheHandle::get`] calls would record.
    pub fn get_many(&self, keys: &[usize]) -> Vec<Option<bool>> {
        let mut out = vec![None; keys.len()];
        if !keys.is_empty() {
            self.cache.get_many(keys, &mut out);
        }
        out
    }

    /// Caches `value` for `key`, possibly evicting under the capacity
    /// bound.
    pub fn insert(&self, key: usize, value: bool) {
        self.cache.insert(key, value)
    }

    /// Number of live entries in this namespace.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the namespace holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for CacheHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheHandle")
            .field("namespace", &self.namespace)
            .field("len", &self.len())
            .finish()
    }
}

/// The cross-query evaluation cache: a capacity-bounded map of
/// namespaces, shared by every query an engine session runs.
///
/// Cloning shares the underlying storage (the store is an `Arc`
/// internally), so an engine, its pipelines, and diagnostic code can all
/// hold the same store cheaply.
#[derive(Clone, Debug)]
pub struct CacheStore {
    inner: Arc<StoreInner>,
}

/// The namespace table plus the per-`(udf, table)` borrow-recency lists
/// driving [`MAX_LIVE_VERSIONS`] garbage collection. One struct, one
/// lock: they must always be updated together.
#[derive(Debug, Default)]
struct Namespaces {
    map: HashMap<CacheNamespace, Arc<NamespaceCache>>,
    /// Live versions per `(udf, table)`, most recently borrowed last.
    recency: HashMap<(u64, u64), Vec<u64>>,
}

impl Namespaces {
    /// Removes one namespace, maintaining the recency index. Returns the
    /// number of entries dropped.
    fn remove(&mut self, namespace: &CacheNamespace) -> u64 {
        let Some(old) = self.map.remove(namespace) else {
            return 0;
        };
        let pair = (namespace.udf, namespace.table);
        if let Some(versions) = self.recency.get_mut(&pair) {
            versions.retain(|&v| v != namespace.version);
            if versions.is_empty() {
                self.recency.remove(&pair);
            }
        }
        old.len() as u64
    }
}

#[derive(Debug)]
struct StoreInner {
    namespaces: RwLock<Namespaces>,
    shard_capacity: usize,
    stats: Arc<AtomicStats>,
    /// The durable sink slot shared with every namespace (see
    /// [`SharedSink`]); empty unless persistence is wired.
    spill: SharedSink,
    /// Namespace time-to-live in nanoseconds; `0` disables expiry.
    ttl_nanos: AtomicU64,
}

impl CacheStore {
    /// A store with the default per-namespace capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// A store holding at most `capacity` entries per namespace
    /// (rounded up to at least one entry per shard).
    pub fn with_capacity(capacity: usize) -> Self {
        let shard_capacity = capacity.div_ceil(NAMESPACE_SHARDS).max(1);
        Self {
            inner: Arc::new(StoreInner {
                namespaces: RwLock::new(Namespaces::default()),
                shard_capacity,
                stats: Arc::new(AtomicStats::default()),
                spill: Arc::new(RwLock::new(None)),
                ttl_nanos: AtomicU64::new(0),
            }),
        }
    }

    /// Builder form of [`CacheStore::set_ttl`].
    pub fn with_ttl(self, ttl: Duration) -> Self {
        self.set_ttl(Some(ttl));
        self
    }

    /// Sets (or clears, with `None`) the namespace time-to-live.
    ///
    /// Expiry is *lazy*: a namespace older than the TTL is dropped the
    /// next time someone borrows it via [`CacheStore::handle`], with its
    /// entries counted under [`CacheStats::ttl_expirations`]. Handles
    /// borrowed before expiry keep their private `Arc` — in-flight
    /// queries are never interrupted; only new borrowers start cold.
    /// Prefilled namespaces carry their age across restarts (see
    /// [`CacheStore::prefill`]), so a TTL bounds *answer* staleness, not
    /// merely process uptime.
    pub fn set_ttl(&self, ttl: Option<Duration>) {
        let nanos = match ttl {
            // An explicit zero TTL means "expire immediately"; encode it
            // as 1ns so it doesn't collide with the disabled sentinel.
            Some(t) => (t.as_nanos().min(u64::MAX as u128) as u64).max(1),
            None => 0,
        };
        self.inner.ttl_nanos.store(nanos, Ordering::Relaxed);
    }

    /// The configured namespace time-to-live, if any.
    pub fn ttl(&self) -> Option<Duration> {
        let nanos = self.inner.ttl_nanos.load(Ordering::Relaxed);
        (nanos > 0).then(|| Duration::from_nanos(nanos))
    }

    /// Installs (or removes, with `None`) the durable spill sink.
    ///
    /// The slot is shared with every namespace, including ones created
    /// before this call, so wiring order doesn't matter. The sink hears
    /// every fresh insert and every capacity eviction a fresh insert
    /// causes; prefill never touches the sink — neither its inserts nor
    /// the evictions they trigger (everything involved is already
    /// durable; see [`CacheStore::prefill`]).
    pub fn set_spill(&self, sink: Option<Arc<dyn SpillSink>>) {
        *self.inner.spill.write().unwrap_or_else(|e| e.into_inner()) = sink;
    }

    fn make_cache(&self, namespace: CacheNamespace, born: Instant) -> Arc<NamespaceCache> {
        Arc::new(NamespaceCache::new(
            namespace,
            self.inner.shard_capacity,
            Arc::clone(&self.inner.stats),
            Arc::clone(&self.inner.spill),
            born,
        ))
    }

    /// Borrows the cache for `namespace`, creating it on first use.
    ///
    /// Borrowing refreshes the namespace's recency; once more than
    /// [`MAX_LIVE_VERSIONS`] versions of one `(udf, table)` pair are
    /// live, the least recently borrowed ones are dropped (their entries
    /// count as invalidated). A bumped version's entries are unreachable
    /// from the new version immediately — retention only delays memory
    /// reclamation, never serves stale answers — while two diverged
    /// clones of one table can alternate without thrashing each other.
    ///
    /// Concurrent borrows of the same namespace are the common case for a
    /// shared engine and return clones of one `Arc`'d cache; the steady
    /// state (namespace exists and is already the most recently borrowed
    /// version of its pair) takes only the shared read lock, so worker
    /// threads starting queries do not serialize on each other. Racing
    /// borrows of *diverging* versions settle under the write lock, and
    /// a handle borrowed before its namespace is GCed keeps a private
    /// `Arc` — its query's read-your-writes view stays intact; only new
    /// borrowers start empty.
    pub fn handle(&self, namespace: CacheNamespace) -> CacheHandle {
        let ttl = self.ttl();
        {
            // Fast path: borrowing the freshest, unexpired version
            // changes neither the recency list nor the namespace table.
            let guard = self
                .inner
                .namespaces
                .read()
                .unwrap_or_else(|e| e.into_inner());
            if let Some(cache) = guard.map.get(&namespace) {
                if !ttl.is_some_and(|t| cache.expired(t)) {
                    let pair = (namespace.udf, namespace.table);
                    let freshest = guard.recency.get(&pair).and_then(|v| v.last());
                    if freshest == Some(&namespace.version) {
                        return CacheHandle {
                            namespace,
                            cache: Arc::clone(cache),
                        };
                    }
                }
            }
        }
        let mut guard = self
            .inner
            .namespaces
            .write()
            .unwrap_or_else(|e| e.into_inner());
        // Lazy TTL expiry: an over-age namespace is dropped here, on
        // borrow, so the borrower below starts from a fresh (re-aged)
        // cache rather than serving answers older than the bound.
        if let Some(ttl) = ttl {
            if guard.map.get(&namespace).is_some_and(|c| c.expired(ttl)) {
                let dropped = guard.remove(&namespace);
                if dropped > 0 {
                    self.inner
                        .stats
                        .ttl_expirations
                        .fetch_add(dropped, Ordering::Relaxed);
                }
            }
        }
        let pair = (namespace.udf, namespace.table);
        let stale_versions: Vec<u64> = {
            let versions = guard.recency.entry(pair).or_default();
            versions.retain(|&v| v != namespace.version);
            versions.push(namespace.version);
            let excess = versions.len().saturating_sub(MAX_LIVE_VERSIONS);
            versions.drain(..excess).collect()
        };
        let mut invalidated = 0u64;
        for version in stale_versions {
            invalidated += guard.remove(&CacheNamespace {
                version,
                ..namespace
            });
        }
        if invalidated > 0 {
            self.inner
                .stats
                .invalidated
                .fetch_add(invalidated, Ordering::Relaxed);
        }
        let cache = guard
            .map
            .entry(namespace)
            .or_insert_with(|| self.make_cache(namespace, Instant::now()))
            .clone();
        CacheHandle { namespace, cache }
    }

    /// Bulk-loads rehydrated `(row, answer)` pairs into `namespace`
    /// without touching the spill sink at all, and returns the number of
    /// rows loaded. The loaded entries came *from* the sink, and any
    /// entry the capacity bound evicts mid-prefill is either another
    /// prefilled entry or a live one the sink already heard — so prefill
    /// is safe to call while holding locks the sink would re-take.
    ///
    /// A namespace created by prefill is backdated by `age` — the time
    /// since its oldest persisted answer was written — so a configured
    /// TTL measures answer staleness across restarts instead of
    /// restarting the clock. Prefilling an already-live namespace keeps
    /// its existing birth time (fresh activity wins).
    pub fn prefill(
        &self,
        namespace: CacheNamespace,
        rows: &[(usize, bool)],
        age: Duration,
    ) -> usize {
        if rows.is_empty() {
            return 0;
        }
        // If the whole batch is already over-age, loading it would only
        // hand the next borrower an expired namespace to tear down.
        if self.ttl().is_some_and(|ttl| age > ttl) {
            return 0;
        }
        let born = Instant::now().checked_sub(age).unwrap_or_else(Instant::now);
        let cache = {
            let mut guard = self
                .inner
                .namespaces
                .write()
                .unwrap_or_else(|e| e.into_inner());
            // Same recency maintenance as a borrow: a prefilled version
            // counts as "recently seen" and may push an old one out.
            let pair = (namespace.udf, namespace.table);
            let stale_versions: Vec<u64> = {
                let versions = guard.recency.entry(pair).or_default();
                versions.retain(|&v| v != namespace.version);
                versions.push(namespace.version);
                let excess = versions.len().saturating_sub(MAX_LIVE_VERSIONS);
                versions.drain(..excess).collect()
            };
            let mut invalidated = 0u64;
            for version in stale_versions {
                invalidated += guard.remove(&CacheNamespace {
                    version,
                    ..namespace
                });
            }
            if invalidated > 0 {
                self.inner
                    .stats
                    .invalidated
                    .fetch_add(invalidated, Ordering::Relaxed);
            }
            guard
                .map
                .entry(namespace)
                .or_insert_with(|| self.make_cache(namespace, born))
                .clone()
        };
        for &(row, answer) in rows {
            cache.insert_silent(row, answer);
        }
        rows.len()
    }

    /// Visits every live entry across all namespaces — the spill-on-flush
    /// walk. Entries are read under per-shard read locks (no global
    /// freeze), so concurrent inserts may or may not be visited; every
    /// entry present for the whole walk is.
    pub fn for_each_entry(&self, mut f: impl FnMut(CacheNamespace, usize, bool)) {
        let caches: Vec<Arc<NamespaceCache>> = {
            let guard = self
                .inner
                .namespaces
                .read()
                .unwrap_or_else(|e| e.into_inner());
            guard.map.values().cloned().collect()
        };
        for cache in caches {
            let namespace = cache.namespace;
            cache.for_each(&mut |row, answer| f(namespace, row, answer));
        }
    }

    /// Drops one namespace outright.
    pub fn invalidate(&self, namespace: CacheNamespace) {
        let mut guard = self
            .inner
            .namespaces
            .write()
            .unwrap_or_else(|e| e.into_inner());
        let dropped = guard.remove(&namespace);
        if dropped > 0 {
            self.inner
                .stats
                .invalidated
                .fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Drops every namespace belonging to `table` (any UDF, any version).
    pub fn invalidate_table(&self, table: u64) {
        let mut guard = self
            .inner
            .namespaces
            .write()
            .unwrap_or_else(|e| e.into_inner());
        let doomed: Vec<CacheNamespace> = guard
            .map
            .keys()
            .filter(|ns| ns.table == table)
            .copied()
            .collect();
        let mut invalidated = 0u64;
        for ns in doomed {
            invalidated += guard.remove(&ns);
        }
        if invalidated > 0 {
            self.inner
                .stats
                .invalidated
                .fetch_add(invalidated, Ordering::Relaxed);
        }
    }

    /// Number of live namespaces.
    pub fn num_namespaces(&self) -> usize {
        self.inner
            .namespaces
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// Total live entries across namespaces.
    pub fn len(&self) -> usize {
        self.inner
            .namespaces
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .values()
            .map(|c| c.len())
            .sum()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Store-wide statistics since construction.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats.snapshot()
    }

    /// Drops every namespace (stats are preserved).
    pub fn clear(&self) {
        let mut guard = self
            .inner
            .namespaces
            .write()
            .unwrap_or_else(|e| e.into_inner());
        let entries: u64 = guard.map.values().map(|c| c.len() as u64).sum();
        self.inner
            .stats
            .invalidated
            .fetch_add(entries, Ordering::Relaxed);
        guard.map.clear();
        guard.recency.clear();
    }
}

impl Default for CacheStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(udf: u64, table: u64, version: u64) -> CacheNamespace {
        CacheNamespace {
            udf,
            table,
            version,
        }
    }

    #[test]
    fn get_insert_round_trips_and_counts() {
        let store = CacheStore::new();
        let h = store.handle(ns(1, 1, 0));
        assert_eq!(h.get(42), None);
        h.insert(42, true);
        assert_eq!(h.get(42), Some(true));
        h.insert(42, false);
        assert_eq!(h.get(42), Some(false));
        let s = store.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn get_many_matches_per_key_gets_including_stats() {
        let store = CacheStore::new();
        let h = store.handle(ns(1, 1, 0));
        for key in (0..200).step_by(2) {
            h.insert(key, key % 4 == 0);
        }
        let keys: Vec<usize> = (0..200).collect();
        let batched = h.get_many(&keys);
        let batched_stats = store.stats();

        let twin = CacheStore::new();
        let th = twin.handle(ns(1, 1, 0));
        for key in (0..200).step_by(2) {
            th.insert(key, key % 4 == 0);
        }
        let individual: Vec<Option<bool>> = keys.iter().map(|&k| th.get(k)).collect();
        assert_eq!(batched, individual);
        assert_eq!(batched_stats, twin.stats());
        assert_eq!(batched_stats.hits, 100);
        assert_eq!(batched_stats.misses, 100);
        assert!(h.get_many(&[]).is_empty());
    }

    #[test]
    fn get_many_marks_entries_referenced_for_eviction() {
        // A key read through get_many must survive a second-chance sweep
        // exactly like one read through get.
        let store = CacheStore::with_capacity(NAMESPACE_SHARDS * 4);
        let h = store.handle(ns(1, 1, 0));
        h.insert(0, true);
        for cold in 1..5_000usize {
            assert_eq!(h.get_many(&[0]), vec![Some(true)], "evicted at {cold}");
            h.insert(cold, false);
        }
    }

    #[test]
    fn namespaces_are_isolated() {
        let store = CacheStore::new();
        let a = store.handle(ns(1, 1, 0));
        let b = store.handle(ns(2, 1, 0));
        a.insert(7, true);
        assert_eq!(b.get(7), None);
        assert_eq!(a.get(7), Some(true));
        assert_eq!(store.num_namespaces(), 2);
    }

    #[test]
    fn handles_share_one_namespace() {
        let store = CacheStore::new();
        let a = store.handle(ns(1, 1, 0));
        let b = store.handle(ns(1, 1, 0));
        a.insert(5, true);
        assert_eq!(b.get(5), Some(true));
        assert_eq!(store.num_namespaces(), 1);
    }

    #[test]
    fn version_bump_invalidates_and_old_versions_are_eventually_gced() {
        let store = CacheStore::new();
        let v0 = store.handle(ns(1, 9, 100));
        v0.insert(1, true);
        v0.insert(2, false);
        // The bumped version never sees the old state's entries…
        let v1 = store.handle(ns(1, 9, 101));
        assert_eq!(v1.get(1), None);
        // …but the old version stays live (diverged clones coexist) until
        // it falls off the MAX_LIVE_VERSIONS recency window.
        assert_eq!(store.num_namespaces(), 2);
        assert_eq!(store.stats().invalidated, 0);
        let _v2 = store.handle(ns(1, 9, 102));
        assert_eq!(store.num_namespaces(), MAX_LIVE_VERSIONS);
        assert_eq!(store.stats().invalidated, 2, "v100's entries dropped");
        // The orphaned handle still works (its Arc is alive) but new
        // borrowers of v100 start empty.
        assert_eq!(v0.get(1), Some(true));
        assert_eq!(store.handle(ns(1, 9, 100)).get(1), None);
    }

    #[test]
    fn alternating_diverged_clones_do_not_thrash_each_other() {
        // Two live versions of one (udf, table) — e.g. diverged clones —
        // queried alternately must keep their caches intact.
        let store = CacheStore::new();
        store.handle(ns(1, 9, 7)).insert(1, true);
        store.handle(ns(1, 9, 8)).insert(2, false);
        for _ in 0..10 {
            assert_eq!(store.handle(ns(1, 9, 7)).get(1), Some(true));
            assert_eq!(store.handle(ns(1, 9, 8)).get(2), Some(false));
        }
        assert_eq!(store.stats().invalidated, 0);
        assert_eq!(store.num_namespaces(), 2);
    }

    #[test]
    fn invalidate_table_drops_all_its_namespaces() {
        let store = CacheStore::new();
        store.handle(ns(1, 3, 0)).insert(0, true);
        store.handle(ns(2, 3, 0)).insert(0, true);
        store.handle(ns(1, 4, 0)).insert(0, true);
        store.invalidate_table(3);
        assert_eq!(store.num_namespaces(), 1);
        assert_eq!(store.stats().invalidated, 2);
        store.invalidate(ns(1, 4, 0));
        assert!(store.is_empty());
    }

    #[test]
    fn capacity_bounds_entries_and_counts_evictions() {
        // Tiny capacity: 64 shards * 1 entry.
        let store = CacheStore::with_capacity(1);
        let h = store.handle(ns(1, 1, 0));
        for key in 0..1_000 {
            h.insert(key, key % 2 == 0);
        }
        assert!(h.len() <= NAMESPACE_SHARDS, "len {} over bound", h.len());
        let s = store.stats();
        assert_eq!(s.insertions, 1_000);
        assert!(s.evictions >= 1_000 - NAMESPACE_SHARDS as u64);
    }

    #[test]
    fn second_chance_protects_hot_entries() {
        let store = CacheStore::with_capacity(NAMESPACE_SHARDS * 4);
        let h = store.handle(ns(1, 1, 0));
        // A hot key that is re-read between every burst of cold inserts.
        h.insert(0, true);
        for cold in 1..5_000usize {
            assert_eq!(h.get(0), Some(true), "hot key evicted at {cold}");
            h.insert(cold, false);
        }
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let store = CacheStore::new();
        let h = store.handle(ns(1, 1, 0));
        h.insert(1, true);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.stats().insertions, 1);
        assert_eq!(store.stats().invalidated, 1);
    }

    #[test]
    fn clones_share_storage() {
        let store = CacheStore::new();
        let view = store.clone();
        store.handle(ns(1, 1, 0)).insert(3, true);
        assert_eq!(view.handle(ns(1, 1, 0)).get(3), Some(true));
    }

    /// A sink that records every offer, for spill-path tests.
    #[derive(Debug, Default)]
    struct RecordingSink {
        offers: std::sync::Mutex<Vec<(CacheNamespace, usize, bool)>>,
    }

    impl SpillSink for RecordingSink {
        fn spill(&self, namespace: CacheNamespace, row: usize, answer: bool) {
            self.offers
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((namespace, row, answer));
        }
    }

    impl RecordingSink {
        fn offers(&self) -> Vec<(CacheNamespace, usize, bool)> {
            self.offers
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone()
        }
    }

    #[test]
    fn spill_sink_hears_inserts_but_not_prefill() {
        let store = CacheStore::new();
        let sink = Arc::new(RecordingSink::default());
        store.set_spill(Some(sink.clone() as Arc<dyn SpillSink>));
        // Prefilled entries must not echo back to the sink.
        assert_eq!(
            store.prefill(ns(1, 1, 0), &[(10, true), (11, false)], Duration::ZERO),
            2
        );
        assert!(sink.offers().is_empty());
        // Fresh inserts do reach it — including on namespaces created
        // before the sink was wired (the slot is shared).
        store.handle(ns(1, 1, 0)).insert(12, true);
        assert_eq!(sink.offers(), vec![(ns(1, 1, 0), 12, true)]);
        // And prefilled entries are still readable.
        assert_eq!(store.handle(ns(1, 1, 0)).get(10), Some(true));
        assert_eq!(store.handle(ns(1, 1, 0)).get(11), Some(false));
    }

    #[test]
    fn prefill_past_capacity_evicts_without_touching_the_sink() {
        // Regression: prefilling more rows than the capacity bound used
        // to re-offer the evictions to the sink, re-entering the
        // rehydration caller's locks on the same thread (deadlock).
        let store = CacheStore::with_capacity(NAMESPACE_SHARDS); // 1 entry per shard
        let sink = Arc::new(RecordingSink::default());
        store.set_spill(Some(sink.clone() as Arc<dyn SpillSink>));
        let rows: Vec<(usize, bool)> = (0..1_000).map(|r| (r, r % 2 == 0)).collect();
        assert_eq!(store.prefill(ns(1, 1, 0), &rows, Duration::ZERO), 1_000);
        assert!(store.stats().evictions > 0, "capacity bound not exercised");
        assert!(
            sink.offers().is_empty(),
            "prefill must stay sink-silent even when it evicts"
        );
    }

    #[test]
    fn spill_sink_wired_late_still_hears_old_namespaces() {
        let store = CacheStore::new();
        let h = store.handle(ns(1, 1, 0));
        let sink = Arc::new(RecordingSink::default());
        store.set_spill(Some(sink.clone() as Arc<dyn SpillSink>));
        h.insert(5, false);
        assert_eq!(sink.offers(), vec![(ns(1, 1, 0), 5, false)]);
    }

    #[test]
    fn evictions_are_reoffered_to_sink() {
        let store = CacheStore::with_capacity(1); // 1 entry per shard
        let sink = Arc::new(RecordingSink::default());
        store.set_spill(Some(sink.clone() as Arc<dyn SpillSink>));
        let h = store.handle(ns(1, 1, 0));
        for key in 0..1_000usize {
            h.insert(key, key % 2 == 0);
        }
        let offers = sink.offers();
        let evictions = store.stats().evictions;
        assert!(evictions > 0);
        // Every insert offered once, every eviction re-offered once.
        assert_eq!(offers.len() as u64, 1_000 + evictions);
        // Re-offers carry the answer originally cached.
        for &(_, row, answer) in &offers {
            assert_eq!(answer, row % 2 == 0);
        }
    }

    #[test]
    fn ttl_expires_namespaces_lazily_on_borrow() {
        let store = CacheStore::new().with_ttl(Duration::from_millis(20));
        let h = store.handle(ns(1, 1, 0));
        h.insert(1, true);
        h.insert(2, false);
        // Young namespace: borrow serves the cached answers.
        assert_eq!(store.handle(ns(1, 1, 0)).get(1), Some(true));
        std::thread::sleep(Duration::from_millis(40));
        // Over-age: the next borrow starts cold and counts expirations.
        let reborrowed = store.handle(ns(1, 1, 0));
        assert_eq!(reborrowed.get(1), None);
        assert_eq!(store.stats().ttl_expirations, 2);
        // The pre-expiry handle keeps its private view (read-your-writes
        // within a query survives).
        assert_eq!(h.get(2), Some(false));
        // The replacement namespace ages from now, not from the original.
        reborrowed.insert(3, true);
        assert_eq!(store.handle(ns(1, 1, 0)).get(3), Some(true));
    }

    #[test]
    fn prefill_age_counts_against_ttl() {
        let store = CacheStore::new().with_ttl(Duration::from_millis(25));
        // Rehydrated with most of its TTL already spent…
        assert_eq!(
            store.prefill(ns(1, 1, 0), &[(1, true)], Duration::from_millis(15)),
            1
        );
        assert_eq!(store.handle(ns(1, 1, 0)).get(1), Some(true));
        // …so it expires after the *remaining* budget, not a full TTL.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(store.handle(ns(1, 1, 0)).get(1), None);
        assert_eq!(store.stats().ttl_expirations, 1);
        // A batch already past the TTL is refused outright: no namespace
        // is created for it (only the reborrowed ns(1,..) remains).
        assert_eq!(
            store.prefill(ns(2, 1, 0), &[(1, true)], Duration::from_millis(60)),
            0
        );
        assert_eq!(store.num_namespaces(), 1);
    }

    #[test]
    fn no_ttl_means_no_expiry() {
        let store = CacheStore::new();
        store.handle(ns(1, 1, 0)).insert(1, true);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(store.handle(ns(1, 1, 0)).get(1), Some(true));
        assert_eq!(store.stats().ttl_expirations, 0);
        assert_eq!(store.ttl(), None);
        store.set_ttl(Some(Duration::from_secs(3600)));
        assert_eq!(store.ttl(), Some(Duration::from_secs(3600)));
    }

    #[test]
    fn for_each_entry_visits_every_namespace() {
        let store = CacheStore::new();
        store.handle(ns(1, 1, 0)).insert(1, true);
        store.handle(ns(2, 1, 0)).insert(2, false);
        store.prefill(ns(3, 1, 0), &[(3, true)], Duration::ZERO);
        let mut seen: Vec<(CacheNamespace, usize, bool)> = Vec::new();
        store.for_each_entry(|namespace, row, answer| seen.push((namespace, row, answer)));
        seen.sort_by_key(|(n, r, _)| (n.udf, *r));
        assert_eq!(
            seen,
            vec![
                (ns(1, 1, 0), 1, true),
                (ns(2, 1, 0), 2, false),
                (ns(3, 1, 0), 3, true),
            ]
        );
    }

    #[test]
    fn prefill_respects_version_recency_window() {
        let store = CacheStore::new();
        store.handle(ns(1, 9, 100)).insert(1, true);
        store.handle(ns(1, 9, 101)).insert(1, true);
        // Prefilling a third version pushes the oldest out, exactly like
        // a borrow would.
        store.prefill(ns(1, 9, 102), &[(1, false)], Duration::ZERO);
        assert_eq!(store.num_namespaces(), MAX_LIVE_VERSIONS);
        assert_eq!(store.stats().invalidated, 1);
        assert_eq!(store.handle(ns(1, 9, 102)).get(1), Some(false));
    }

    #[test]
    fn concurrent_borrowers_land_every_entry() {
        let store = CacheStore::new();
        std::thread::scope(|scope| {
            for worker in 0..8usize {
                let store = store.clone();
                scope.spawn(move || {
                    let h = store.handle(ns(1, 1, 0));
                    for i in 0..500 {
                        h.insert(worker * 500 + i, true);
                    }
                });
            }
        });
        assert_eq!(store.len(), 4_000);
    }
}
