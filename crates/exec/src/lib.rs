//! `expred-exec` — the parallel, batched, cache-sharing evaluation runtime.
//!
//! The paper's premise is that UDF evaluation dominates query cost; this
//! crate makes sure the system spends that cost as the hardware allows
//! instead of one blocking call at a time. It is deliberately foundational
//! (no dependency on the table/UDF crates), so every layer above — the
//! audited invoker, the probabilistic executor, the pipelines — can route
//! probes through it:
//!
//! * [`executor`] — the [`Executor`] trait ([`Executor::evaluate_batch`])
//!   with the [`Sequential`] backend that preserves one-at-a-time
//!   behavior bit for bit;
//! * [`parallel`] — the [`Parallel`] backend: shards a batch across
//!   scoped OS threads, deterministic answer order;
//! * [`pool`] — the [`WorkerPool`] backend: persistent work-stealing
//!   workers with an atomic chunk cursor (no per-batch thread spawns, no
//!   straggler-bound chunking) and a latency-aware inline fast path;
//! * [`window`] — the [`InFlightWindow`] backend: a bounded window of
//!   concurrently outstanding probes with out-of-order completion,
//!   built for blocking-RPC probes (remote UDF backends) where the
//!   window is connection-pool math, not core-count math;
//! * [`adaptive`] — [`AdaptiveController`], the shared per-probe latency
//!   EWMA that sizes planner drain slices between a floor and the
//!   context's `max_in_flight`;
//! * [`cache`] — [`ShardedMemo`], a lock-striped concurrent memo table so
//!   workers sharing one result cache do not serialize on a single lock;
//! * [`store`] — [`CacheStore`], the generalization of the memo to a
//!   long-lived, capacity-bounded, `(udf, table, version)`-namespaced
//!   cache that outlives individual queries; invokers borrow
//!   [`CacheHandle`]s from it instead of owning their memo;
//! * [`selectivity`] — [`SelectivityTracker`], the session's observed
//!   per-namespace pass rates: invokers feed it with every fresh answer,
//!   and the expression optimizer ranks `AND`/`OR` siblings by it;
//! * [`context`] — [`ExecContext`], the single execution parameter
//!   (backend + cache + batch budget) threaded through every pipeline;
//! * [`planner`] — [`BatchPlanner`], which accumulates pending probes per
//!   correlation group and drains them through an executor under a
//!   `max_in_flight` budget.
//!
//! # The `Executor` contract
//!
//! Implementations of [`Executor`] must uphold, and callers may rely on:
//!
//! 1. **Order**: `evaluate_batch(probe, rows)` returns exactly
//!    `rows.len()` answers, with `answers[i] = probe(rows[i])`.
//! 2. **Exactly once per slot**: the probe is invoked exactly once per
//!    batch slot (callers dedupe and memoize *before* batching, so the
//!    charged cost of a batch is precisely its length).
//! 3. **Determinism**: for a pure probe, the returned vector is a pure
//!    function of `rows` — scheduling, thread count, and backend choice
//!    must not leak into results. This is what makes `Parallel` produce
//!    byte-identical `RunOutcome`s to `Sequential`.
//! 4. **Purity requirement on probes**: [`BatchProbe::probe`] must be
//!    deterministic per row and safe to call from any thread
//!    concurrently. Probes that randomize or keep interior mutable state
//!    must synchronize internally and stay row-deterministic.
//!
//! Backends may reorder, interleave, or parallelize the underlying calls
//! arbitrarily within a batch — the paper's cost model is indifferent to
//! *when* an evaluation happens, only to *how many* happen.

pub mod adaptive;
pub mod cache;
pub mod context;
pub mod executor;
pub mod parallel;
pub mod planner;
pub mod pool;
pub mod selectivity;
pub mod store;
pub mod window;

pub use adaptive::{AdaptiveController, DEFAULT_WINDOW_FLOOR};
pub use cache::ShardedMemo;
pub use context::ExecContext;
pub use executor::{BatchProbe, Executor, Sequential};
pub use parallel::Parallel;
pub use planner::{BatchPlanner, GroupedAnswer, DEFAULT_MAX_IN_FLIGHT};
pub use pool::WorkerPool;
pub use selectivity::{SelectivityHandle, SelectivityTracker, DEFAULT_SELECTIVITY_CAPACITY};
pub use store::{
    CacheHandle, CacheNamespace, CacheStats, CacheStore, SpillSink, DEFAULT_CACHE_CAPACITY,
    MAX_LIVE_VERSIONS,
};
pub use window::{InFlightWindow, DEFAULT_WINDOW};
