//! [`ExecContext`]: the one execution parameter every pipeline takes.
//!
//! Before this type existed, each new runtime capability grew another
//! `*_with(...)` variant on every pipeline entry point (first an
//! executor, next a cache store, then a batch budget…). The context
//! bundles all of it: which [`Executor`] evaluates batches, which
//! [`CacheStore`] (if any) outlives the query, and the in-flight budget
//! batch planners should respect. Legacy entry points simply run on
//! [`ExecContext::sequential`], which reproduces the original
//! one-at-a-time, cache-less behavior bit for bit.

use crate::adaptive::AdaptiveController;
use crate::executor::{Executor, Sequential};
use crate::planner::{BatchPlanner, DEFAULT_MAX_IN_FLIGHT};
use crate::selectivity::SelectivityTracker;
use crate::store::CacheStore;
use expred_table::DerivedCache;
use std::time::Duration;

/// The sequential backend as a `'static` borrow for default contexts.
static SEQUENTIAL: Sequential = Sequential;

/// How a query executes: backend, cross-query cache, batching budget.
///
/// `Copy` and cheap — pipelines pass it by reference, helpers may copy it
/// to narrow lifetimes. Constructed either standalone (one-shot queries)
/// or by a session engine that owns the executor and store.
#[derive(Clone, Copy)]
pub struct ExecContext<'a> {
    /// The backend UDF batches run through.
    pub executor: &'a dyn Executor,
    /// The cross-query cache, if this query runs inside a session.
    pub cache: Option<&'a CacheStore>,
    /// Cap on rows handed to one `evaluate_batch` call.
    pub max_in_flight: usize,
    /// Artificial per-evaluation latency pipelines should add to their
    /// UDFs — `None` for the real (instantaneous oracle) predicate.
    /// Benchmarks and load tests use this to serve a genuinely expensive
    /// workload through the full session stack; answers and audited
    /// counts are unaffected (latency is not part of any cache identity).
    pub udf_latency: Option<Duration>,
    /// The session's shared latency model, if batching should adapt:
    /// planners built by [`ExecContext::planner`] feed it and size their
    /// drain slices from it (between the controller's floor and
    /// `max_in_flight`). `None` keeps the fixed `max_in_flight` slicing.
    /// Answers and bills are identical either way.
    pub adaptive: Option<&'a AdaptiveController>,
    /// The session's derived-data cache (group partitions, encoding
    /// dictionaries), if this query runs inside a session. Entries are
    /// keyed by `(table id, version, column)`, so pipelines may reuse
    /// them freely: outputs are byte-identical with or without it.
    pub derived: Option<&'a DerivedCache>,
    /// The session's observed per-leaf pass rates, if this query runs
    /// inside a session: audited invokers feed it with every fresh
    /// answer, and the expression optimizer reads it to reorder
    /// `AND`/`OR` siblings. Statistics only — it never changes answers.
    pub selectivity: Option<&'a SelectivityTracker>,
}

impl<'a> ExecContext<'a> {
    /// A context running on `executor`, cache-less, default batching.
    pub fn new(executor: &'a dyn Executor) -> Self {
        Self {
            executor,
            cache: None,
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
            udf_latency: None,
            adaptive: None,
            derived: None,
            selectivity: None,
        }
    }

    /// The legacy behavior: sequential, cache-less, default batching.
    pub fn sequential() -> ExecContext<'static> {
        ExecContext::new(&SEQUENTIAL)
    }

    /// Attaches a cross-query cache store.
    pub fn with_cache(mut self, store: &'a CacheStore) -> Self {
        self.cache = Some(store);
        self
    }

    /// Overrides the per-batch in-flight budget (at least 1).
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight.max(1);
        self
    }

    /// Asks pipelines to add `latency` to every fresh UDF evaluation
    /// (a zero duration means no delay).
    pub fn with_udf_latency(mut self, latency: Duration) -> Self {
        self.udf_latency = (!latency.is_zero()).then_some(latency);
        self
    }

    /// Attaches a shared [`AdaptiveController`]: every planner built
    /// from this context learns from and is sized by it.
    pub fn with_adaptive(mut self, controller: &'a AdaptiveController) -> Self {
        self.adaptive = Some(controller);
        self
    }

    /// Attaches a session [`DerivedCache`]: pipelines serve group
    /// partitions and encoding dictionaries from it instead of
    /// re-deriving per query.
    pub fn with_derived(mut self, derived: &'a DerivedCache) -> Self {
        self.derived = Some(derived);
        self
    }

    /// Attaches a session [`SelectivityTracker`]: audited invokers feed
    /// observed pass rates into it, and the expression optimizer ranks
    /// `AND`/`OR` siblings by them.
    pub fn with_selectivity(mut self, tracker: &'a SelectivityTracker) -> Self {
        self.selectivity = Some(tracker);
        self
    }

    /// A batch planner honoring this context's in-flight budget (and its
    /// adaptive controller, when one is attached).
    pub fn planner(&self) -> BatchPlanner {
        let planner = BatchPlanner::with_max_in_flight(self.max_in_flight);
        match self.adaptive {
            Some(controller) => planner.adaptive(controller.clone()),
            None => planner,
        }
    }
}

impl std::fmt::Debug for ExecContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("executor", &self.executor.name())
            .field("cached", &self.cache.is_some())
            .field("max_in_flight", &self.max_in_flight)
            .field("adaptive", &self.adaptive.is_some())
            .field("derived", &self.derived.is_some())
            .field("selectivity", &self.selectivity.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_context_is_cacheless_and_default_budgeted() {
        let ctx = ExecContext::sequential();
        assert_eq!(ctx.executor.name(), "sequential");
        assert!(ctx.cache.is_none());
        assert_eq!(ctx.max_in_flight, DEFAULT_MAX_IN_FLIGHT);
        assert_eq!(ctx.planner().max_in_flight(), DEFAULT_MAX_IN_FLIGHT);
    }

    #[test]
    fn builders_compose() {
        let store = CacheStore::new();
        let derived = DerivedCache::new();
        let selectivity = SelectivityTracker::new();
        let ctx = ExecContext::new(&Sequential)
            .with_cache(&store)
            .with_derived(&derived)
            .with_selectivity(&selectivity)
            .with_max_in_flight(0);
        assert!(ctx.cache.is_some());
        assert!(ctx.derived.is_some());
        assert!(ctx.selectivity.is_some());
        assert!(ExecContext::sequential().derived.is_none());
        assert!(ExecContext::sequential().selectivity.is_none());
        assert_eq!(ctx.max_in_flight, 1, "budget clamps to >= 1");
        let copy = ctx; // Copy must hold: contexts are passed around freely.
        assert_eq!(copy.planner().max_in_flight(), 1);
        assert!(format!("{ctx:?}").contains("sequential"));
    }

    #[test]
    fn adaptive_controller_threads_into_planners() {
        let controller = AdaptiveController::with_floor(8);
        let ctx = ExecContext::new(&Sequential)
            .with_max_in_flight(512)
            .with_adaptive(&controller);
        let planner = ctx.planner();
        assert_eq!(planner.effective_in_flight(), 8, "floor before learning");
        for _ in 0..16 {
            controller.observe(1, Duration::from_millis(1));
        }
        assert_eq!(
            ctx.planner().effective_in_flight(),
            512,
            "ms-probes deepen to the budget"
        );
        assert!(ExecContext::sequential().adaptive.is_none());
    }
}
