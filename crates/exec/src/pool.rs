//! [`WorkerPool`]: a persistent, work-stealing [`Executor`] backend.
//!
//! [`crate::Parallel`] spawns fresh scoped threads on **every**
//! `evaluate_batch` call and splits the batch into fixed contiguous
//! chunks. That shape has two costs the paper's workloads actually pay:
//!
//! * a pipeline draining many small-to-medium correlation-group batches
//!   pays thread-spawn latency (tens of µs per thread) *per batch* — so
//!   `Parallel` protects itself with a `min_batch` floor and runs small
//!   batches inline, forfeiting parallelism exactly where a 100µs UDF
//!   would profit from it;
//! * one fixed chunk per worker straggles on variable-latency probes: the
//!   batch is as slow as its unluckiest chunk.
//!
//! The pool fixes both. N workers are spawned once and park on a condvar;
//! a batch is published as one shared job with an **atomic chunk cursor**
//! from which workers (and the calling thread — it always participates)
//! *steal* variable-size chunks: guided self-scheduling, `remaining /
//! (2·workers)` rows at a time, large chunks first shrinking toward the
//! tail, so fast workers absorb stragglers' leftovers. Every answer lands
//! at its input index in the output buffer, so results are in input order
//! no matter which worker computed what — the crate-level determinism
//! contract comes from *where* answers land, never from *when*.
//!
//! The pool also keeps a per-probe latency estimate (an embedded
//! [`AdaptiveController`] — the same estimator the batch planner uses):
//! batches whose *estimated total work* is below the dispatch cost run
//! inline on the caller instead of waking workers. Unlike `Parallel`'s
//! fixed row-count floor this is latency-aware — eight 100µs probes fan
//! out (they carry 800µs of work), eight 1µs probes run inline (waking
//! workers costs more than the 8µs of work). The inline path hedges
//! against a stale estimate: if a supposedly-cheap batch overruns a
//! small time budget (a new, slower UDF arrived on a warmed-up pool),
//! the remainder fans out mid-batch.
//!
//! Concurrent callers — a `Sync` engine serves many threads through one
//! pool — publish into a small FIFO job queue, and idle workers always
//! take the *oldest* job with unclaimed rows, so a later batch can never
//! starve an earlier one down to single-threaded execution.
//!
//! # Panic safety
//!
//! A panicking probe must not poison or deadlock a long-lived pool.
//! Workers catch the unwind per chunk, mark the job panicked, and keep
//! claiming (without evaluating) so the job still completes; the caller
//! re-raises the panic only after every worker is provably done touching
//! the job's buffers. The pool remains fully usable afterwards.

use crate::adaptive::AdaptiveController;
use crate::executor::{BatchProbe, Executor};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Estimated fixed cost (ns) of publishing a job and waking the pool;
/// batches with less estimated total probe work than this run inline.
const DISPATCH_COST_NS: f64 = 30_000.0;

/// How long the inline fast path may run before it concedes its latency
/// estimate was stale and fans the remaining rows out (a few dispatch
/// costs: cheap enough to never matter when the estimate was right,
/// tight enough to cap the damage when it was not).
const INLINE_BUDGET: Duration = Duration::from_micros(120);

/// One published batch: everything a worker needs to steal and fill
/// chunks, plus completion/panic bookkeeping.
///
/// The probe/rows/answers pointers borrow from the `evaluate_batch` call
/// frame with their lifetimes erased — see the safety argument on
/// [`WorkerPool::evaluate_batch`].
struct Job {
    /// The probe, lifetime-erased. Only dereferenced for claimed rows.
    probe: *const dyn BatchProbe,
    /// The input rows, lifetime-erased.
    rows: *const usize,
    /// The output buffer, disjointly written by chunk index.
    answers: *mut bool,
    len: usize,
    /// Next unclaimed row index; claims advance it atomically.
    cursor: AtomicUsize,
    /// Rows whose slots are finalized (evaluated, or skipped post-panic).
    completed: AtomicUsize,
    /// Sticky flag: some chunk's probe panicked.
    panicked: AtomicBool,
    /// Total ns spent inside probe calls (summed across workers).
    work_ns: AtomicU64,
    /// Participant count used for guided chunk sizing.
    stealers: usize,
    /// Completion signal: the final chunk's worker notifies the caller.
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: the raw pointers are only dereferenced by workers holding a
// claimed chunk, and `evaluate_batch` does not return (or unwind) until
// `completed == len`, i.e. until no worker will dereference them again.
// `BatchProbe: Sync` makes the shared `&dyn BatchProbe` usable from any
// thread; `rows` is only read; `answers` writes are disjoint by index.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims the next chunk: guided self-scheduling, `remaining /
    /// (2·stealers)` rows (at least 1), so early chunks are large and the
    /// tail degrades to single rows that fast workers mop up.
    fn claim(&self) -> Option<(usize, usize)> {
        loop {
            let start = self.cursor.load(Ordering::Relaxed);
            if start >= self.len {
                return None;
            }
            let remaining = self.len - start;
            let chunk = (remaining / (2 * self.stealers)).clamp(1, remaining);
            if self
                .cursor
                .compare_exchange_weak(start, start + chunk, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some((start, chunk));
            }
        }
    }

    /// Steals and evaluates chunks until the cursor is exhausted.
    fn run(&self) {
        while let Some((start, chunk)) = self.claim() {
            if !self.panicked.load(Ordering::Relaxed) {
                let began = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    for i in start..start + chunk {
                        // SAFETY: `i < len`, this chunk is exclusively
                        // ours, and the buffers outlive the job (see the
                        // `Send`/`Sync` impl and `evaluate_batch`).
                        unsafe {
                            let row = *self.rows.add(i);
                            *self.answers.add(i) = (*self.probe).probe(row);
                        }
                    }
                }));
                self.work_ns
                    .fetch_add(began.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if outcome.is_err() {
                    self.panicked.store(true, Ordering::Release);
                }
            }
            // Count the chunk complete even after a panic: completion is
            // what lets the caller stop waiting, and a panicked job's
            // answers are never returned anyway.
            let done = self.completed.fetch_add(chunk, Ordering::AcqRel) + chunk;
            if done >= self.len {
                let mut finished = self.done.lock().unwrap_or_else(|e| e.into_inner());
                *finished = true;
                self.done_cv.notify_all();
            }
        }
    }

    /// Blocks until every row's slot is finalized.
    fn wait(&self) {
        let mut finished = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*finished {
            finished = self
                .done_cv
                .wait(finished)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The pool's publication queue: workers park here between jobs.
struct PoolShared {
    state: Mutex<PoolState>,
    work_available: Condvar,
    /// Shared per-probe latency estimator driving the inline fast path
    /// (the same EWMA type planners use for window sizing).
    latency: AdaptiveController,
}

struct PoolState {
    /// Published jobs in FIFO order. Each caller pushes its job, steals
    /// alongside the workers, and removes the job once complete; workers
    /// serve the *oldest* job with unclaimed rows first, so concurrent
    /// callers share the pool fairly instead of the newest publication
    /// starving the rest.
    jobs: Vec<Arc<Job>>,
    shutdown: bool,
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut guard = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if guard.shutdown {
                    return;
                }
                // Oldest-first: FIFO fairness across concurrent callers.
                if let Some(job) = guard
                    .jobs
                    .iter()
                    .find(|job| job.cursor.load(Ordering::Relaxed) < job.len)
                {
                    break Arc::clone(job);
                }
                guard = shared
                    .work_available
                    .wait(guard)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        job.run();
    }
}

/// A persistent work-stealing executor: N long-lived workers, batches
/// published as shared jobs, chunks claimed off an atomic cursor.
///
/// See the module docs for the full design; the short version: no
/// per-batch thread spawns, straggler-proof chunking, deterministic
/// answer placement, latency-aware inline fast path, panic-safe.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// A pool sized to the machine (`std::thread::available_parallelism`).
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// A pool with exactly `threads` persistent workers (at least 1).
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: Vec::new(),
                shutdown: false,
            }),
            work_available: Condvar::new(),
            latency: AdaptiveController::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("expred-pool-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawning pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// The number of persistent workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The pool's current per-probe latency estimate, if it has executed
    /// any batch yet. Drives the inline fast path; exposed for
    /// diagnostics and benches.
    pub fn latency_estimate(&self) -> Option<Duration> {
        self.shared.latency.latency_estimate()
    }

    /// Whether a batch of `len` probes should skip the pool entirely:
    /// single rows always, and any batch whose estimated total work is
    /// below the dispatch cost. An unknown latency (first ever batch)
    /// fans out — misjudging one tiny batch costs microseconds, while
    /// running a first 4096×1ms batch inline would cost seconds.
    fn should_inline(&self, len: usize) -> bool {
        if len <= 1 {
            return true;
        }
        match self.latency_estimate() {
            None => false,
            Some(estimate) => estimate.as_nanos() as f64 * len as f64 <= DISPATCH_COST_NS,
        }
    }

    /// Runs the batch on the calling thread, still feeding the latency
    /// estimate. Hedged: the estimate that routed the batch here may be
    /// stale (learned from a *different, cheaper* UDF on this shared
    /// pool), so if the loop overruns [`INLINE_BUDGET`] the remaining
    /// rows fan out to the workers instead of serializing an arbitrarily
    /// expensive batch on the caller.
    fn evaluate_inline(&self, probe: &dyn BatchProbe, rows: &[usize]) -> Vec<bool> {
        let began = Instant::now();
        let mut answers = Vec::with_capacity(rows.len());
        for &row in rows {
            answers.push(probe.probe(row));
            // Check the clock only every 8 probes: noise on a genuinely
            // cheap batch, a bounded overrun (~8 probes) on a stale one.
            if self.threads > 1
                && answers.len() < rows.len()
                && answers.len() % 8 == 0
                && began.elapsed() > INLINE_BUDGET
            {
                self.shared.latency.observe(answers.len(), began.elapsed());
                let rest = self.fan_out(probe, &rows[answers.len()..]);
                answers.extend(rest);
                return answers;
            }
        }
        self.shared.latency.observe(rows.len(), began.elapsed());
        answers
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// Publishes `rows` as a shared job, steals chunks alongside the
    /// workers, and returns once every row's slot is finalized.
    fn fan_out(&self, probe: &dyn BatchProbe, rows: &[usize]) -> Vec<bool> {
        let mut answers = vec![false; rows.len()];
        // SAFETY: the transmute only erases the probe borrow's lifetime
        // so the pointer can live in the long-lived workers' `Arc<Job>`.
        // The job is done before this frame's borrows end: `wait()`
        // returns only once `completed == len`, after which no worker
        // dereferences the pointers again (the cursor is exhausted, so
        // every future `claim` fails), and panics are re-raised only
        // after that same barrier.
        let probe_erased: *const (dyn BatchProbe + 'static) = {
            let raw: *const (dyn BatchProbe + '_) = probe;
            unsafe { std::mem::transmute(raw) }
        };
        let job = Arc::new(Job {
            probe: probe_erased,
            rows: rows.as_ptr(),
            answers: answers.as_mut_ptr(),
            len: rows.len(),
            cursor: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            work_ns: AtomicU64::new(0),
            stealers: self.threads + 1,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let mut guard = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            guard.jobs.push(Arc::clone(&job));
        }
        self.shared.work_available.notify_all();
        // The caller is a stealer too: small batches often finish right
        // here before a parked worker even wakes.
        job.run();
        job.wait();
        // Retire the completed job from the queue.
        {
            let mut guard = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            guard.jobs.retain(|j| !Arc::ptr_eq(j, &job));
        }
        self.shared.latency.observe(
            rows.len(),
            Duration::from_nanos(job.work_ns.load(Ordering::Relaxed)),
        );
        if job.panicked.load(Ordering::Acquire) {
            panic!("WorkerPool: probe panicked while evaluating a batch");
        }
        answers
    }
}

impl Executor for WorkerPool {
    fn evaluate_batch(&self, probe: &dyn BatchProbe, rows: &[usize]) -> Vec<bool> {
        if rows.is_empty() {
            return Vec::new();
        }
        if self.threads == 1 || self.should_inline(rows.len()) {
            self.evaluate_inline(probe, rows)
        } else {
            self.fan_out(probe, rows)
        }
    }

    fn name(&self) -> &str {
        "worker_pool"
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut guard = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            guard.shutdown = true;
        }
        self.shared.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sequential;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn matches_sequential_exactly() {
        let probe = |row: usize| (row * 2654435761) % 7 < 3;
        let rows: Vec<usize> = (0..1000).rev().collect();
        for threads in [1, 2, 3, 8] {
            let pool = WorkerPool::with_threads(threads);
            for _ in 0..3 {
                assert_eq!(
                    pool.evaluate_batch(&probe, &rows),
                    Sequential.evaluate_batch(&probe, &rows),
                    "threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn each_row_probed_exactly_once_per_batch() {
        let calls = AtomicUsize::new(0);
        let probe = |_row: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            true
        };
        let rows: Vec<usize> = (0..257).collect();
        let pool = WorkerPool::with_threads(4);
        pool.evaluate_batch(&probe, &rows);
        assert_eq!(calls.load(Ordering::Relaxed), rows.len());
        pool.evaluate_batch(&probe, &rows);
        assert_eq!(calls.load(Ordering::Relaxed), 2 * rows.len());
    }

    #[test]
    fn empty_and_degenerate_batches() {
        let probe = |row: usize| row == 9;
        let pool = WorkerPool::new();
        assert!(pool.evaluate_batch(&probe, &[]).is_empty());
        assert_eq!(pool.evaluate_batch(&probe, &[9]), vec![true]);
        assert_eq!(pool.evaluate_batch(&probe, &[3]), vec![false]);
    }

    #[test]
    fn sleepy_probes_overlap_without_respawning_threads() {
        let probe = |_row: usize| {
            std::thread::sleep(Duration::from_millis(10));
            true
        };
        let rows: Vec<usize> = (0..8).collect();
        let pool = WorkerPool::with_threads(8);
        // Several consecutive batches: a scoped-spawn backend pays spawn
        // latency every round; the pool parks and rewakes the same
        // threads. 8 probes × 10ms over ≥8 stealers ≈ 10ms per round.
        for _ in 0..3 {
            let start = Instant::now();
            pool.evaluate_batch(&probe, &rows);
            assert!(
                start.elapsed() < Duration::from_millis(60),
                "no overlap: {:?}",
                start.elapsed()
            );
        }
    }

    #[test]
    fn cheap_batches_learn_to_run_inline() {
        let pool = WorkerPool::with_threads(4);
        let probe = |row: usize| row.is_multiple_of(2);
        let rows: Vec<usize> = (0..64).collect();
        for _ in 0..8 {
            pool.evaluate_batch(&probe, &rows);
        }
        let estimate = pool.latency_estimate().expect("estimate after batches");
        assert!(
            estimate < Duration::from_micros(10),
            "trivial probes should estimate cheap, got {estimate:?}"
        );
        assert!(
            pool.should_inline(rows.len()),
            "64 trivial probes should run inline once the pool knows them"
        );
        // Correctness is unaffected either way.
        assert_eq!(
            pool.evaluate_batch(&probe, &rows),
            Sequential.evaluate_batch(&probe, &rows)
        );
    }

    #[test]
    fn stale_cheap_estimate_does_not_serialize_an_expensive_batch() {
        let pool = WorkerPool::with_threads(8);
        let cheap = |row: usize| row.is_multiple_of(2);
        let rows: Vec<usize> = (0..64).collect();
        for _ in 0..8 {
            pool.evaluate_batch(&cheap, &rows);
        }
        assert!(
            pool.should_inline(rows.len()),
            "the pool should have learned these probes are cheap"
        );
        // Same pool, new regime: 5ms sleeping probes. The stale estimate
        // routes the batch inline, where the hedge must notice the
        // overrun and fan the tail out — 64 probes serially would be
        // 320ms; hedged, the first 8 run inline (~40ms) and the rest
        // overlap across the workers.
        let slow = |_row: usize| {
            std::thread::sleep(Duration::from_millis(5));
            true
        };
        let start = Instant::now();
        let answers = pool.evaluate_batch(&slow, &rows);
        assert_eq!(answers, vec![true; 64]);
        assert!(
            start.elapsed() < Duration::from_millis(220),
            "inline hedge failed to fan out: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn panicking_probe_does_not_deadlock_or_poison_the_pool() {
        let pool = WorkerPool::with_threads(4);
        let rows: Vec<usize> = (0..512).collect();
        let bomb = |row: usize| {
            if row == 300 {
                panic!("boom");
            }
            true
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| pool.evaluate_batch(&bomb, &rows)));
        assert!(outcome.is_err(), "the panic must propagate to the caller");
        // The pool stays fully serviceable afterwards.
        let probe = |row: usize| row.is_multiple_of(3);
        assert_eq!(
            pool.evaluate_batch(&probe, &rows),
            Sequential.evaluate_batch(&probe, &rows)
        );
    }

    #[test]
    fn concurrent_callers_share_one_pool() {
        let pool = WorkerPool::with_threads(4);
        let probe = |row: usize| row.is_multiple_of(5);
        std::thread::scope(|scope| {
            for offset in 0..8usize {
                let pool = &pool;
                scope.spawn(move || {
                    let rows: Vec<usize> = (offset * 100..offset * 100 + 400).collect();
                    let want = Sequential.evaluate_batch(&probe, &rows);
                    for _ in 0..5 {
                        assert_eq!(pool.evaluate_batch(&probe, &rows), want);
                    }
                });
            }
        });
    }

    #[test]
    fn name_and_threads_report() {
        let pool = WorkerPool::with_threads(0);
        assert_eq!(pool.threads(), 1, "thread count clamps to >= 1");
        assert_eq!(pool.name(), "worker_pool");
    }
}
