//! [`BatchPlanner`]: accumulate pending probes per correlation group,
//! drain them through an [`Executor`] under an in-flight budget.
//!
//! The probabilistic executor decides *which* rows to evaluate while
//! walking groups in order; the planner decouples that decision from the
//! evaluation itself. Queued probes are drained group-by-group (tuples of
//! one correlation group tend to touch the same columns and caches), in
//! slices of at most `max_in_flight` rows, so a plan that wants a million
//! evaluations never materializes a million concurrent probes.
//!
//! With an [`AdaptiveController`] attached ([`BatchPlanner::adaptive`]),
//! the *effective* slice size floats between the controller's floor and
//! `max_in_flight`, steered by an EWMA of the per-probe latency each
//! drained slice observes — tiny slices for µs-probes (nothing to
//! amortize, less materialized at once), deep slices for ms-probes (keep
//! a worker pool saturated through the straggler tail). Slicing is
//! invisible to answers and bills: output order and invoker accounting
//! are slice-invariant, which the equivalence suite pins bit for bit.

use crate::adaptive::AdaptiveController;
use crate::executor::{BatchProbe, Executor};
use std::time::Instant;

/// Default cap on rows handed to one `evaluate_batch` call.
pub const DEFAULT_MAX_IN_FLIGHT: usize = 4096;

/// One drained probe: which group and row it belonged to and the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupedAnswer {
    /// The correlation group the row was queued under.
    pub group: usize,
    /// The evaluated row id.
    pub row: usize,
    /// The predicate's answer.
    pub answer: bool,
}

/// A queue of `(group, row)` probes awaiting evaluation.
#[derive(Debug, Clone, Default)]
pub struct BatchPlanner {
    max_in_flight: usize,
    pending: Vec<(usize, usize)>,
    adaptive: Option<AdaptiveController>,
}

impl BatchPlanner {
    /// A planner with the default in-flight budget.
    pub fn new() -> Self {
        Self::with_max_in_flight(DEFAULT_MAX_IN_FLIGHT)
    }

    /// A planner dispatching at most `max_in_flight` rows per batch
    /// (at least 1).
    pub fn with_max_in_flight(max_in_flight: usize) -> Self {
        Self {
            max_in_flight: max_in_flight.max(1),
            pending: Vec::new(),
            adaptive: None,
        }
    }

    /// Attaches a shared latency model: drained slices feed its EWMA and
    /// the effective slice size becomes [`AdaptiveController::window`]
    /// (still capped by this planner's `max_in_flight`).
    pub fn adaptive(mut self, controller: AdaptiveController) -> Self {
        self.adaptive = Some(controller);
        self
    }

    /// The slice size the next drained batch will use: the adaptive
    /// window when a controller is attached, `max_in_flight` otherwise.
    pub fn effective_in_flight(&self) -> usize {
        match &self.adaptive {
            Some(controller) => controller.window(self.max_in_flight),
            None => self.max_in_flight,
        }
    }

    /// Queues `row` of `group` for evaluation.
    pub fn enqueue(&mut self, group: usize, row: usize) {
        self.pending.push((group, row));
    }

    /// Number of queued, not-yet-drained probes.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The configured per-batch budget.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// Evaluates everything queued, ordered by correlation group, in
    /// batches of at most `max_in_flight` rows (a batch may span a
    /// group boundary when a group's tail does not fill the budget).
    ///
    /// Answers come back ordered by group (ascending), preserving enqueue
    /// order within each group — a deterministic order independent of the
    /// executor backend. The queue is left empty.
    pub fn drain(&mut self, probe: &dyn BatchProbe, executor: &dyn Executor) -> Vec<GroupedAnswer> {
        self.drain_with(&mut |rows| executor.evaluate_batch(probe, rows))
    }

    /// Like [`BatchPlanner::drain`], but each batch goes through an
    /// arbitrary evaluation callback (e.g. an audited invoker that
    /// memoizes and charges costs before delegating to an executor).
    ///
    /// The callback receives at most `max_in_flight` rows per call and
    /// must return one answer per row, in order.
    pub fn drain_with(
        &mut self,
        evaluate: &mut dyn FnMut(&[usize]) -> Vec<bool>,
    ) -> Vec<GroupedAnswer> {
        let mut pending = std::mem::take(&mut self.pending);
        // Stable: enqueue order survives within a group.
        pending.sort_by_key(|&(group, _)| group);
        let mut out = Vec::with_capacity(pending.len());
        let mut index = 0;
        while index < pending.len() {
            // Re-read per slice: within one long drain the window deepens
            // as the controller learns the probes are expensive.
            let window = self.effective_in_flight().max(1);
            let slice = &pending[index..(index + window).min(pending.len())];
            index += slice.len();
            let rows: Vec<usize> = slice.iter().map(|&(_, row)| row).collect();
            let began = Instant::now();
            let answers = evaluate(&rows);
            if let Some(controller) = &self.adaptive {
                controller.observe(rows.len(), began.elapsed());
            }
            assert_eq!(
                answers.len(),
                rows.len(),
                "batch evaluation must answer every row"
            );
            out.extend(
                slice
                    .iter()
                    .zip(answers)
                    .map(|(&(group, row), answer)| GroupedAnswer { group, row, answer }),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sequential;
    use crate::parallel::Parallel;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn drains_grouped_and_in_enqueue_order() {
        let mut planner = BatchPlanner::new();
        planner.enqueue(2, 20);
        planner.enqueue(0, 1);
        planner.enqueue(2, 21);
        planner.enqueue(1, 10);
        planner.enqueue(0, 3);
        assert_eq!(planner.pending(), 5);
        let probe = |row: usize| row % 2 == 1;
        let answers = planner.drain(&probe, &Sequential);
        assert_eq!(planner.pending(), 0);
        let order: Vec<(usize, usize)> = answers.iter().map(|a| (a.group, a.row)).collect();
        assert_eq!(order, vec![(0, 1), (0, 3), (1, 10), (2, 20), (2, 21)]);
        for a in &answers {
            assert_eq!(a.answer, a.row % 2 == 1);
        }
    }

    #[test]
    fn budget_splits_batches() {
        let mut planner = BatchPlanner::with_max_in_flight(3);
        for row in 0..10 {
            planner.enqueue(0, row);
        }
        let largest = AtomicUsize::new(0);
        struct Spy<'a> {
            largest: &'a AtomicUsize,
        }
        impl Executor for Spy<'_> {
            fn evaluate_batch(&self, probe: &dyn BatchProbe, rows: &[usize]) -> Vec<bool> {
                self.largest.fetch_max(rows.len(), Ordering::Relaxed);
                Sequential.evaluate_batch(probe, rows)
            }
        }
        let probe = |row: usize| row < 5;
        let answers = planner.drain(&probe, &Spy { largest: &largest });
        assert_eq!(answers.len(), 10);
        assert!(largest.load(Ordering::Relaxed) <= 3);
        assert_eq!(answers.iter().filter(|a| a.answer).count(), 5);
    }

    #[test]
    fn backends_agree_through_the_planner() {
        let probe = |row: usize| (row / 3).is_multiple_of(2);
        let fill = |planner: &mut BatchPlanner| {
            for i in 0..200 {
                planner.enqueue(i % 7, 1000 - i);
            }
        };
        let mut a = BatchPlanner::with_max_in_flight(17);
        fill(&mut a);
        let mut b = BatchPlanner::with_max_in_flight(17);
        fill(&mut b);
        assert_eq!(
            a.drain(&probe, &Sequential),
            b.drain(&probe, &Parallel::with_threads(4))
        );
    }

    #[test]
    fn empty_drain_is_empty() {
        let mut planner = BatchPlanner::new();
        let probe = |_row: usize| true;
        assert!(planner.drain(&probe, &Sequential).is_empty());
    }

    #[test]
    fn adaptive_drain_matches_fixed_budget_drain_exactly() {
        let probe = |row: usize| row.is_multiple_of(3);
        let fill = |planner: &mut BatchPlanner| {
            for i in 0..500 {
                planner.enqueue(i % 11, 7 * i + 1);
            }
        };
        let mut fixed = BatchPlanner::with_max_in_flight(64);
        fill(&mut fixed);
        let controller = crate::AdaptiveController::with_floor(3);
        let mut adaptive = BatchPlanner::with_max_in_flight(64).adaptive(controller.clone());
        fill(&mut adaptive);
        assert_eq!(
            fixed.drain(&probe, &Sequential),
            adaptive.drain(&probe, &Sequential),
            "slicing must never leak into answers"
        );
        assert!(
            controller.latency_estimate().is_some(),
            "the drain must feed the controller"
        );
    }

    #[test]
    fn adaptive_window_starts_at_floor_and_respects_ceiling() {
        let controller = crate::AdaptiveController::with_floor(16);
        let planner = BatchPlanner::with_max_in_flight(256).adaptive(controller.clone());
        assert_eq!(planner.effective_in_flight(), 16);
        // Teach the controller the probes are slow: window deepens.
        for _ in 0..16 {
            controller.observe(1, std::time::Duration::from_millis(2));
        }
        assert_eq!(planner.effective_in_flight(), 256, "capped by the budget");
        let plain = BatchPlanner::with_max_in_flight(256);
        assert_eq!(plain.effective_in_flight(), 256);
    }
}
