//! Stress tests for `CacheStore` version retention under concurrency.
//!
//! The store keeps the [`MAX_LIVE_VERSIONS`] most recently borrowed
//! versions of each `(udf, table)` pair so diverged table clones can be
//! queried alternately without thrashing each other's namespaces. These
//! tests drive that window with real thread interleavings:
//!
//! * two clones diverging concurrently never observe each other's
//!   answers and never trigger a single invalidation;
//! * a churn of many versions stays bounded by the window, and once the
//!   churn quiesces, alternating the surviving versions is free again.

use expred_exec::{CacheNamespace, CacheStore, MAX_LIVE_VERSIONS};

fn ns(version: u64) -> CacheNamespace {
    CacheNamespace {
        udf: 1,
        table: 5,
        version,
    }
}

const THREADS: usize = 8;
const KEYS: usize = 2_000;

#[test]
fn diverged_clones_never_observe_each_other_and_never_thrash() {
    let store = CacheStore::new();
    // Two live versions of one (udf, table) pair — diverged clones. Each
    // version's answers encode the version, so any cross-serve is loud.
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let store = &store;
            let version = 10 + (worker % 2) as u64;
            scope.spawn(move || {
                let expected = version == 10;
                for key in 0..KEYS {
                    // Re-borrow regularly: the borrow path (and its
                    // recency upkeep) is exactly what is under test.
                    let handle = store.handle(ns(version));
                    handle.insert(key, expected);
                    assert_eq!(
                        handle.get(key),
                        Some(expected),
                        "version {version} read another clone's answer for {key}"
                    );
                }
            });
        }
    });
    assert_eq!(
        store.stats().invalidated,
        0,
        "two alternating clones must never GC each other"
    );
    assert_eq!(store.num_namespaces(), 2);
    // Quiescent cross-check over the full key space.
    let v10 = store.handle(ns(10));
    let v11 = store.handle(ns(11));
    for key in 0..KEYS {
        assert_eq!(v10.get(key), Some(true));
        assert_eq!(v11.get(key), Some(false));
    }
}

#[test]
fn version_churn_stays_inside_the_retention_window() {
    let store = CacheStore::new();
    // Many threads race borrows across many distinct versions — a table
    // mutating rapidly while clones are still being queried.
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let store = &store;
            scope.spawn(move || {
                for round in 0..500u64 {
                    let version = (worker as u64 + round) % 20;
                    let handle = store.handle(ns(version));
                    handle.insert(round as usize, true);
                    // A handle's own view survives even if its namespace
                    // is concurrently GCed out of the window.
                    assert_eq!(handle.get(round as usize), Some(true));
                }
            });
        }
    });
    assert!(
        store.num_namespaces() <= MAX_LIVE_VERSIONS,
        "churn left {} namespaces live (window is {})",
        store.num_namespaces(),
        MAX_LIVE_VERSIONS
    );
    assert!(store.stats().invalidated > 0, "churn must have GCed");

    // Once the churn quiesces, settle on two versions; alternating them
    // heavily — from many threads — must not cost another invalidation.
    store.handle(ns(100)).insert(1, true);
    store.handle(ns(101)).insert(2, false);
    let invalidated_before = store.stats().invalidated;
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let store = &store;
            scope.spawn(move || {
                for _ in 0..500 {
                    let a = store.handle(ns(100 + (worker % 2) as u64));
                    let b = store.handle(ns(100 + ((worker + 1) % 2) as u64));
                    assert_eq!(a.namespace().table, b.namespace().table);
                }
            });
        }
    });
    assert_eq!(
        store.stats().invalidated,
        invalidated_before,
        "alternating the two live versions must be free"
    );
    assert_eq!(store.handle(ns(100)).get(1), Some(true));
    assert_eq!(store.handle(ns(101)).get(2), Some(false));
}

#[test]
fn stale_version_starts_empty_for_new_borrowers_after_gc() {
    let store = CacheStore::new();
    store.handle(ns(0)).insert(7, true);
    // Push version 0 out of the window…
    store.handle(ns(1));
    store.handle(ns(2));
    // …then re-borrowing it must yield a fresh namespace, never the old
    // answers (zero-stale guarantee even across the GC boundary).
    assert_eq!(store.handle(ns(0)).get(7), None);
}
