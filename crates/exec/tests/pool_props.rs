//! Property tests for the [`WorkerPool`] executor contract.
//!
//! For *arbitrary* row sets — duplicate-heavy, unsorted, tiny or large —
//! and every interesting worker count, the pool must be answer-identical
//! to [`Sequential`], batch after batch on one long-lived pool (the
//! inline fast path, the fan-out path, and the transitions between them
//! as the latency EWMA settles are all exercised by the same stream).
//! A panicking probe must propagate to the caller without wedging or
//! poisoning the pool for subsequent batches.

use expred_exec::{Executor, Sequential, WorkerPool};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A stream of batches over a small row universe: duplicates within and
/// across batches are the norm, batch sizes span empty to medium.
fn batches() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..200, 0..120), 1..12)
}

fn machine_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pool_is_answer_identical_to_sequential(stream in batches()) {
        let probe = |row: usize| (row.wrapping_mul(2654435761) >> 3) % 5 < 2;
        for threads in [1, 2, machine_threads()] {
            let pool = WorkerPool::with_threads(threads);
            for (i, batch) in stream.iter().enumerate() {
                prop_assert_eq!(
                    pool.evaluate_batch(&probe, batch),
                    Sequential.evaluate_batch(&probe, batch),
                    "batch {} diverged at {} threads", i, threads
                );
            }
        }
    }

    #[test]
    fn duplicate_heavy_batches_probe_every_slot(stream in batches()) {
        // The executor contract is exactly-once *per slot*, duplicates
        // included — deduplication is the invoker's business, never the
        // backend's.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let probe = |row: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            row.is_multiple_of(2)
        };
        let pool = WorkerPool::with_threads(2);
        let mut expected = 0usize;
        for batch in &stream {
            pool.evaluate_batch(&probe, batch);
            expected += batch.len();
        }
        prop_assert_eq!(calls.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn panicking_probe_never_wedges_the_pool(
        batch in prop::collection::vec(0usize..100, 2..200),
        bomb_row in 0usize..100,
    ) {
        let pool = WorkerPool::with_threads(machine_threads().min(4));
        let bomb = |row: usize| {
            if row == bomb_row {
                panic!("bomb at {row}");
            }
            row.is_multiple_of(3)
        };
        let has_bomb = batch.contains(&bomb_row);
        let outcome = catch_unwind(AssertUnwindSafe(|| pool.evaluate_batch(&bomb, &batch)));
        prop_assert_eq!(
            outcome.is_err(),
            has_bomb,
            "panic must propagate exactly when the bomb row is present"
        );
        // The same pool keeps serving correct answers afterwards.
        let probe = |row: usize| row.is_multiple_of(3);
        prop_assert_eq!(
            pool.evaluate_batch(&probe, &batch),
            Sequential.evaluate_batch(&probe, &batch)
        );
    }
}
