//! The paper's machine-learning baselines, `Learning` and `Multiple`
//! (§6.2).
//!
//! Both evaluate a labelled seed, fit a semi-supervised classifier, and
//! answer with evaluated-true ∪ predicted-true tuples. Per the paper, they
//! receive an *unfair advantage*: "we choose the smallest number of tuples
//! to evaluate that lets us satisfy the precision and recall constraints"
//! — i.e. the training size is tuned against ground truth, and only the
//! winning configuration's cost is charged.
//!
//! Labelling runs through the audited [`UdfInvoker`] and the `expred-exec`
//! runtime (not a serial ground-truth loop): each grid step labels only
//! its *new* slice of the shuffled permutation as one executor batch, so
//! the cumulative bill at the winning step is exactly that step's
//! labelling cost — and inside a session, labels paid for by earlier
//! queries arrive as free reuse hits.

use crate::pipeline::RunOutcome;
use crate::query::QuerySpec;
use expred_exec::ExecContext;
use expred_ml::features::{extract_features_cached, FeatureSpec};
use expred_ml::logistic::TrainConfig;
use expred_ml::metrics::{precision_recall, PrSummary};
use expred_ml::semisupervised::{
    learning_returned_set, multiple_imputations, self_train, SelfTrainConfig,
};
use expred_stats::rng::Prng;
use expred_table::datasets::{Dataset, LABEL_COLUMN};
use expred_udf::{CostModel, UdfInvoker};
use std::time::Instant;

/// Training-set sizes to probe, as fractions of the table. The grid is
/// geometric-ish: the baselines' cost is the *smallest* feasible size, so
/// resolution matters more at the low end.
const SIZE_GRID: [f64; 12] = [
    0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.18, 0.27, 0.40, 0.60, 0.80, 1.0,
];

/// Cheaper training settings for the repeated grid probes.
fn baseline_train_config() -> SelfTrainConfig {
    SelfTrainConfig {
        rounds: 2,
        confidence: 0.92,
        train: TrainConfig {
            epochs: 80,
            learning_rate: 1.0,
            l2: 1e-4,
            tolerance: 1e-6,
        },
    }
}

fn outcome_from(
    returned: Vec<usize>,
    labelled: &[usize],
    summary: PrSummary,
    cost_model: &CostModel,
    invoker: &UdfInvoker<'_>,
    start: Instant,
    feasible: bool,
) -> RunOutcome {
    // Every returned-but-unevaluated row still has to be retrieved; the
    // evaluated seed was retrieved once already (charged by the labelling
    // batches).
    let seed: std::collections::HashSet<usize> = labelled.iter().copied().collect();
    let fresh_returns = returned.iter().filter(|r| !seed.contains(r)).count();
    invoker.charge_retrievals(fresh_returns as u64);
    let counts = invoker.counts();
    RunOutcome {
        returned: returned.into_iter().map(|r| r as u32).collect(),
        counts,
        cost: counts.cost(cost_model),
        summary,
        num_groups: 1,
        compute_seconds: start.elapsed().as_secs_f64(),
        plan_feasible: feasible,
    }
}

/// Labels the permutation prefix `perm[..m]` through the runtime,
/// extending past steps' coverage (`labelled_so_far`) with one batch, and
/// returns the prefix's labels read back from the invoker's memo.
fn label_prefix(
    invoker: &UdfInvoker<'_>,
    perm: &[usize],
    m: usize,
    labelled_so_far: &mut usize,
    ctx: &ExecContext<'_>,
) -> Vec<bool> {
    if m > *labelled_so_far {
        invoker.retrieve_and_evaluate_batch(ctx.executor, &perm[*labelled_so_far..m]);
        *labelled_so_far = m;
    }
    perm[..m]
        .iter()
        .map(|&r| {
            invoker
                .memoized(r)
                .expect("labelled rows must be evaluated")
        })
        .collect()
}

/// The `Learning` baseline: self-training semi-supervised classification
/// with oracle-tuned minimal training size.
pub fn run_learning(ds: &Dataset, spec: &QuerySpec, seed: u64) -> RunOutcome {
    run_learning_ctx(ds, spec, seed, &ExecContext::sequential())
}

/// [`run_learning`] under an execution context: training labels are
/// evaluated through `ctx.executor` (and reused from the session cache,
/// when present).
pub fn run_learning_ctx(
    ds: &Dataset,
    spec: &QuerySpec,
    seed: u64,
    ctx: &ExecContext<'_>,
) -> RunOutcome {
    let start = Instant::now();
    let table = &ds.table;
    let truth = crate::execute::truth_vector(table, LABEL_COLUMN);
    let features = extract_features_cached(
        table,
        &[LABEL_COLUMN, "row_id"],
        FeatureSpec::default(),
        ctx.derived,
    );
    let n = table.num_rows();
    let udf = crate::pipeline::label_udf(ctx);
    let invoker = UdfInvoker::with_context(udf.as_ref(), table, ctx);
    let mut rng = Prng::seeded(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut perm);
    let cfg = baseline_train_config();
    let mut labelled_so_far = 0usize;

    let mut last: Option<(Vec<usize>, usize, PrSummary)> = None;
    for frac in SIZE_GRID {
        let m = ((frac * n as f64).ceil() as usize).clamp(1, n);
        let labels = label_prefix(&invoker, &perm, m, &mut labelled_so_far, ctx);
        let labelled = &perm[..m];
        let outcome = self_train(&features, labelled, &labels, cfg);
        let returned = learning_returned_set(&outcome, labelled, &labels);
        let summary = precision_recall(&returned, &truth);
        let meets = summary.meets(spec.alpha, spec.beta);
        if meets {
            return outcome_from(
                returned, labelled, summary, &spec.cost, &invoker, start, true,
            );
        }
        last = Some((returned, m, summary));
    }
    // Even full evaluation of the grid's maximum failed (possible only for
    // extreme constraints); report the last attempt, flagged infeasible.
    let (returned, m, summary) = last.expect("grid is nonempty");
    outcome_from(
        returned,
        &perm[..m],
        summary,
        &spec.cost,
        &invoker,
        start,
        false,
    )
}

/// The `Multiple` baseline: multiple imputations from class probabilities;
/// the training size is the smallest whose constraints hold *on average
/// across the imputed datasets* (§6.2).
pub fn run_multiple(ds: &Dataset, spec: &QuerySpec, imputations: usize, seed: u64) -> RunOutcome {
    run_multiple_ctx(ds, spec, imputations, seed, &ExecContext::sequential())
}

/// [`run_multiple`] under an execution context (labelling as in
/// [`run_learning_ctx`]).
pub fn run_multiple_ctx(
    ds: &Dataset,
    spec: &QuerySpec,
    imputations: usize,
    seed: u64,
    ctx: &ExecContext<'_>,
) -> RunOutcome {
    assert!(imputations >= 1);
    let start = Instant::now();
    let table = &ds.table;
    let truth = crate::execute::truth_vector(table, LABEL_COLUMN);
    let features = extract_features_cached(
        table,
        &[LABEL_COLUMN, "row_id"],
        FeatureSpec::default(),
        ctx.derived,
    );
    let n = table.num_rows();
    let udf = crate::pipeline::label_udf(ctx);
    let invoker = UdfInvoker::with_context(udf.as_ref(), table, ctx);
    let mut rng = Prng::seeded(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut perm);
    let cfg = baseline_train_config();
    let mut labelled_so_far = 0usize;

    let mut last: Option<(Vec<usize>, usize, PrSummary)> = None;
    for frac in SIZE_GRID {
        let m = ((frac * n as f64).ceil() as usize).clamp(1, n);
        let labels = label_prefix(&invoker, &perm, m, &mut labelled_so_far, ctx);
        let labelled = &perm[..m];
        let outcome = self_train(&features, labelled, &labels, cfg);
        // Average constraint satisfaction across imputed completions.
        let mut imp_rng = rng.fork(m as u64);
        let imps = multiple_imputations(&outcome, labelled, &labels, imputations, &mut imp_rng);
        let (mut p_acc, mut r_acc) = (0.0, 0.0);
        for imp in &imps {
            let returned: Vec<usize> = imp
                .iter()
                .enumerate()
                .filter(|(_, &keep)| keep)
                .map(|(r, _)| r)
                .collect();
            let s = precision_recall(&returned, &truth);
            p_acc += s.precision;
            r_acc += s.recall;
        }
        let mean_p = p_acc / imps.len() as f64;
        let mean_r = r_acc / imps.len() as f64;
        // The reported answer set: evaluated-true plus predicted-true.
        let returned = learning_returned_set(&outcome, labelled, &labels);
        let summary = precision_recall(&returned, &truth);
        if mean_p >= spec.alpha && mean_r >= spec.beta {
            return outcome_from(
                returned, labelled, summary, &spec.cost, &invoker, start, true,
            );
        }
        last = Some((returned, m, summary));
    }
    let (returned, m, summary) = last.expect("grid is nonempty");
    outcome_from(
        returned,
        &perm[..m],
        summary,
        &spec.cost,
        &invoker,
        start,
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use expred_table::datasets::{Dataset, DatasetSpec, PROSPER};

    fn small_prosper() -> Dataset {
        // A shrunken Prosper keeps baseline tests fast in debug builds.
        let spec = DatasetSpec {
            rows: 4_000,
            ..PROSPER
        };
        Dataset::generate(spec, 31)
    }

    #[test]
    fn learning_meets_constraints_and_reports_cost() {
        let ds = small_prosper();
        let spec = QuerySpec::paper_default();
        let out = run_learning(&ds, &spec, 1);
        assert!(out.plan_feasible, "learning should find a feasible size");
        assert!(out.summary.meets(spec.alpha, spec.beta));
        assert!(out.counts.evaluated > 0);
        assert!(out.counts.evaluated < ds.table.num_rows() as u64);
    }

    #[test]
    fn multiple_meets_constraints() {
        let ds = small_prosper();
        let spec = QuerySpec::paper_default();
        let out = run_multiple(&ds, &spec, 5, 2);
        assert!(out.plan_feasible);
        assert!(out.counts.evaluated > 0);
    }

    #[test]
    fn looser_constraints_cost_no_more() {
        let ds = small_prosper();
        let tight = QuerySpec::paper_default();
        let loose = QuerySpec::new(0.5, 0.5, 0.8, CostModel::PAPER_DEFAULT);
        let c_tight = run_learning(&ds, &tight, 3).counts.evaluated;
        let c_loose = run_learning(&ds, &loose, 3).counts.evaluated;
        assert!(c_loose <= c_tight, "loose {c_loose} vs tight {c_tight}");
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = small_prosper();
        let spec = QuerySpec::paper_default();
        let a = run_learning(&ds, &spec, 7);
        let b = run_learning(&ds, &spec, 7);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.returned, b.returned);
    }
}
