//! Finding a correlated column (paper §4.4).
//!
//! Both published methods:
//!
//! 1. **Real column ranking**: evaluate a small labelled sample (~1%),
//!    estimate per-value selectivities for every candidate column with at
//!    most `√t` distinct values (sampling more if no column qualifies),
//!    cost each candidate by running the §3.2 optimizer on the estimates,
//!    and pick the cheapest.
//! 2. **Virtual column**: train a logistic regressor on the labelled
//!    sample, score every tuple, and split the scores into equal-depth
//!    buckets; the bucket id is the correlated column (§6.3.2).

use crate::optimize::solve_perfect_selectivities;
use crate::pipeline::session_group_by;
use crate::query::QuerySpec;
use expred_exec::{ExecContext, Executor};
use expred_ml::features::{extract_features_cached, FeatureSpec};
use expred_ml::logistic::{train, TrainConfig};
use expred_stats::estimator::SelectivityEstimate;
use expred_stats::histogram::bucketize;
use expred_stats::rng::Prng;
use expred_table::{GroupBy, Table};
use expred_udf::UdfInvoker;

/// Ranked candidate column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnScore {
    /// Column name.
    pub column: String,
    /// Estimated plan cost using the sampled selectivities (lower is
    /// better); infinite when no feasible plan exists under the estimates.
    pub estimated_cost: f64,
    /// Number of distinct values observed for the column.
    pub distinct_values: usize,
}

/// Evaluates a labelled sample and ranks `candidates` by estimated plan
/// cost (method 1). Returns the ranking (best first) plus the labelled
/// rows, which callers re-use for selectivity estimation and output.
///
/// `label_fraction` is the initial sample size as a fraction of the table
/// (the paper uses 1%); if no candidate has ≤ √t distinct values the
/// sample is doubled, up to `max_rounds` times.
pub fn rank_columns(
    table: &Table,
    candidates: &[String],
    invoker: &UdfInvoker<'_>,
    spec: &QuerySpec,
    label_fraction: f64,
    rng: &mut Prng,
) -> (Vec<ColumnScore>, Vec<u32>) {
    rank_columns_ctx(
        table,
        candidates,
        invoker,
        spec,
        label_fraction,
        rng,
        &ExecContext::sequential(),
    )
}

/// [`rank_columns`], labelling each round's sample as one executor batch.
#[allow(clippy::too_many_arguments)]
pub fn rank_columns_with(
    table: &Table,
    candidates: &[String],
    invoker: &UdfInvoker<'_>,
    spec: &QuerySpec,
    label_fraction: f64,
    rng: &mut Prng,
    executor: &dyn Executor,
) -> (Vec<ColumnScore>, Vec<u32>) {
    rank_columns_ctx(
        table,
        candidates,
        invoker,
        spec,
        label_fraction,
        rng,
        &ExecContext::new(executor),
    )
}

/// [`rank_columns`] under an execution context.
#[allow(clippy::too_many_arguments)]
pub fn rank_columns_ctx(
    table: &Table,
    candidates: &[String],
    invoker: &UdfInvoker<'_>,
    spec: &QuerySpec,
    label_fraction: f64,
    rng: &mut Prng,
    ctx: &ExecContext<'_>,
) -> (Vec<ColumnScore>, Vec<u32>) {
    assert!(!candidates.is_empty(), "need at least one candidate column");
    let n = table.num_rows();
    let max_rounds = 4;
    let mut target = ((label_fraction * n as f64).ceil() as usize).clamp(1, n);
    let mut labelled: Vec<u32> = Vec::new();

    for round in 0..max_rounds {
        // Grow the labelled sample to the current target.
        let missing = target.saturating_sub(labelled.len());
        if missing > 0 {
            let unlabelled: Vec<u32> = (0..n as u32)
                .filter(|&r| !invoker.is_evaluated(r as usize))
                .collect();
            let batch: Vec<usize> = rng
                .sample_indices(unlabelled.len(), missing)
                .into_iter()
                .map(|idx| unlabelled[idx] as usize)
                .collect();
            invoker.retrieve_and_evaluate_batch(ctx.executor, &batch);
            labelled.extend(batch.into_iter().map(|row| row as u32));
        }
        let limit = (labelled.len() as f64).sqrt().ceil() as usize;
        // Eligibility reads the memoized per-column stats: the distinct
        // count is computed once per (column, version), not re-scanned on
        // every ranking round.
        let eligible: Vec<&String> = candidates
            .iter()
            .filter(|c| {
                table
                    .column_stats(c)
                    .map(|stats| stats.distinct_count <= limit.max(2))
                    .unwrap_or(false)
            })
            .collect();
        if eligible.is_empty() && round + 1 < max_rounds {
            target = (target * 2).min(n);
            continue;
        }
        let pool = if eligible.is_empty() {
            candidates.iter().collect::<Vec<_>>()
        } else {
            eligible
        };
        let mut scores: Vec<ColumnScore> = pool
            .into_iter()
            .map(|c| score_column(table, c, invoker, spec, &labelled, ctx))
            .collect();
        scores.sort_by(|a, b| {
            a.estimated_cost
                .partial_cmp(&b.estimated_cost)
                .unwrap()
                .then(a.column.cmp(&b.column))
        });
        return (scores, labelled);
    }
    unreachable!("loop always returns by the final round");
}

/// Scores one column: group the table by it, estimate each group's
/// selectivity from the labelled rows (Beta posterior; unseen groups fall
/// back to the uniform prior), and cost the §3.2 plan on those estimates.
fn score_column(
    table: &Table,
    column: &str,
    invoker: &UdfInvoker<'_>,
    spec: &QuerySpec,
    labelled: &[u32],
    ctx: &ExecContext<'_>,
) -> ColumnScore {
    let groups = session_group_by(table, column, ctx).expect("candidate column must exist");
    let row_to_group = groups.group_of_rows();
    let mut pos = vec![0u64; groups.num_groups()];
    let mut tot = vec![0u64; groups.num_groups()];
    for &row in labelled {
        let g = row_to_group[row as usize];
        tot[g] += 1;
        if invoker.memoized(row as usize) == Some(true) {
            pos[g] += 1;
        }
    }
    let sizes: Vec<f64> = groups.sizes().iter().map(|&s| s as f64).collect();
    let sels: Vec<f64> = pos
        .iter()
        .zip(&tot)
        .map(|(&p, &t)| SelectivityEstimate::from_sample(p, t).mean())
        .collect();
    let estimated_cost = match solve_perfect_selectivities(&sizes, &sels, spec) {
        Ok(plan) => plan.expected_cost(&sizes, &spec.cost),
        Err(_) => f64::INFINITY,
    };
    ColumnScore {
        column: column.to_owned(),
        estimated_cost,
        distinct_values: groups.num_groups(),
    }
}

/// Builds the §6.3.2 virtual column (method 2): train a logistic
/// regressor on the labelled rows, score all tuples, and bucketize the
/// scores into `buckets` equal-depth groups.
///
/// `exclude` must contain at least the hidden label column; the paper also
/// excludes identifiers.
pub fn virtual_column(
    table: &Table,
    exclude: &[&str],
    invoker: &UdfInvoker<'_>,
    labelled: &[u32],
    buckets: usize,
    ctx: &ExecContext<'_>,
) -> GroupBy {
    assert!(!labelled.is_empty(), "virtual column needs labelled rows");
    let features = extract_features_cached(table, exclude, FeatureSpec::default(), ctx.derived);
    let rows: Vec<usize> = labelled.iter().map(|&r| r as usize).collect();
    let labels: Vec<bool> = rows
        .iter()
        .map(|&r| {
            invoker
                .memoized(r)
                .expect("labelled rows must be evaluated")
        })
        .collect();
    let model = train(&features, &rows, &labels, TrainConfig::default());
    let scores = model.predict_all(&features);
    let assignments = bucketize(&scores, buckets);
    GroupBy::from_assignments("virtual:logistic", &assignments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use expred_table::datasets::{Dataset, LABEL_COLUMN, PROSPER};
    use expred_udf::OracleUdf;

    #[test]
    fn designated_predictor_wins_on_synthetic_data() {
        let ds = Dataset::generate(PROSPER, 11);
        let udf = OracleUdf::new(LABEL_COLUMN);
        let invoker = UdfInvoker::new(&udf, &ds.table);
        let spec = QuerySpec::paper_default();
        let mut rng = Prng::seeded(11);
        let candidates = ds.candidate_columns();
        let (scores, labelled) =
            rank_columns(&ds.table, &candidates, &invoker, &spec, 0.01, &mut rng);
        assert!(!scores.is_empty());
        assert_eq!(labelled.len(), 300); // 1% of 30k
                                         // The designated predictor ("grade") or its high-fidelity noisy
                                         // copy should rank at or near the top.
        let top3: Vec<&str> = scores.iter().take(3).map(|s| s.column.as_str()).collect();
        assert!(
            top3.contains(&"grade") || top3.contains(&"sub_grade"),
            "top3 = {top3:?}"
        );
        // Noise columns must rank worse than the winner.
        let winner_cost = scores[0].estimated_cost;
        let weekday = scores.iter().find(|s| s.column == "weekday").unwrap();
        assert!(weekday.estimated_cost > winner_cost);
    }

    #[test]
    fn ranking_costs_are_monotone() {
        let ds = Dataset::generate(PROSPER, 12);
        let udf = OracleUdf::new(LABEL_COLUMN);
        let invoker = UdfInvoker::new(&udf, &ds.table);
        let spec = QuerySpec::paper_default();
        let mut rng = Prng::seeded(12);
        let (scores, _) = rank_columns(
            &ds.table,
            &ds.candidate_columns(),
            &invoker,
            &spec,
            0.01,
            &mut rng,
        );
        for w in scores.windows(2) {
            assert!(w[0].estimated_cost <= w[1].estimated_cost);
        }
    }

    #[test]
    fn labelling_cost_is_charged() {
        let ds = Dataset::generate(PROSPER, 13);
        let udf = OracleUdf::new(LABEL_COLUMN);
        let invoker = UdfInvoker::new(&udf, &ds.table);
        let spec = QuerySpec::paper_default();
        let mut rng = Prng::seeded(13);
        let (_, labelled) = rank_columns(
            &ds.table,
            &ds.candidate_columns(),
            &invoker,
            &spec,
            0.01,
            &mut rng,
        );
        assert_eq!(invoker.counts().evaluated as usize, labelled.len());
    }

    #[test]
    fn virtual_column_buckets_order_by_selectivity() {
        let ds = Dataset::generate(PROSPER, 14);
        let udf = OracleUdf::new(LABEL_COLUMN);
        let invoker = UdfInvoker::new(&udf, &ds.table);
        let mut rng = Prng::seeded(14);
        // Label 2% of rows.
        let n = ds.table.num_rows();
        let labelled: Vec<u32> = rng
            .sample_indices(n, n / 50)
            .into_iter()
            .map(|r| {
                invoker.retrieve_and_evaluate(r);
                r as u32
            })
            .collect();
        let groups = virtual_column(
            &ds.table,
            &[LABEL_COLUMN, "row_id"],
            &invoker,
            &labelled,
            10,
            &ExecContext::sequential(),
        );
        assert!(
            groups.num_groups() >= 5,
            "got {} buckets",
            groups.num_groups()
        );
        assert_eq!(groups.num_rows(), n);
        // Bucket selectivity (vs ground truth) should increase with the
        // bucket id: the regressor's score orders tuples by likelihood.
        let truth = crate::execute::truth_vector(&ds.table, LABEL_COLUMN);
        let sels: Vec<f64> = (0..groups.num_groups())
            .map(|g| {
                let rows = groups.rows(g);
                rows.iter().filter(|&&r| truth[r as usize]).count() as f64 / rows.len() as f64
            })
            .collect();
        let first = sels.first().copied().unwrap();
        let last = sels.last().copied().unwrap();
        assert!(
            last > first + 0.2,
            "virtual buckets must separate classes: {sels:?}"
        );
    }
}
