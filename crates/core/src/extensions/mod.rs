//! Extensions beyond the core single-predicate query (paper §5, §10.7).
//!
//! These follow the paper's sketches; where the paper leaves the
//! formulation at the expectation level (no concentration slack is
//! derived for the extensions), so do we — each module documents that.

pub mod budget;
pub mod join;
pub mod multi_predicate;

pub use budget::{maximize_recall_under_budget, BudgetOutcome};
pub use join::{solve_select_join, JoinSubgroup};
pub use multi_predicate::{
    evaluate_conjunction_batch, evaluate_conjunction_batch_ctx, solve_multi_predicate,
    solve_predicate_chain, ChainGroup, ChainPlan, MultiAction, MultiCost, MultiPlan,
    PredicatePairGroup,
};
