//! Multiple chained UDF predicates (§5, §10.7.2).
//!
//! The query `SELECT * FROM T WHERE f1(…) = 1 AND f2(…) = 1` admits
//! per-group decisions *per predicate*: a tuple can be returned assuming
//! both predicates hold, evaluated on one predicate and assumed on the
//! other, or evaluated on both (with short-circuiting). Accuracy lost on
//! one predicate can be traded for accuracy on the other — exactly the
//! paper's motivation for joint decision variables.
//!
//! Formulation: for each group `a` with within-group-independent
//! selectivities `s1_a, s2_a`, fractional action probabilities
//! `x_{a,act} ≥ 0`, `Σ_act x ≤ 1` (the remainder is discarded), with
//! expectation-level precision/recall constraints (the paper derives no
//! concentration slack for this extension; neither do we — callers can
//! tighten `alpha`/`beta` to taste). Solved exactly with the workspace
//! simplex.

use crate::optimize::PlanError;
use expred_exec::{ExecContext, Executor};
use expred_solver::lp::{Constraint, LinearProgram, LpOutcome, Relation};
use expred_table::Table;
use expred_udf::{ConjunctionUdf, CostTracker};

/// Per-group statistics for a two-predicate conjunction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredicatePairGroup {
    /// Group size `t_a`.
    pub size: f64,
    /// Selectivity of the first predicate within the group.
    pub s1: f64,
    /// Selectivity of the second predicate within the group.
    pub s2: f64,
}

impl PredicatePairGroup {
    /// Probability both predicates hold (within-group independence).
    pub fn s_both(&self) -> f64 {
        self.s1 * self.s2
    }
}

/// Cost model with distinct per-predicate evaluation costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiCost {
    /// Retrieval cost `o_r`.
    pub retrieve: f64,
    /// Evaluation cost of the first predicate.
    pub eval1: f64,
    /// Evaluation cost of the second predicate.
    pub eval2: f64,
}

/// The non-discard actions; discard probability is the residual.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiAction {
    /// Retrieve; assume both predicates true.
    Return,
    /// Retrieve; evaluate `f1`, assume `f2`.
    EvalFirst,
    /// Retrieve; evaluate `f2`, assume `f1`.
    EvalSecond,
    /// Retrieve; evaluate `f1` then, if it passed, `f2` (short-circuit).
    EvalBoth,
}

/// All actions in LP-variable order.
pub const ACTIONS: [MultiAction; 4] = [
    MultiAction::Return,
    MultiAction::EvalFirst,
    MultiAction::EvalSecond,
    MultiAction::EvalBoth,
];

/// A fractional multi-predicate plan: per group, the probability of each
/// action (discard = 1 − sum).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPlan {
    /// `probs[a][i]` = probability of `ACTIONS[i]` for group `a`.
    pub probs: Vec<[f64; 4]>,
    /// Expected total cost.
    pub expected_cost: f64,
}

impl MultiPlan {
    /// Probability group `a` takes `action`.
    pub fn prob(&self, a: usize, action: MultiAction) -> f64 {
        let i = ACTIONS.iter().position(|&x| x == action).unwrap();
        self.probs[a][i]
    }

    /// Discard probability of group `a`.
    pub fn discard_prob(&self, a: usize) -> f64 {
        (1.0 - self.probs[a].iter().sum::<f64>()).max(0.0)
    }
}

/// Per-unit expected quantities of one action on one group:
/// `(cost, output_size, correct_output)`.
fn action_rates(g: &PredicatePairGroup, cost: &MultiCost, action: MultiAction) -> (f64, f64, f64) {
    let s12 = g.s_both();
    match action {
        // Everything returned; correct with probability s12.
        MultiAction::Return => (cost.retrieve, 1.0, s12),
        // Output iff f1 passes (prob s1); correct iff f2 also holds.
        MultiAction::EvalFirst => (cost.retrieve + cost.eval1, g.s1, s12),
        MultiAction::EvalSecond => (cost.retrieve + cost.eval2, g.s2, s12),
        // Evaluate f1 always, f2 only on f1-pass; output iff both.
        MultiAction::EvalBoth => (cost.retrieve + cost.eval1 + g.s1 * cost.eval2, s12, s12),
    }
}

/// Solves the two-predicate problem: minimize expected cost subject to
/// expected precision ≥ `alpha` and expected recall ≥ `beta`.
pub fn solve_multi_predicate(
    groups: &[PredicatePairGroup],
    alpha: f64,
    beta: f64,
    cost: &MultiCost,
) -> Result<MultiPlan, PlanError> {
    assert!((0.0..=1.0).contains(&alpha) && (0.0..=1.0).contains(&beta));
    let k = groups.len();
    let nv = 4 * k;
    let mut objective = vec![0.0; nv];
    let mut precision_row = vec![0.0; nv];
    let mut recall_row = vec![0.0; nv];
    let total_correct: f64 = groups.iter().map(|g| g.size * g.s_both()).sum();
    for (a, g) in groups.iter().enumerate() {
        for (i, &action) in ACTIONS.iter().enumerate() {
            let (c, out, correct) = action_rates(g, cost, action);
            let v = 4 * a + i;
            objective[v] = g.size * c;
            // precision: correct − α·output ≥ 0 summed.
            precision_row[v] = g.size * (correct - alpha * out);
            recall_row[v] = g.size * correct;
        }
    }
    let mut constraints = vec![
        Constraint {
            coeffs: precision_row,
            relation: Relation::Ge,
            rhs: 0.0,
        },
        Constraint {
            coeffs: recall_row,
            relation: Relation::Ge,
            rhs: beta * total_correct,
        },
    ];
    for a in 0..k {
        let mut row = vec![0.0; nv];
        for i in 0..4 {
            row[4 * a + i] = 1.0;
        }
        constraints.push(Constraint {
            coeffs: row,
            relation: Relation::Le,
            rhs: 1.0,
        });
    }
    match LinearProgram::new(objective, constraints).solve() {
        LpOutcome::Optimal(s) => {
            let mut probs = Vec::with_capacity(k);
            for a in 0..k {
                let mut p = [0.0; 4];
                for (i, slot) in p.iter_mut().enumerate() {
                    *slot = s.x[4 * a + i].clamp(0.0, 1.0);
                }
                probs.push(p);
            }
            Ok(MultiPlan {
                probs,
                expected_cost: s.objective,
            })
        }
        LpOutcome::Infeasible => Err(PlanError::Infeasible(
            "two-predicate constraints unsatisfiable".into(),
        )),
        LpOutcome::Unbounded => unreachable!("nonnegative costs cannot be unbounded"),
    }
}

/// One group's statistics for an `n`-predicate conjunction chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainGroup {
    /// Group size `t_a`.
    pub size: f64,
    /// Per-predicate selectivities within the group (independent).
    pub sels: Vec<f64>,
}

impl ChainGroup {
    /// Probability all predicates hold.
    pub fn s_all(&self) -> f64 {
        self.sels.iter().product()
    }
}

/// A fractional plan over subset-evaluation actions for `n` predicates.
///
/// Action index `m ∈ 0..2^n` means "retrieve and evaluate exactly the
/// predicates in bitmask `m` (short-circuited, cheapest-rejecter first),
/// assume the rest"; the residual probability mass is discarded.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainPlan {
    /// `probs[a][m]` = probability group `a` takes subset-action `m`.
    pub probs: Vec<Vec<f64>>,
    /// Expected total cost.
    pub expected_cost: f64,
}

impl ChainPlan {
    /// Discard probability of group `a`.
    pub fn discard_prob(&self, a: usize) -> f64 {
        (1.0 - self.probs[a].iter().sum::<f64>()).max(0.0)
    }
}

/// Expected per-tuple cost of evaluating predicate subset `mask` with
/// short-circuiting, using the classic optimal filter order: ascending
/// `cost_i / (1 - s_i)` (cheapest expected rejection first).
fn subset_cost(mask: usize, sels: &[f64], eval_costs: &[f64], retrieve: f64) -> f64 {
    let mut members: Vec<usize> = (0..sels.len()).filter(|i| mask & (1 << i) != 0).collect();
    members.sort_by(|&a, &b| {
        let ka = eval_costs[a] / (1.0 - sels[a]).max(1e-12);
        let kb = eval_costs[b] / (1.0 - sels[b]).max(1e-12);
        ka.partial_cmp(&kb).unwrap().then(a.cmp(&b))
    });
    let mut cost = retrieve;
    let mut pass_prob = 1.0;
    for &i in &members {
        cost += pass_prob * eval_costs[i];
        pass_prob *= sels[i];
    }
    cost
}

/// Solves the general `n`-predicate conjunction (§10.7.2's "number of
/// variables is exponential in the number of predicates, but still linear
/// in table size"): minimize expected cost subject to expectation-level
/// precision ≥ `alpha` and recall ≥ `beta`.
///
/// `eval_costs[i]` is predicate `i`'s evaluation cost; `retrieve` the
/// per-tuple retrieval cost. Every group must carry one selectivity per
/// predicate. Practical up to ~10 predicates (2^n actions per group).
pub fn solve_predicate_chain(
    groups: &[ChainGroup],
    alpha: f64,
    beta: f64,
    eval_costs: &[f64],
    retrieve: f64,
) -> Result<ChainPlan, PlanError> {
    assert!((0.0..=1.0).contains(&alpha) && (0.0..=1.0).contains(&beta));
    let n = eval_costs.len();
    assert!((1..=16).contains(&n), "1..=16 predicates supported");
    for g in groups {
        assert_eq!(g.sels.len(), n, "one selectivity per predicate required");
    }
    let num_actions = 1usize << n;
    let k = groups.len();
    let nv = num_actions * k;
    let mut objective = vec![0.0; nv];
    let mut precision_row = vec![0.0; nv];
    let mut recall_row = vec![0.0; nv];
    let total_correct: f64 = groups.iter().map(|g| g.size * g.s_all()).sum();
    for (a, g) in groups.iter().enumerate() {
        let s_all = g.s_all();
        for mask in 0..num_actions {
            let v = num_actions * a + mask;
            // Output iff every evaluated predicate passes.
            let out: f64 = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| g.sels[i])
                .product();
            objective[v] = g.size * subset_cost(mask, &g.sels, eval_costs, retrieve);
            precision_row[v] = g.size * (s_all - alpha * out);
            recall_row[v] = g.size * s_all;
        }
    }
    let mut constraints = vec![
        Constraint {
            coeffs: precision_row,
            relation: Relation::Ge,
            rhs: 0.0,
        },
        Constraint {
            coeffs: recall_row,
            relation: Relation::Ge,
            rhs: beta * total_correct,
        },
    ];
    for a in 0..k {
        let mut row = vec![0.0; nv];
        for m in 0..num_actions {
            row[num_actions * a + m] = 1.0;
        }
        constraints.push(Constraint {
            coeffs: row,
            relation: Relation::Le,
            rhs: 1.0,
        });
    }
    match LinearProgram::new(objective, constraints).solve() {
        LpOutcome::Optimal(s) => {
            let probs = (0..k)
                .map(|a| {
                    (0..num_actions)
                        .map(|m| s.x[num_actions * a + m].clamp(0.0, 1.0))
                        .collect()
                })
                .collect();
            Ok(ChainPlan {
                probs,
                expected_cost: s.objective,
            })
        }
        LpOutcome::Infeasible => Err(PlanError::Infeasible(
            "predicate-chain constraints unsatisfiable".into(),
        )),
        LpOutcome::Unbounded => unreachable!("nonnegative costs cannot be unbounded"),
    }
}

/// Evaluates an `n`-predicate conjunction over `rows` in staged batches:
/// conjunct 0 runs on the whole batch through `executor`, conjunct 1 only
/// on the survivors, and so on — batched short-circuiting in the style of
/// disjunction/conjunction evaluation for column stores, with each stage
/// wide enough to keep a parallel backend busy.
///
/// Each conjunct invocation is charged to `tracker` as one evaluation
/// (the scalar cost model prices every external call at `o_e`; for
/// per-predicate prices see [`MultiCost`] and the planners above).
/// Retrieval is charged by the caller, which decided to touch the rows.
/// Answers come back in input order and are identical across executor
/// backends.
pub fn evaluate_conjunction_batch(
    udf: &ConjunctionUdf,
    table: &Table,
    rows: &[usize],
    tracker: &CostTracker,
    executor: &dyn Executor,
) -> Vec<bool> {
    evaluate_conjunction_batch_ctx(udf, table, rows, tracker, &ExecContext::new(executor))
}

/// [`evaluate_conjunction_batch`] under an execution context.
pub fn evaluate_conjunction_batch_ctx(
    udf: &ConjunctionUdf,
    table: &Table,
    rows: &[usize],
    tracker: &CostTracker,
    ctx: &ExecContext<'_>,
) -> Vec<bool> {
    let executor = ctx.executor;
    // Positions (into `rows`) still alive after the stages so far.
    let mut alive: Vec<usize> = (0..rows.len()).collect();
    for part in 0..udf.arity() {
        if alive.is_empty() {
            break;
        }
        let batch: Vec<usize> = alive.iter().map(|&position| rows[position]).collect();
        let probe = |row: usize| udf.evaluate_part(part, table, row);
        let verdicts = executor.evaluate_batch(&probe, &batch);
        tracker.add_evaluations(batch.len() as u64);
        alive = alive
            .into_iter()
            .zip(verdicts)
            .filter(|&(_, passed)| passed)
            .map(|(position, _)| position)
            .collect();
    }
    let mut answers = vec![false; rows.len()];
    for position in alive {
        answers[position] = true;
    }
    answers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> MultiCost {
        MultiCost {
            retrieve: 1.0,
            eval1: 3.0,
            eval2: 3.0,
        }
    }

    fn groups() -> Vec<PredicatePairGroup> {
        vec![
            PredicatePairGroup {
                size: 1000.0,
                s1: 0.9,
                s2: 0.95,
            },
            PredicatePairGroup {
                size: 1000.0,
                s1: 0.5,
                s2: 0.6,
            },
            PredicatePairGroup {
                size: 1000.0,
                s1: 0.1,
                s2: 0.2,
            },
        ]
    }

    fn check_constraints(plan: &MultiPlan, groups: &[PredicatePairGroup], alpha: f64, beta: f64) {
        let c = cost();
        let mut correct = 0.0;
        let mut output = 0.0;
        let total: f64 = groups.iter().map(|g| g.size * g.s_both()).sum();
        for (a, g) in groups.iter().enumerate() {
            for (i, &action) in ACTIONS.iter().enumerate() {
                let (_, out, corr) = action_rates(g, &c, action);
                output += g.size * plan.probs[a][i] * out;
                correct += g.size * plan.probs[a][i] * corr;
            }
        }
        assert!(correct >= alpha * output - 1e-6, "precision violated");
        assert!(correct >= beta * total - 1e-6, "recall violated");
    }

    fn two_label_table(f1: &[bool], f2: &[bool]) -> Table {
        use expred_table::{DataType, Field, Schema, Value};
        let schema = Schema::new(vec![
            Field::new("f1", DataType::Bool),
            Field::new("f2", DataType::Bool),
        ]);
        let rows = f1
            .iter()
            .zip(f2)
            .map(|(&a, &b)| vec![Value::Bool(a), Value::Bool(b)])
            .collect();
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn conjunction_batch_short_circuits_and_charges_per_stage() {
        use expred_udf::OracleUdf;
        let f1 = [true, true, false, false, true, false];
        let f2 = [true, false, true, false, true, true];
        let table = two_label_table(&f1, &f2);
        let udf = ConjunctionUdf::new(vec![
            Box::new(OracleUdf::new("f1")),
            Box::new(OracleUdf::new("f2")),
        ]);
        let tracker = CostTracker::new();
        let rows: Vec<usize> = (0..6).collect();
        let answers =
            evaluate_conjunction_batch(&udf, &table, &rows, &tracker, &expred_exec::Sequential);
        let want: Vec<bool> = f1.iter().zip(&f2).map(|(&a, &b)| a && b).collect();
        assert_eq!(answers, want);
        // Stage 1 probes all 6 rows; stage 2 only the 3 f1-survivors.
        assert_eq!(tracker.snapshot().evaluated, 6 + 3);
    }

    #[test]
    fn conjunction_batch_identical_across_backends() {
        use expred_udf::OracleUdf;
        let n = 500;
        let f1: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
        let f2: Vec<bool> = (0..n).map(|i| i % 5 != 0).collect();
        let table = two_label_table(&f1, &f2);
        let udf = ConjunctionUdf::new(vec![
            Box::new(OracleUdf::new("f1")),
            Box::new(OracleUdf::new("f2")),
        ]);
        let rows: Vec<usize> = (0..n).rev().collect();
        let seq_tracker = CostTracker::new();
        let seq =
            evaluate_conjunction_batch(&udf, &table, &rows, &seq_tracker, &expred_exec::Sequential);
        let par_tracker = CostTracker::new();
        let par = evaluate_conjunction_batch(
            &udf,
            &table,
            &rows,
            &par_tracker,
            &expred_exec::Parallel::with_threads(4),
        );
        assert_eq!(seq, par);
        assert_eq!(seq_tracker.snapshot(), par_tracker.snapshot());
    }

    #[test]
    fn feasible_plan_meets_expected_constraints() {
        let gs = groups();
        let plan = solve_multi_predicate(&gs, 0.8, 0.8, &cost()).expect("feasible");
        check_constraints(&plan, &gs, 0.8, 0.8);
        for a in 0..gs.len() {
            let sum: f64 = plan.probs[a].iter().sum();
            assert!(sum <= 1.0 + 1e-9);
            assert!(plan.discard_prob(a) >= -1e-9);
        }
    }

    #[test]
    fn high_joint_selectivity_groups_are_returned() {
        let gs = groups();
        let plan = solve_multi_predicate(&gs, 0.8, 0.8, &cost()).expect("feasible");
        // Group 0 (s_both ≈ 0.855 > alpha) is cheap to return outright.
        assert!(
            plan.prob(0, MultiAction::Return) > 0.5,
            "probs: {:?}",
            plan.probs[0]
        );
    }

    #[test]
    fn zero_constraints_cost_nothing() {
        let gs = groups();
        let plan = solve_multi_predicate(&gs, 0.0, 0.0, &cost()).expect("feasible");
        assert!(plan.expected_cost < 1e-9);
    }

    #[test]
    fn asymmetric_costs_prefer_cheap_predicate() {
        // Make f2 very cheap: evaluating f2 alone should dominate f1-alone.
        let gs = vec![PredicatePairGroup {
            size: 1000.0,
            s1: 0.5,
            s2: 0.5,
        }];
        let cheap2 = MultiCost {
            retrieve: 1.0,
            eval1: 10.0,
            eval2: 0.5,
        };
        let plan = solve_multi_predicate(&gs, 0.9, 0.9, &cheap2).expect("feasible");
        assert!(
            plan.prob(0, MultiAction::EvalFirst) < 1e-6,
            "expensive f1-only action should be unused: {:?}",
            plan.probs[0]
        );
    }

    #[test]
    #[should_panic]
    fn beta_out_of_range_rejected() {
        let gs = groups();
        solve_multi_predicate(&gs, 0.0, 1.2, &cost()).ok();
    }

    #[test]
    fn full_recall_is_always_feasible_in_expectation() {
        // Evaluating both predicates everywhere returns every correct
        // tuple, so beta = 1 is feasible at the expectation level.
        let gs = groups();
        let plan = solve_multi_predicate(&gs, 1.0, 1.0, &cost()).expect("feasible");
        check_constraints(&plan, &gs, 1.0, 1.0);
    }

    #[test]
    fn chain_with_two_predicates_matches_pairwise_solver() {
        // The 2-predicate chain's action space covers the pairwise
        // solver's (plus better short-circuit ordering), so its optimum
        // can only be at least as cheap.
        let gs = groups();
        let chain_groups: Vec<ChainGroup> = gs
            .iter()
            .map(|g| ChainGroup {
                size: g.size,
                sels: vec![g.s1, g.s2],
            })
            .collect();
        let pair = solve_multi_predicate(&gs, 0.8, 0.8, &cost()).unwrap();
        let chain = solve_predicate_chain(&chain_groups, 0.8, 0.8, &[3.0, 3.0], 1.0).unwrap();
        assert!(
            chain.expected_cost <= pair.expected_cost + 1e-6,
            "chain {} vs pair {}",
            chain.expected_cost,
            pair.expected_cost
        );
        // With symmetric costs the optima coincide.
        assert!(
            (chain.expected_cost - pair.expected_cost).abs() < 1e-6 * (1.0 + pair.expected_cost),
            "chain {} vs pair {}",
            chain.expected_cost,
            pair.expected_cost
        );
    }

    #[test]
    fn chain_three_predicates_solves_and_meets_constraints() {
        let groups = vec![
            ChainGroup {
                size: 1000.0,
                sels: vec![0.9, 0.8, 0.95],
            },
            ChainGroup {
                size: 1000.0,
                sels: vec![0.5, 0.7, 0.4],
            },
            ChainGroup {
                size: 500.0,
                sels: vec![0.2, 0.3, 0.9],
            },
        ];
        let eval_costs = [2.0, 5.0, 1.0];
        let plan = solve_predicate_chain(&groups, 0.85, 0.8, &eval_costs, 1.0).unwrap();
        // Verify the expectation-level constraints directly.
        let total_correct: f64 = groups.iter().map(|g| g.size * g.s_all()).sum();
        let (mut correct, mut output) = (0.0, 0.0);
        for (a, g) in groups.iter().enumerate() {
            for (mask, &p) in plan.probs[a].iter().enumerate() {
                let out: f64 = (0..3)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| g.sels[i])
                    .product();
                output += g.size * p * out;
                correct += g.size * p * g.s_all();
            }
        }
        assert!(correct >= 0.85 * output - 1e-6, "precision violated");
        assert!(correct >= 0.8 * total_correct - 1e-6, "recall violated");
    }

    #[test]
    fn subset_cost_orders_by_rejection_density() {
        // Predicate 1 is cheap and selective: it must be evaluated first,
        // discounting predicate 0's cost by s_1.
        let sels = [0.9, 0.2];
        let eval_costs = [10.0, 1.0];
        let c = subset_cost(0b11, &sels, &eval_costs, 1.0);
        // Order: predicate 1 (1/(0.8) = 1.25) before 0 (10/0.1 = 100):
        // cost = 1 + 1.0 + 0.2 * 10 = 4.0.
        assert!((c - 4.0).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn chain_empty_subset_action_is_blind_return() {
        let sels = [0.5, 0.5];
        let c = subset_cost(0, &sels, &[3.0, 3.0], 1.0);
        assert_eq!(c, 1.0, "no evaluations, retrieval only");
    }

    #[test]
    fn full_precision_forces_eval_both_on_mixed_groups() {
        let gs = vec![PredicatePairGroup {
            size: 100.0,
            s1: 0.6,
            s2: 0.6,
        }];
        let plan = solve_multi_predicate(&gs, 1.0, 0.9, &cost()).expect("feasible");
        // Only EvalBoth has precision 1 on a mixed group.
        let non_both: f64 = plan.prob(0, MultiAction::Return)
            + plan.prob(0, MultiAction::EvalFirst)
            + plan.prob(0, MultiAction::EvalSecond);
        assert!(non_both < 1e-6, "probs: {:?}", plan.probs[0]);
        assert!(plan.prob(0, MultiAction::EvalBoth) > 0.89);
    }
}
