//! Alternate objective: fixed cost budget, maximize recall (§10.7.1).
//!
//! "The cost now becomes one of the constraints, while recall … becomes
//! the objective function to be maximized." Expected plan cost is monotone
//! nondecreasing in the recall bound `β`, so the largest attainable `β`
//! under a budget is found by bisection over the §3.2 solver.

use crate::optimize::solve_perfect_selectivities;
use crate::plan::Plan;
use crate::query::QuerySpec;
use expred_udf::CostModel;

/// Result of budget-constrained recall maximization.
#[derive(Debug, Clone)]
pub struct BudgetOutcome {
    /// The plan achieving the best recall bound within budget.
    pub plan: Plan,
    /// The largest recall bound `β` the budget supports (with the query's
    /// `ρ`-slack applied, as in the underlying solver).
    pub achieved_beta: f64,
    /// The plan's expected cost.
    pub expected_cost: f64,
}

/// Maximizes the recall bound subject to `expected cost ≤ budget` and the
/// precision bound `alpha`, for known selectivities.
///
/// Returns `None` when even `β = 0` is unaffordable (i.e. the precision
/// constraint alone forces spending beyond the budget) or infeasible.
pub fn maximize_recall_under_budget(
    sizes: &[f64],
    sels: &[f64],
    alpha: f64,
    rho: f64,
    cost: CostModel,
    budget: f64,
) -> Option<BudgetOutcome> {
    assert!(budget >= 0.0, "budget must be nonnegative");
    let try_beta = |beta: f64| -> Option<(Plan, f64)> {
        let spec = QuerySpec::new(alpha, beta, rho, cost);
        let plan = solve_perfect_selectivities(sizes, sels, &spec).ok()?;
        let c = plan.expected_cost(sizes, &cost);
        (c <= budget + 1e-9).then_some((plan, c))
    };

    let (mut plan, mut expected_cost) = try_beta(0.0)?;
    let mut achieved = 0.0;
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    // Fast path: the whole range may be affordable.
    if let Some((p, c)) = try_beta(1.0) {
        return Some(BudgetOutcome {
            plan: p,
            achieved_beta: 1.0,
            expected_cost: c,
        });
    }
    for _ in 0..48 {
        let mid = 0.5 * (lo + hi);
        match try_beta(mid) {
            Some((p, c)) => {
                plan = p;
                expected_cost = c;
                achieved = mid;
                lo = mid;
            }
            None => hi = mid,
        }
    }
    Some(BudgetOutcome {
        plan,
        achieved_beta: achieved,
        expected_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn groups() -> (Vec<f64>, Vec<f64>) {
        (vec![1000.0, 1000.0, 1000.0], vec![0.9, 0.5, 0.1])
    }

    #[test]
    fn bigger_budget_buys_more_recall() {
        let (sizes, sels) = groups();
        let small =
            maximize_recall_under_budget(&sizes, &sels, 0.8, 0.8, CostModel::PAPER_DEFAULT, 1500.0)
                .expect("affordable");
        let large =
            maximize_recall_under_budget(&sizes, &sels, 0.8, 0.8, CostModel::PAPER_DEFAULT, 6000.0)
                .expect("affordable");
        assert!(large.achieved_beta > small.achieved_beta);
        assert!(small.expected_cost <= 1500.0 + 1e-6);
        assert!(large.expected_cost <= 6000.0 + 1e-6);
    }

    #[test]
    fn unlimited_budget_reaches_full_recall() {
        let (sizes, sels) = groups();
        let out =
            maximize_recall_under_budget(&sizes, &sels, 0.8, 0.8, CostModel::PAPER_DEFAULT, 1e9)
                .expect("affordable");
        assert_eq!(out.achieved_beta, 1.0);
    }

    #[test]
    fn zero_budget_zero_recall() {
        let (sizes, sels) = groups();
        let out =
            maximize_recall_under_budget(&sizes, &sels, 0.8, 0.8, CostModel::PAPER_DEFAULT, 0.0)
                .expect("beta = 0 costs nothing");
        assert!(out.achieved_beta < 1e-6);
        assert_eq!(out.expected_cost, 0.0);
    }

    #[test]
    fn achieved_plan_is_within_budget() {
        let (sizes, sels) = groups();
        for budget in [500.0, 1000.0, 2000.0, 4000.0] {
            let out = maximize_recall_under_budget(
                &sizes,
                &sels,
                0.8,
                0.8,
                CostModel::PAPER_DEFAULT,
                budget,
            )
            .expect("affordable");
            assert!(
                out.plan.expected_cost(&sizes, &CostModel::PAPER_DEFAULT) <= budget + 1e-6,
                "budget {budget} exceeded"
            );
        }
    }
}
