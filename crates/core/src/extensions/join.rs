//! Selection followed by a join (§5, §10.7.3).
//!
//! When the filtered table `T` is subsequently joined with `T2`, a tuple
//! that matches many `T2` tuples matters more: "it may be worthwhile for
//! us to evaluate a tuple with low correctness-probability that matches
//! with a large number of tuples from `T2`, over a tuple with higher
//! correctness probability that joins with fewer". Following the paper's
//! construction, decision variables are split per (correlated value,
//! join value) and every precision/recall contribution is weighted by the
//! join fan-out `n_j`; costs are *not* weighted (retrieving/evaluating a
//! `T` tuple costs the same regardless of its fan-out).
//!
//! Constraints are expectation-level, as in the paper's sketch.

use crate::optimize::PlanError;
use crate::plan::Plan;
use expred_solver::bigreedy::{GreedyGroup, GreedyProblem};
use expred_udf::CostModel;

/// One `(correlated value, join value)` subgroup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinSubgroup {
    /// Number of `T` tuples in the subgroup (`t_{a,j}`).
    pub size: f64,
    /// Selectivity of the UDF within the subgroup (inherited from the
    /// correlated value `a`).
    pub sel: f64,
    /// Join fan-out `n_j`: how many `T2` tuples each tuple matches.
    pub fanout: f64,
}

/// Solves the join-weighted selection: minimize expected cost subject to
/// join-weighted precision ≥ `alpha` and join-weighted recall ≥ `beta`.
///
/// Returns a per-subgroup plan in the order of `subgroups`.
pub fn solve_select_join(
    subgroups: &[JoinSubgroup],
    alpha: f64,
    beta: f64,
    cost: &CostModel,
) -> Result<Plan, PlanError> {
    assert!((0.0..=1.0).contains(&alpha) && (0.0..=1.0).contains(&beta));
    let recall_mass: f64 = subgroups.iter().map(|g| g.size * g.sel * g.fanout).sum();
    let groups: Vec<GreedyGroup> = subgroups
        .iter()
        .map(|g| {
            let (t, s, w) = (g.size, g.sel, g.fanout);
            GreedyGroup {
                selectivity: s,
                cost_r: t * cost.retrieve,
                cost_e: t * cost.evaluate,
                recall_r: w * t * s,
                prec_r: w * (t * s * (1.0 - alpha) - alpha * t * (1.0 - s)),
                prec_e: w * alpha * t * (1.0 - s),
            }
        })
        .collect();
    let problem = GreedyProblem {
        groups,
        recall_target: beta * recall_mass,
        precision_target: 0.0,
    };
    let plan = problem
        .solve_robust(true)
        .map_err(|e| PlanError::Infeasible(e.to_string()))?;
    Ok(Plan::new(plan.r, plan.e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_fanout_subgroups_dominate_recall() {
        // Two subgroups, same size and selectivity, very different fan-out:
        // at beta = 0.5 the solver must prefer the high-fanout subgroup.
        let subs = vec![
            JoinSubgroup {
                size: 100.0,
                sel: 0.5,
                fanout: 10.0,
            },
            JoinSubgroup {
                size: 100.0,
                sel: 0.5,
                fanout: 1.0,
            },
        ];
        let plan = solve_select_join(&subs, 0.0, 0.5, &CostModel::PAPER_DEFAULT).unwrap();
        assert!(
            plan.r()[0] > plan.r()[1],
            "high-fanout subgroup should be retrieved first: {:?}",
            plan.r()
        );
    }

    #[test]
    fn paper_motivation_low_sel_high_fanout_beats_high_sel_low_fanout() {
        // A lower-selectivity subgroup with huge fan-out should be planned
        // in before a higher-selectivity subgroup with tiny fan-out — note
        // the greedy sorts by selectivity, so this requires the exact LP.
        let subs = vec![
            JoinSubgroup {
                size: 100.0,
                sel: 0.4,
                fanout: 50.0,
            },
            JoinSubgroup {
                size: 100.0,
                sel: 0.8,
                fanout: 1.0,
            },
        ];
        let plan = solve_select_join(&subs, 0.0, 0.4, &CostModel::PAPER_DEFAULT).unwrap();
        // Recall mass: 0.4*100*50 = 2000 vs 0.8*100*1 = 80; target = 832.
        // Covering via subgroup 0 costs 100·1·(832/2000); via subgroup 1 it
        // cannot even reach the target.
        assert!(plan.r()[0] > 0.3);
        assert!(
            plan.r()[1] < 0.2,
            "low-fanout subgroup wasteful: {:?}",
            plan.r()
        );
    }

    #[test]
    fn precision_weighting_counts_joined_rows() {
        // A junk subgroup with large fan-out poisons join-precision fast;
        // the solver must evaluate (not blind-return) it.
        let subs = vec![
            JoinSubgroup {
                size: 100.0,
                sel: 0.95,
                fanout: 1.0,
            },
            JoinSubgroup {
                size: 100.0,
                sel: 0.30,
                fanout: 20.0,
            },
        ];
        let plan = solve_select_join(&subs, 0.9, 0.9, &CostModel::PAPER_DEFAULT).unwrap();
        // Subgroup 1 is needed for recall (its weighted mass dominates) but
        // blind returns would crush precision, so it must be evaluated.
        assert!(plan.r()[1] > 0.8);
        assert!(
            plan.e()[1] > 0.5,
            "junk subgroup must be evaluated: {:?}",
            plan.e()
        );
    }

    #[test]
    fn zero_selectivity_subgroups_are_never_retrieved() {
        // A subgroup with no correct tuples contributes nothing to recall
        // and only poisons precision; the plan must skip it entirely.
        let subs = vec![
            JoinSubgroup {
                size: 100.0,
                sel: 0.0,
                fanout: 5.0,
            },
            JoinSubgroup {
                size: 100.0,
                sel: 0.6,
                fanout: 1.0,
            },
        ];
        let plan = solve_select_join(&subs, 0.5, 0.8, &CostModel::PAPER_DEFAULT).unwrap();
        assert!(
            plan.r()[0] < 1e-9,
            "junk subgroup retrieved: {:?}",
            plan.r()
        );
        assert!(plan.r()[1] > 0.7);
    }

    #[test]
    fn uniform_fanout_reduces_to_plain_selection() {
        // With fan-out 1 everywhere the solution must match the plain
        // perfect-selectivity LP at zero slack.
        let subs = vec![
            JoinSubgroup {
                size: 1000.0,
                sel: 0.9,
                fanout: 1.0,
            },
            JoinSubgroup {
                size: 1000.0,
                sel: 0.5,
                fanout: 1.0,
            },
            JoinSubgroup {
                size: 1000.0,
                sel: 0.1,
                fanout: 1.0,
            },
        ];
        let plan = solve_select_join(&subs, 0.9, 0.9, &CostModel::PAPER_DEFAULT).unwrap();
        let sizes = [1000.0, 1000.0, 1000.0];
        let sels = [0.9, 0.5, 0.1];
        let plain =
            GreedyProblem::from_group_stats(&sizes, &sels, 0.9, 1.0, 3.0, 0.9 * 1500.0, 0.0)
                .solve_robust(true)
                .unwrap();
        let join_cost = plan.expected_cost(&sizes, &CostModel::PAPER_DEFAULT);
        assert!((join_cost - plain.cost).abs() < 1e-6 * (1.0 + plain.cost));
    }
}
