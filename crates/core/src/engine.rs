//! [`QueryEngine`]: the session layer — many queries, one cache.
//!
//! Everything below this module is per-query: pipelines build an invoker,
//! pay `o_e` for every fresh evaluation, and throw the memo away. The
//! engine is what a *serving* deployment holds on to between requests. It
//! owns an [`Executor`] backend and a [`CacheStore`], threads them
//! through every pipeline as one [`ExecContext`], and adds a second
//! reuse tier: a bounded memo of whole query outcomes, so an *identical*
//! repeated request (same table state, same query, same seed) is answered
//! without touching the UDF at all.
//!
//! The two tiers compose:
//!
//! 1. **Row tier** ([`CacheStore`]) — namespaced by `(udf, table id,
//!    table version)`; overlapping-but-different queries stop re-paying
//!    `o_e` for rows any earlier query evaluated.
//! 2. **Query tier** (result memo) — keyed by a fingerprint of the query
//!    request; identical repeats are free and charge zero additional
//!    `o_e`, reported as [`EngineStats::result_hits`].
//!
//! Mutating a table bumps its version, which invalidates both tiers for
//! that table automatically (row namespaces are GCed on next borrow;
//! result keys simply never match again).
//!
//! # Concurrency: one engine, many worker threads
//!
//! [`QueryEngine::run`] takes `&self` and the engine is `Send + Sync`:
//! one long-lived engine — one executor, one [`CacheStore`], one result
//! memo — serves any number of worker threads directly, no outer mutex.
//! Every shared structure is internally synchronized:
//!
//! * the result memo is a lock-striped, capacity-bounded
//!   [`crate::result_memo::ShardedResultMemo`] whose lookups verify the
//!   *full* request identity, so a hash collision (or a racing writer)
//!   can never serve one query's answer as another's;
//! * [`EngineStats`] is kept in atomic counters; [`QueryEngine::stats`]
//!   returns a consistent snapshot (see the type's docs);
//! * the session bill is an atomic [`CostTracker`], so charges from
//!   interleaved queries each land exactly once.
//!
//! **Answer stability.** Cached row answers are always *correct* — the
//! row tier is keyed by `(udf, table id, table version)` and a UDF is
//! deterministic per `(row, version)` — so pipelines whose demand stream
//! is independent of cache state (e.g. [`Query::Naive`]) return
//! byte-identical answers no matter how queries interleave. Pipelines
//! that *branch* on session-known rows (sampling counts them toward its
//! target) remain correct under concurrency but may legitimately pick
//! different sample sets depending on what earlier/overlapping queries
//! already paid for, exactly as they already did across serial session
//! orderings.
//!
//! **Racing duplicates (cold-race suppression).** Two threads submitting
//! the identical fresh request used to both execute it; now the first
//! becomes the *leader* and registers the request in a small in-flight
//! waiter table (keyed by the result-memo hash, identity-verified), and
//! every later identical arrival parks on its condvar and shares the
//! leader's outcome — the session is billed exactly once, reported as
//! [`EngineStats::dedup_joins`]. The memo read path stays lock-free; the
//! waiter table is touched only after a memo miss, and a leader that
//! panics wakes its followers, who then execute for themselves. Requests
//! that merely *collide* on the 64-bit hash are never deduplicated (the
//! stored identity is compared), they just run side by side.
//!
//! ```
//! use expred_core::{IntelSampleConfig, PredictorChoice, QueryEngine, QueryRequest};
//! use expred_table::datasets::{Dataset, DatasetSpec, PROSPER};
//!
//! let ds = Dataset::generate(DatasetSpec { rows: 2_000, ..PROSPER }, 7);
//! let engine = QueryEngine::new();
//! let request = QueryRequest::intel_sample(IntelSampleConfig::experiment1(
//!     PredictorChoice::Fixed("grade".into()),
//! ))
//! .with_seed(42);
//! let first = engine.submit(&ds, &request)?;
//! // `submit` takes `&self`: worker threads share the engine directly.
//! let again = std::thread::scope(|s| {
//!     s.spawn(|| engine.submit(&ds, &request)).join().unwrap()
//! })?;
//! assert_eq!(first.returned, again.returned);
//! // The repeat was answered from the result memo: zero new UDF calls.
//! assert_eq!(engine.session_counts().evaluated, first.counts.evaluated);
//! assert_eq!(engine.stats().result_hits, 1);
//! # Ok::<(), expred_core::EngineError>(())
//! ```

use crate::error::EngineError;
use crate::optimize::CorrelationModel;
use crate::persistence::{PersistLayer, PersistSessionStats};
use crate::pipeline::{IntelSampleConfig, RunOutcome};
use crate::query::QuerySpec;
use crate::request::{InfeasiblePolicy, QueryRequest};
use crate::result_memo::{ResultMemoStats, ShardedResultMemo};
use crate::sampling::SampleSizeRule;
use crate::strategy::StrategyIdentity;
use expred_exec::{
    AdaptiveController, CacheStats, CacheStore, ExecContext, Executor, SelectivityTracker,
    Sequential, SpillSink,
};
use expred_persist::{PersistConfig, PersistError, PersistStore};
use expred_stats::hash::Fnv64;
use expred_table::datasets::Dataset;
use expred_table::{DerivedCache, DerivedCacheStats};
use expred_udf::{CostCounts, CostTracker};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Default bound on memoized whole-query outcomes.
pub const DEFAULT_RESULT_MEMO_CAPACITY: usize = 1024;

/// The legacy closed-world request enum — every built-in pipeline in a
/// hashable form.
///
/// **Deprecated as the primary surface:** new code should construct a
/// [`QueryRequest`] (open [`crate::strategy::Strategy`] set, typed
/// errors) and call [`QueryEngine::submit`]. The enum remains as the
/// [`QueryEngine::run`] compatibility surface and converts loss-lessly
/// via [`QueryRequest::from_query`]; both routes produce the same memo
/// identity, so mixed legacy/new traffic shares one result memo.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// The paper's main algorithm ([`crate::pipeline::run_intel_sample_ctx`]).
    IntelSample(IntelSampleConfig),
    /// The naive β-fraction baseline ([`crate::pipeline::run_naive_ctx`]).
    Naive(QuerySpec),
    /// The perfect-information lower bound ([`crate::pipeline::run_optimal_ctx`]).
    Optimal {
        /// Accuracy contract.
        spec: QuerySpec,
        /// Predictor column with free exact selectivities.
        predictor: String,
    },
    /// The parameter-free adaptive pipeline
    /// ([`crate::adaptive::run_intel_sample_adaptive_ctx`]).
    Adaptive {
        /// Accuracy contract.
        spec: QuerySpec,
        /// Estimate-correlation model.
        corr: CorrelationModel,
        /// Predictor column.
        predictor: String,
    },
    /// The §4.2 iterative estimate/exploit pipeline
    /// ([`crate::adaptive::run_intel_sample_iterative_ctx`]).
    Iterative {
        /// Accuracy contract.
        spec: QuerySpec,
        /// Estimate-correlation model.
        corr: CorrelationModel,
        /// Predictor column.
        predictor: String,
        /// Initial sampling rule.
        rule: SampleSizeRule,
        /// Number of estimate/exploit rounds.
        rounds: usize,
    },
    /// The `Learning` ML baseline ([`crate::baselines::run_learning_ctx`]).
    Learning(QuerySpec),
    /// The `Multiple` ML baseline ([`crate::baselines::run_multiple_ctx`]).
    Multiple {
        /// Accuracy contract.
        spec: QuerySpec,
        /// Number of imputed completions.
        imputations: usize,
    },
}

/// Session-level statistics beyond the cost counters.
///
/// # Snapshot consistency
///
/// [`QueryEngine::stats`] reads the underlying atomics in an order that
/// guarantees `result_hits <= queries` in every snapshot, even while
/// other threads are mid-`run`: the hit counter is incremented *after*
/// its query counter (release), and the snapshot loads `result_hits`
/// *before* `queries` (acquire), so any observed hit's query increment is
/// observed too. Both counters are monotone; a snapshot may trail
/// in-flight queries but never invents or loses events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries served, including memoized repeats.
    pub queries: u64,
    /// Queries answered entirely from the result memo.
    pub result_hits: u64,
    /// Queries answered by joining an identical in-flight run (cold-race
    /// suppression): the arrival parked until the leader finished and
    /// shared its outcome, charging the session nothing.
    pub dedup_joins: u64,
}

impl EngineStats {
    /// The snapshot as named counters, in stable declaration order — the
    /// serialization-ready view the `/metrics` endpoint and the bench
    /// artifacts share (render with [`expred_stats::json::counters_to_json`]
    /// or [`expred_stats::json::counters_to_text`]).
    pub fn fields(&self) -> [(&'static str, u64); 3] {
        [
            ("queries", self.queries),
            ("result_hits", self.result_hits),
            ("dedup_joins", self.dedup_joins),
        ]
    }
}

/// The engine's live counters behind [`EngineStats`] snapshots.
#[derive(Debug, Default)]
struct AtomicEngineStats {
    queries: AtomicU64,
    result_hits: AtomicU64,
    dedup_joins: AtomicU64,
}

impl AtomicEngineStats {
    fn snapshot(&self) -> EngineStats {
        // Load order is the consistency guarantee: see [`EngineStats`] —
        // both free-ride counters load before their query increments.
        let dedup_joins = self.dedup_joins.load(Ordering::Acquire);
        let result_hits = self.result_hits.load(Ordering::Acquire);
        let queries = self.queries.load(Ordering::Acquire);
        EngineStats {
            queries,
            result_hits,
            dedup_joins,
        }
    }
}

/// The full identity of one memoized request. Stored alongside the
/// outcome and compared on every hit, so a 64-bit hash collision can
/// never serve one query's answers as another's. Strategy identity is
/// the full [`StrategyIdentity`] byte stream, so open (out-of-crate)
/// strategies get the same collision-proof verification as built-ins.
#[derive(Debug, Clone, PartialEq)]
struct ResultKey {
    table: u64,
    version: u64,
    seed: u64,
    strategy: StrategyIdentity,
}

impl ResultKey {
    /// The 64-bit memo/waiter-table key for this identity.
    fn hash64(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.table);
        h.write_u64(self.version);
        h.write_u64(self.seed);
        h.write_u64(self.strategy.digest64());
        h.finish()
    }
}

/// Where one in-flight request stands, as seen by its followers.
#[derive(Debug)]
enum FlightState {
    /// The leader is still executing the pipeline.
    Running,
    /// The leader finished; followers clone this outcome.
    Done(RunOutcome),
    /// The leader unwound without an outcome; followers run themselves.
    Aborted,
}

/// One entry of the cold-race waiter table: the leader's registration
/// that identical arrivals park on.
#[derive(Debug)]
struct InFlight {
    /// Full request identity — a hash-colliding *different* request must
    /// never join this flight.
    identity: ResultKey,
    state: Mutex<FlightState>,
    finished: Condvar,
}

impl InFlight {
    fn new(identity: ResultKey) -> Self {
        Self {
            identity,
            state: Mutex::new(FlightState::Running),
            finished: Condvar::new(),
        }
    }

    /// Parks until the leader resolves the flight; `None` means the
    /// leader aborted and the caller should execute for itself.
    fn wait(&self) -> Option<RunOutcome> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &*state {
                FlightState::Running => {
                    state = self.finished.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                FlightState::Done(outcome) => return Some(outcome.clone()),
                FlightState::Aborted => return None,
            }
        }
    }

    fn resolve(&self, resolution: FlightState) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(*state, FlightState::Running) {
            *state = resolution;
        }
        drop(state);
        self.finished.notify_all();
    }
}

/// Unregisters a leader's flight when its `run` frame ends — normally
/// *after* the outcome is published, but also on unwind, where it flips
/// the flight to `Aborted` so followers never park forever.
struct FlightGuard<'a> {
    waiters: &'a Mutex<HashMap<u64, Arc<InFlight>>>,
    key: u64,
    flight: Arc<InFlight>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        {
            let mut waiters = self.waiters.lock().unwrap_or_else(|e| e.into_inner());
            if let Entry::Occupied(entry) = waiters.entry(self.key) {
                if Arc::ptr_eq(entry.get(), &self.flight) {
                    entry.remove();
                }
            }
        }
        // No-op if the leader already resolved `Done`; on unwind this is
        // what releases the followers.
        self.flight.resolve(FlightState::Aborted);
    }
}

/// A long-lived query session: one executor, one cross-query cache, one
/// result memo, many queries — and many worker threads.
///
/// `Send + Sync` with `run(&self)`: share one engine behind an `Arc` (or
/// a scoped-thread borrow) and call it from every worker directly. See
/// the module docs for the exact concurrency guarantees.
pub struct QueryEngine {
    executor: Box<dyn Executor>,
    store: CacheStore,
    session: CostTracker,
    results: ShardedResultMemo<ResultKey, RunOutcome>,
    udf_latency: Option<Duration>,
    stats: AtomicEngineStats,
    /// Shared per-probe latency EWMA: every query's drains teach it, and
    /// it sizes every planner's slices (see [`AdaptiveController`]).
    adaptive: AdaptiveController,
    /// Cold-race waiter table: result-memo hash -> in-flight run.
    inflight: Mutex<HashMap<u64, Arc<InFlight>>>,
    /// Session memo of derived per-column artifacts (group partitions,
    /// encoding dictionaries), keyed by `(table id, version, column)`.
    derived: DerivedCache,
    /// Observed per-`(udf, table version)` pass rates, fed by every fresh
    /// audited evaluation and read by the expression optimizer
    /// ([`crate::strategy::ExprScan::optimized`]). Statistics, not cached
    /// answers: [`QueryEngine::clear_caches`] leaves them alone.
    selectivity: SelectivityTracker,
    /// Durable persistence bridge ([`QueryEngine::with_persistence`]):
    /// spills fresh answers to a WAL-backed store and rehydrates them —
    /// version-checked — on the first submit over each table state.
    /// `None` (the default) keeps the engine fully in-memory.
    persist: Option<Arc<PersistLayer>>,
}

// The `&self + Sync` contract is the point of the engine; if a field
// change ever silently broke it, every serving deployment would stop
// compiling somewhere far less obvious than here.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryEngine>()
};

impl QueryEngine {
    /// An engine on the [`Sequential`] backend with default capacities.
    pub fn new() -> Self {
        Self::with_executor(Box::new(Sequential))
    }

    /// An engine running UDF batches through `executor`.
    pub fn with_executor(executor: Box<dyn Executor>) -> Self {
        Self {
            executor,
            store: CacheStore::new(),
            session: CostTracker::new(),
            results: ShardedResultMemo::with_capacity(DEFAULT_RESULT_MEMO_CAPACITY),
            udf_latency: None,
            stats: AtomicEngineStats::default(),
            adaptive: AdaptiveController::new(),
            inflight: Mutex::new(HashMap::new()),
            derived: DerivedCache::new(),
            selectivity: SelectivityTracker::new(),
            persist: None,
        }
    }

    /// An engine on a machine-sized persistent [`expred_exec::WorkerPool`]
    /// — the serving default: no per-batch thread spawns, work-stealing
    /// chunking, and the adaptive batch window sized by this engine's
    /// latency model.
    pub fn pooled() -> Self {
        Self::with_executor(Box::new(expred_exec::WorkerPool::new()))
    }

    /// Replaces the row-tier cache with one bounded at `capacity` entries
    /// per namespace (the TTL and persistence wiring, if any, carry
    /// over).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        let ttl = self.store.ttl();
        self.store = CacheStore::with_capacity(capacity);
        self.store.set_ttl(ttl);
        if let Some(layer) = &self.persist {
            self.store
                .set_spill(Some(Arc::clone(layer) as Arc<dyn SpillSink>));
        }
        self
    }

    /// Bounds the staleness of row-tier answers: a cache namespace older
    /// than `ttl` is dropped on next borrow ([`CacheStats::ttl_expirations`]).
    /// With persistence wired, rehydrated namespaces carry the age of
    /// their oldest persisted answer, so the bound holds across restarts
    /// rather than resetting each boot.
    pub fn with_cache_ttl(self, ttl: Duration) -> Self {
        self.store.set_ttl(Some(ttl));
        self
    }

    /// Attaches a durable persistence tier rooted at `config`'s
    /// directory, recovering whatever a previous process left there.
    ///
    /// From this point on, every fresh `(udf, table, version, row) →
    /// answer` the session pays `o_e` for is offered to a WAL-backed
    /// store (asynchronously — the hot path never blocks on disk), and
    /// the first submit over each table state rehydrates matching
    /// persisted namespaces into the row tier, so a restarted process
    /// re-serves previously-paid answers at zero `o_e`. Matching is by
    /// *(schema fingerprint, content version)* — both process-independent
    /// — so a mutated or different table can never be served another
    /// table's answers. [`QueryEngine::clear_caches`] tombstones the
    /// durable tier along with the in-memory ones.
    pub fn with_persistence(mut self, config: PersistConfig) -> Result<Self, PersistError> {
        let store = PersistStore::open(config)?;
        let layer = Arc::new(PersistLayer::new(store));
        self.store
            .set_spill(Some(Arc::clone(&layer) as Arc<dyn SpillSink>));
        self.persist = Some(layer);
        Ok(self)
    }

    /// Bounds the query-tier result memo (0 disables it). The effective
    /// bound may round down slightly to divide evenly across stripes
    /// ([`ShardedResultMemo::with_capacity`]).
    pub fn with_result_capacity(mut self, capacity: usize) -> Self {
        self.results = ShardedResultMemo::with_capacity(capacity);
        self
    }

    /// Bounds the derived-data cache (group partitions, encoding
    /// dictionaries) at `capacity` entries; 0 disables retention, so
    /// every query re-derives (useful for measuring the cache's worth).
    pub fn with_derived_capacity(mut self, capacity: usize) -> Self {
        self.derived = DerivedCache::with_capacity(capacity);
        self
    }

    /// Adds an artificial latency to every fresh UDF evaluation this
    /// engine performs — a load-testing knob: answers, cache identities,
    /// and audited counts are all unaffected.
    pub fn with_udf_latency(mut self, latency: Duration) -> Self {
        self.udf_latency = (!latency.is_zero()).then_some(latency);
        self
    }

    /// The execution context this engine runs queries under — exposed so
    /// callers can drive the lower-level `*_ctx` entry points (or their
    /// own invokers) inside this session's cache, from any thread.
    pub fn context(&self) -> ExecContext<'_> {
        let ctx = ExecContext::new(self.executor.as_ref())
            .with_cache(&self.store)
            .with_adaptive(&self.adaptive)
            .with_derived(&self.derived)
            .with_selectivity(&self.selectivity);
        match self.udf_latency {
            Some(latency) => ctx.with_udf_latency(latency),
            None => ctx,
        }
    }

    /// The engine's shared batch-window controller (diagnostics: its
    /// latency estimate and the window it would size today).
    pub fn adaptive(&self) -> &AdaptiveController {
        &self.adaptive
    }

    /// The session's observed per-leaf pass rates (diagnostics, and the
    /// statistics behind [`crate::strategy::ExprScan::optimized`]).
    pub fn selectivity(&self) -> &SelectivityTracker {
        &self.selectivity
    }

    /// Serves one request — the engine's primary entry point. Callable
    /// from any thread; see the module docs for concurrency semantics.
    ///
    /// The request's [`crate::strategy::Strategy`] is validated first
    /// (bad input surfaces as [`EngineError`] before any UDF money is
    /// spent and before the request is counted). An identical request —
    /// same dataset state, same strategy identity, same seed — returns
    /// the memoized [`RunOutcome`] (its `counts` describe the original
    /// run) and charges nothing new to the session. A fresh request runs
    /// the strategy against the shared row cache and folds its bill into
    /// [`QueryEngine::session_counts`]. Two threads racing on the
    /// identical fresh request execute it once: the first becomes the
    /// leader, the second parks on the in-flight waiter table and shares
    /// the leader's outcome ([`EngineStats::dedup_joins`]).
    ///
    /// Under [`InfeasiblePolicy::Error`], an outcome whose plan fell back
    /// to evaluate-everything is reported as [`EngineError::Infeasible`]
    /// (the fallback outcome itself is still memoized — see the policy's
    /// docs).
    pub fn submit(&self, ds: &Dataset, req: &QueryRequest) -> Result<RunOutcome, EngineError> {
        let strategy = req.strategy();
        strategy.validate(ds)?;
        // With persistence wired: register the table's durable identity
        // and, once per (table, version), rehydrate persisted answers
        // into the row tier before any evaluation is planned.
        if let Some(layer) = &self.persist {
            layer.register(ds, &self.store, &self.selectivity);
        }
        // `queries` before the memo probe, `result_hits` after the hit:
        // this increment order is what makes stats snapshots consistent.
        self.stats.queries.fetch_add(1, Ordering::AcqRel);
        let identity = ResultKey {
            table: ds.table.id().as_u64(),
            version: ds.table.version(),
            seed: req.seed(),
            strategy: StrategyIdentity::of(strategy),
        };
        let key = identity.hash64();
        let outcome = self.serve(ds, req, key, identity)?;
        if req.infeasible_policy() == InfeasiblePolicy::Error && !outcome.plan_feasible {
            return Err(EngineError::Infeasible {
                strategy: strategy.name().to_owned(),
            });
        }
        Ok(outcome)
    }

    /// The memo / cold-race / fresh-execution core of [`QueryEngine::submit`].
    fn serve(
        &self,
        ds: &Dataset,
        req: &QueryRequest,
        key: u64,
        identity: ResultKey,
    ) -> Result<RunOutcome, EngineError> {
        // The memo verifies the full identity: a colliding key is
        // treated as a miss, never served.
        if let Some(hit) = self.results.get(key, &identity) {
            self.stats.result_hits.fetch_add(1, Ordering::AcqRel);
            return Ok(hit);
        }
        // Cold-race suppression: register as leader, or join an
        // identity-verified identical in-flight run as a follower. A hash
        // collision with a *different* in-flight request runs solo —
        // duplicated work can only be saved, never substituted.
        let flight = {
            let mut waiters = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            match waiters.entry(key) {
                Entry::Occupied(entry) if entry.get().identity == identity => {
                    Err(Some(Arc::clone(entry.get())))
                }
                Entry::Occupied(_) => Err(None),
                Entry::Vacant(slot) => {
                    let flight = Arc::new(InFlight::new(identity.clone()));
                    slot.insert(Arc::clone(&flight));
                    Ok(flight)
                }
            }
        };
        match flight {
            Ok(flight) => {
                // Leader. The guard unregisters the flight when this
                // frame ends — and aborts it if the pipeline unwinds (or
                // the strategy errors), so followers never park forever.
                let guard = FlightGuard {
                    waiters: &self.inflight,
                    key,
                    flight: Arc::clone(&flight),
                };
                // Re-probe the memo: our earlier miss may be stale (a
                // previous leader published and unregistered between our
                // probe and our registration), and re-running a memoized
                // request would waste the whole pipeline.
                if let Some(hit) = self.results.get(key, &identity) {
                    self.stats.result_hits.fetch_add(1, Ordering::AcqRel);
                    flight.resolve(FlightState::Done(hit.clone()));
                    drop(guard);
                    return Ok(hit);
                }
                let outcome = self.execute_fresh(ds, req, key, identity)?;
                // Publish to the memo first, then release followers,
                // then (via the guard) unregister: an arrival in any
                // window finds the answer somewhere.
                flight.resolve(FlightState::Done(outcome.clone()));
                drop(guard);
                Ok(outcome)
            }
            Err(Some(flight)) => match flight.wait() {
                Some(outcome) => {
                    self.stats.dedup_joins.fetch_add(1, Ordering::AcqRel);
                    Ok(outcome)
                }
                // The leader aborted; pay full price ourselves.
                None => self.execute_fresh(ds, req, key, identity),
            },
            Err(None) => self.execute_fresh(ds, req, key, identity),
        }
    }

    /// Serves one query through the legacy closed [`Query`] enum.
    ///
    /// **Deprecated (panicking variant):** a thin wrapper over
    /// [`QueryEngine::submit`] via [`QueryRequest::from_query`] —
    /// byte-identical outcomes, same memo identities — that panics where
    /// `submit` would return an [`EngineError`]. Kept for source
    /// compatibility; new code should call `submit`.
    pub fn run(&self, ds: &Dataset, query: &Query, seed: u64) -> RunOutcome {
        self.submit(ds, &QueryRequest::from_query(query).with_seed(seed))
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs the strategy for one non-memoized request, folds its bill
    /// into the session, and publishes the outcome to the result memo.
    /// A strategy error is propagated without billing or memoizing.
    fn execute_fresh(
        &self,
        ds: &Dataset,
        req: &QueryRequest,
        key: u64,
        identity: ResultKey,
    ) -> Result<RunOutcome, EngineError> {
        let outcome = {
            let ctx = self.context();
            req.strategy().execute(ds, req.seed(), &ctx)?
        };
        self.session.absorb(&outcome.counts);
        self.results.insert(key, identity, outcome.clone());
        Ok(outcome)
    }

    /// Cumulative audited counts across every non-memoized query served.
    pub fn session_counts(&self) -> CostCounts {
        self.session.snapshot()
    }

    /// Row-tier cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.store.stats()
    }

    /// Session statistics (queries served, result-memo hits) as a
    /// consistent snapshot — see [`EngineStats`].
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot()
    }

    /// Query-tier result-memo statistics (hits, misses, collision
    /// rejects, evictions).
    pub fn result_memo_stats(&self) -> ResultMemoStats {
        self.results.stats()
    }

    /// The shared row-tier store (e.g. for explicit invalidation).
    pub fn store(&self) -> &CacheStore {
        &self.store
    }

    /// Derived-data cache statistics (partition/dictionary reuse).
    pub fn derived_stats(&self) -> DerivedCacheStats {
        self.derived.stats()
    }

    /// Persistence-tier statistics, if persistence is wired
    /// ([`QueryEngine::with_persistence`]); `None` on in-memory engines.
    pub fn persist_stats(&self) -> Option<PersistSessionStats> {
        self.persist.as_ref().map(|layer| layer.session_stats())
    }

    /// Pushes the session's durable state to disk and waits for it:
    /// re-offers every live row-tier entry (catching answers whose table
    /// was unregistered at insert time; already-persisted ones
    /// deduplicate to no-ops), writes the current selectivity counters
    /// through, compacts if any WAL record was ever shed (a shed record
    /// lives only in the store's in-memory index — re-offers dedup
    /// against the index without re-enqueuing, so only a snapshot of the
    /// index gets it to disk), and blocks until everything accepted so
    /// far is fsynced. A no-op without persistence.
    pub fn flush_persistence(&self) -> Result<(), PersistError> {
        let Some(layer) = &self.persist else {
            return Ok(());
        };
        self.store
            .for_each_entry(|namespace, row, answer| layer.spill(namespace, row, answer));
        layer.flush_selectivity(&self.selectivity);
        if layer.store().stats().shed > 0 {
            layer.store().compact()?;
        }
        layer.store().sync()
    }

    /// The session's derived-data cache (e.g. for warming it outside the
    /// engine's own entry points).
    pub fn derived(&self) -> &DerivedCache {
        &self.derived
    }

    /// Drops both reuse tiers, keeping the executor and counters.
    ///
    /// # Semantics under concurrent `run`s
    ///
    /// Safe to call from any thread at any time. Every entry present in
    /// either tier when the call starts is dropped. Queries in flight are
    /// unaffected beyond losing cheap answers: an invoker that already
    /// borrowed its [`expred_exec::CacheHandle`] keeps a private `Arc` to
    /// the detached namespace (its own read-your-writes view stays
    /// intact), and whatever an in-flight query inserts *after* the clear
    /// is a freshly computed, correct entry for the current table
    /// version — never a resurrection of cleared state. There is no
    /// staleness hazard to begin with: both tiers key by table version
    /// and full request identity, so the worst post-clear outcome is
    /// paying full price once more.
    ///
    /// The selectivity tracker is deliberately *not* cleared: it holds
    /// statistics, not cached answers — dropping cached rows never
    /// invalidates what was observed about the data, and a cleared-cache
    /// session should keep planning with everything it has learned.
    ///
    /// With persistence wired, the durable tier is tombstoned too —
    /// synchronously, via an immediate compaction — so a clear followed
    /// by a restart cannot resurrect the cleared answers from disk.
    /// (Persisted selectivity counters are cleared along with the rows;
    /// the session's in-memory counters survive and are re-persisted on
    /// the next flush.)
    pub fn clear_caches(&self) {
        self.store.clear();
        self.results.clear();
        self.derived.clear();
        if let Some(layer) = &self.persist {
            // Best-effort: an IO failure here leaves the in-memory tiers
            // cleared and the durable tier intact (it will be tombstoned
            // again by the next clear or superseded by future snapshots).
            let _ = layer.store().tombstone_all();
        }
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        // Selectivity counters only reach the store on explicit flushes;
        // catch whatever the session learned since the last one. Row
        // answers need no help here: they were offered as they were
        // cached, and `PersistStore`'s own Drop drains and fsyncs the
        // WAL.
        if let Some(layer) = &self.persist {
            layer.flush_selectivity(&self.selectivity);
        }
    }
}

impl Default for QueryEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PredictorChoice;
    use expred_table::datasets::{DatasetSpec, PROSPER};

    fn small_prosper(seed: u64) -> Dataset {
        Dataset::generate(
            DatasetSpec {
                rows: 3_000,
                ..PROSPER
            },
            seed,
        )
    }

    fn intel_query() -> Query {
        Query::IntelSample(IntelSampleConfig::experiment1(PredictorChoice::Fixed(
            "grade".into(),
        )))
    }

    #[test]
    fn identical_query_is_memoized_and_free() {
        let ds = small_prosper(1);
        let engine = QueryEngine::new();
        let first = engine.run(&ds, &intel_query(), 5);
        let after_first = engine.session_counts();
        let again = engine.run(&ds, &intel_query(), 5);
        assert_eq!(first.returned, again.returned);
        assert_eq!(first.counts, again.counts);
        assert_eq!(
            engine.session_counts(),
            after_first,
            "a memoized repeat charges nothing"
        );
        assert_eq!(engine.stats().result_hits, 1);
        assert_eq!(engine.stats().queries, 2);
    }

    #[test]
    fn first_run_matches_the_legacy_pipeline_exactly() {
        let ds = small_prosper(2);
        let engine = QueryEngine::new();
        let engine_out = engine.run(&ds, &intel_query(), 9);
        let legacy = crate::pipeline::run_intel_sample(
            &ds,
            &IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into())),
            9,
        );
        assert_eq!(engine_out.returned, legacy.returned);
        assert_eq!(engine_out.counts.evaluated, legacy.counts.evaluated);
        assert_eq!(engine_out.counts.retrieved, legacy.counts.retrieved);
        assert_eq!(engine_out.cost, legacy.cost);
        assert_eq!(engine_out.counts.reuse_hits, 0, "cold session, no reuse");
    }

    #[test]
    fn overlapping_queries_reuse_rows() {
        let ds = small_prosper(3);
        let engine = QueryEngine::new();
        let spec = QuerySpec::paper_default();
        engine.run(&ds, &Query::Naive(spec), 1);
        // Same query, different seed: different random β-fraction, heavy
        // overlap with the first one's rows.
        let second = engine.run(&ds, &Query::Naive(spec), 2);
        assert!(
            second.counts.reuse_hits > 0,
            "overlapping workload must reuse"
        );
        let cold = crate::pipeline::run_naive(&ds, &spec, 2);
        assert_eq!(
            second.returned, cold.returned,
            "reuse must not change answers"
        );
        assert!(
            second.counts.evaluated < cold.counts.evaluated,
            "warm {} vs cold {}",
            second.counts.evaluated,
            cold.counts.evaluated
        );
        assert_eq!(
            second.counts.evaluated + second.counts.reuse_hits,
            cold.counts.evaluated,
            "every demanded row is either fresh or reused"
        );
    }

    #[test]
    fn different_seeds_and_specs_are_distinct_memo_keys() {
        let ds = small_prosper(4);
        let engine = QueryEngine::new();
        let spec = QuerySpec::paper_default();
        engine.run(&ds, &Query::Naive(spec), 1);
        engine.run(&ds, &Query::Naive(spec), 2);
        let other = QuerySpec::new(0.7, 0.7, 0.8, spec.cost);
        engine.run(&ds, &Query::Naive(other), 1);
        assert_eq!(engine.stats().result_hits, 0);
        assert_eq!(engine.stats().queries, 3);
    }

    #[test]
    fn result_capacity_zero_disables_the_memo() {
        let ds = small_prosper(5);
        let engine = QueryEngine::new().with_result_capacity(0);
        let spec = QuerySpec::paper_default();
        let a = engine.run(&ds, &Query::Naive(spec), 1);
        let b = engine.run(&ds, &Query::Naive(spec), 1);
        assert_eq!(engine.stats().result_hits, 0);
        // The row tier still answers everything: zero fresh evaluations.
        assert_eq!(b.counts.evaluated, 0);
        assert_eq!(b.counts.reuse_hits, a.counts.evaluated);
        assert_eq!(a.returned, b.returned);
    }

    #[test]
    fn every_query_kind_runs_through_the_engine() {
        let ds = small_prosper(6);
        let spec = QuerySpec::paper_default();
        let engine = QueryEngine::new();
        let queries = [
            intel_query(),
            Query::Naive(spec),
            Query::Optimal {
                spec,
                predictor: "grade".into(),
            },
            Query::Adaptive {
                spec,
                corr: CorrelationModel::Independent,
                predictor: "grade".into(),
            },
            Query::Iterative {
                spec,
                corr: CorrelationModel::Independent,
                predictor: "grade".into(),
                rule: SampleSizeRule::Fraction(0.05),
                rounds: 2,
            },
        ];
        for (i, q) in queries.iter().enumerate() {
            let out = engine.run(&ds, q, 100 + i as u64);
            assert!(!out.returned.is_empty(), "query {i} returned nothing");
        }
        assert_eq!(engine.stats().queries, queries.len() as u64);
        assert!(engine.cache_stats().insertions > 0);
        // Later queries benefit from earlier ones' evaluations.
        assert!(engine.session_counts().reuse_hits > 0);
    }

    #[test]
    fn identical_query_storm_is_billed_once() {
        // 8 threads, one engine, the identical fresh request: cold-race
        // suppression must let exactly one thread execute (one o_e bill)
        // while everyone returns the identical outcome.
        let ds = small_prosper(8);
        let spec = QuerySpec::paper_default();
        // 100µs per fresh evaluation keeps the leader in flight long
        // enough that the storm genuinely races instead of serially
        // hitting the result memo.
        let engine = QueryEngine::new().with_udf_latency(Duration::from_micros(100));
        let reference = {
            let probe = QueryEngine::new();
            probe.run(&ds, &Query::Naive(spec), 3)
        };
        // A barrier makes the storm simultaneous: every thread misses the
        // memo together, one becomes leader, seven park on its flight.
        let barrier = std::sync::Barrier::new(8);
        let outcomes: Vec<RunOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        engine.run(&ds, &Query::Naive(spec), 3)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for outcome in &outcomes {
            assert_eq!(outcome.returned, reference.returned);
            assert_eq!(outcome.counts, reference.counts);
        }
        assert_eq!(
            engine.session_counts().evaluated,
            reference.counts.evaluated,
            "the storm must be billed exactly one run's o_e"
        );
        let stats = engine.stats();
        assert_eq!(stats.queries, 8);
        assert_eq!(
            stats.result_hits + stats.dedup_joins,
            7,
            "every non-leader must ride the memo or the waiter table"
        );
        assert!(
            engine.inflight.lock().unwrap().is_empty(),
            "the waiter table must drain"
        );
    }

    #[test]
    fn dedup_survives_a_disabled_result_memo() {
        // With the result memo off, the waiter table is the only dedup
        // tier — concurrent identical requests still bill once; serial
        // repeats legitimately re-execute (their row-tier reuse makes
        // them cheap, not free).
        let ds = small_prosper(9);
        let spec = QuerySpec::paper_default();
        let engine = QueryEngine::new()
            .with_result_capacity(0)
            .with_udf_latency(Duration::from_micros(100));
        let outcomes: Vec<RunOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| engine.run(&ds, &Query::Naive(spec), 5)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for outcome in &outcomes[1..] {
            assert_eq!(outcome.returned, outcomes[0].returned);
        }
        let stats = engine.stats();
        assert_eq!(stats.result_hits, 0, "the memo is off");
        // Exactly one run paid fresh evaluations: concurrent identical
        // arrivals joined the leader, and any post-completion arrival
        // re-ran against the warm row tier (zero fresh, all reuse).
        let fresh = outcomes.iter().map(|o| o.counts.evaluated).max().unwrap();
        assert!(fresh > 0, "someone must have paid the cold run");
        assert_eq!(
            engine.session_counts().evaluated,
            fresh,
            "the storm's total fresh o_e is one cold run's"
        );
    }

    #[test]
    fn clear_caches_forces_full_price_again() {
        let ds = small_prosper(7);
        let spec = QuerySpec::paper_default();
        let engine = QueryEngine::new();
        let first = engine.run(&ds, &Query::Naive(spec), 1);
        engine.clear_caches();
        let again = engine.run(&ds, &Query::Naive(spec), 1);
        assert_eq!(again.counts.evaluated, first.counts.evaluated);
        assert_eq!(again.counts.reuse_hits, 0);
    }

    #[test]
    fn repeat_queries_hit_the_derived_cache() {
        let ds = small_prosper(21);
        let engine = QueryEngine::new();
        // Different seeds: the result memo misses, so the pipeline runs in
        // full both times — but the "grade" partition is derived once.
        let first = engine.run(&ds, &intel_query(), 1);
        let after_first = engine.derived_stats();
        assert!(after_first.misses >= 1, "cold session derives fresh");
        let again = engine.run(&ds, &intel_query(), 2);
        let after_second = engine.derived_stats();
        assert_eq!(
            after_second.misses, after_first.misses,
            "the repeat must not re-group"
        );
        assert!(after_second.hits > after_first.hits, "the repeat reuses");
        // Both runs are real answers over the same 3k-row table; the
        // cache only changed who derived the partition, not the query.
        assert_eq!(first.num_groups, again.num_groups);
    }

    #[test]
    fn push_row_forces_a_derived_miss() {
        let mut ds = small_prosper(22);
        let engine = QueryEngine::new();
        engine.run(&ds, &intel_query(), 1);
        let warm = engine.derived_stats();
        // Appending a row bumps the table version: every derived entry
        // keyed to the old version is dead, so the next run must miss.
        let row = ds.table.row(0);
        ds.table.push_row(row).expect("row 0 matches the schema");
        engine.run(&ds, &intel_query(), 1);
        let after_push = engine.derived_stats();
        assert!(
            after_push.misses > warm.misses,
            "a version bump must force re-derivation"
        );
    }

    #[test]
    fn derived_capacity_zero_disables_retention() {
        let ds = small_prosper(23);
        let engine = QueryEngine::new().with_derived_capacity(0);
        engine.run(&ds, &intel_query(), 1);
        engine.run(&ds, &intel_query(), 2);
        let stats = engine.derived_stats();
        assert_eq!(stats.hits, 0, "nothing is retained at capacity 0");
        assert!(stats.misses >= 2);
        assert_eq!(engine.derived().len(), 0);
    }
}
