//! [`QueryEngine`]: the session layer — many queries, one cache.
//!
//! Everything below this module is per-query: pipelines build an invoker,
//! pay `o_e` for every fresh evaluation, and throw the memo away. The
//! engine is what a *serving* deployment holds on to between requests. It
//! owns an [`Executor`] backend and a [`CacheStore`], threads them
//! through every pipeline as one [`ExecContext`], and adds a second
//! reuse tier: a bounded memo of whole query outcomes, so an *identical*
//! repeated request (same table state, same query, same seed) is answered
//! without touching the UDF at all.
//!
//! The two tiers compose:
//!
//! 1. **Row tier** ([`CacheStore`]) — namespaced by `(udf, table id,
//!    table version)`; overlapping-but-different queries stop re-paying
//!    `o_e` for rows any earlier query evaluated.
//! 2. **Query tier** (result memo) — keyed by a fingerprint of the query
//!    request; identical repeats are free and charge zero additional
//!    `o_e`, reported as [`EngineStats::result_hits`].
//!
//! Mutating a table bumps its version, which invalidates both tiers for
//! that table automatically (row namespaces are GCed on next borrow;
//! result keys simply never match again).
//!
//! # Concurrency: one engine, many worker threads
//!
//! [`QueryEngine::run`] takes `&self` and the engine is `Send + Sync`:
//! one long-lived engine — one executor, one [`CacheStore`], one result
//! memo — serves any number of worker threads directly, no outer mutex.
//! Every shared structure is internally synchronized:
//!
//! * the result memo is a lock-striped, capacity-bounded
//!   [`crate::result_memo::ShardedResultMemo`] whose lookups verify the
//!   *full* request identity, so a hash collision (or a racing writer)
//!   can never serve one query's answer as another's;
//! * [`EngineStats`] is kept in atomic counters; [`QueryEngine::stats`]
//!   returns a consistent snapshot (see the type's docs);
//! * the session bill is an atomic [`CostTracker`], so charges from
//!   interleaved queries each land exactly once.
//!
//! **Answer stability.** Cached row answers are always *correct* — the
//! row tier is keyed by `(udf, table id, table version)` and a UDF is
//! deterministic per `(row, version)` — so pipelines whose demand stream
//! is independent of cache state (e.g. [`Query::Naive`]) return
//! byte-identical answers no matter how queries interleave. Pipelines
//! that *branch* on session-known rows (sampling counts them toward its
//! target) remain correct under concurrency but may legitimately pick
//! different sample sets depending on what earlier/overlapping queries
//! already paid for, exactly as they already did across serial session
//! orderings.
//!
//! **Racing duplicates.** Two threads submitting the identical fresh
//! request may both miss the memo and both execute; each pays its own
//! (correct) bill and the memo settles last-writer-wins. This trades a
//! little duplicated work on a cold race for a completely lock-free read
//! path — the memo never holds a lock across a pipeline run.
//!
//! ```
//! use expred_core::engine::{Query, QueryEngine};
//! use expred_core::{IntelSampleConfig, PredictorChoice};
//! use expred_table::datasets::{Dataset, DatasetSpec, PROSPER};
//!
//! let ds = Dataset::generate(DatasetSpec { rows: 2_000, ..PROSPER }, 7);
//! let engine = QueryEngine::new();
//! let query = Query::IntelSample(IntelSampleConfig::experiment1(
//!     PredictorChoice::Fixed("grade".into()),
//! ));
//! let first = engine.run(&ds, &query, 42);
//! // `run` takes `&self`: worker threads share the engine directly.
//! let again = std::thread::scope(|s| {
//!     s.spawn(|| engine.run(&ds, &query, 42)).join().unwrap()
//! });
//! assert_eq!(first.returned, again.returned);
//! // The repeat was answered from the result memo: zero new UDF calls.
//! assert_eq!(engine.session_counts().evaluated, first.counts.evaluated);
//! assert_eq!(engine.stats().result_hits, 1);
//! ```

use crate::adaptive::{run_intel_sample_adaptive_ctx, run_intel_sample_iterative_ctx};
use crate::baselines::{run_learning_ctx, run_multiple_ctx};
use crate::optimize::CorrelationModel;
use crate::pipeline::{
    run_intel_sample_ctx, run_naive_ctx, run_optimal_ctx, IntelSampleConfig, PredictorChoice,
    RunOutcome,
};
use crate::query::QuerySpec;
use crate::result_memo::{ResultMemoStats, ShardedResultMemo};
use crate::sampling::SampleSizeRule;
use expred_exec::{CacheStats, CacheStore, ExecContext, Executor, Sequential};
use expred_stats::hash::Fnv64;
use expred_table::datasets::Dataset;
use expred_udf::{CostCounts, CostTracker};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Default bound on memoized whole-query outcomes.
pub const DEFAULT_RESULT_MEMO_CAPACITY: usize = 1024;

/// One query request an engine can serve — every pipeline the workspace
/// offers, in a hashable, memoizable form.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// The paper's main algorithm ([`run_intel_sample_ctx`]).
    IntelSample(IntelSampleConfig),
    /// The naive β-fraction baseline ([`run_naive_ctx`]).
    Naive(QuerySpec),
    /// The perfect-information lower bound ([`run_optimal_ctx`]).
    Optimal {
        /// Accuracy contract.
        spec: QuerySpec,
        /// Predictor column with free exact selectivities.
        predictor: String,
    },
    /// The parameter-free adaptive pipeline
    /// ([`run_intel_sample_adaptive_ctx`]).
    Adaptive {
        /// Accuracy contract.
        spec: QuerySpec,
        /// Estimate-correlation model.
        corr: CorrelationModel,
        /// Predictor column.
        predictor: String,
    },
    /// The §4.2 iterative estimate/exploit pipeline
    /// ([`run_intel_sample_iterative_ctx`]).
    Iterative {
        /// Accuracy contract.
        spec: QuerySpec,
        /// Estimate-correlation model.
        corr: CorrelationModel,
        /// Predictor column.
        predictor: String,
        /// Initial sampling rule.
        rule: SampleSizeRule,
        /// Number of estimate/exploit rounds.
        rounds: usize,
    },
    /// The `Learning` ML baseline ([`run_learning_ctx`]).
    Learning(QuerySpec),
    /// The `Multiple` ML baseline ([`run_multiple_ctx`]).
    Multiple {
        /// Accuracy contract.
        spec: QuerySpec,
        /// Number of imputed completions.
        imputations: usize,
    },
}

/// Session-level statistics beyond the cost counters.
///
/// # Snapshot consistency
///
/// [`QueryEngine::stats`] reads the underlying atomics in an order that
/// guarantees `result_hits <= queries` in every snapshot, even while
/// other threads are mid-`run`: the hit counter is incremented *after*
/// its query counter (release), and the snapshot loads `result_hits`
/// *before* `queries` (acquire), so any observed hit's query increment is
/// observed too. Both counters are monotone; a snapshot may trail
/// in-flight queries but never invents or loses events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries served, including memoized repeats.
    pub queries: u64,
    /// Queries answered entirely from the result memo.
    pub result_hits: u64,
}

/// The engine's live counters behind [`EngineStats`] snapshots.
#[derive(Debug, Default)]
struct AtomicEngineStats {
    queries: AtomicU64,
    result_hits: AtomicU64,
}

impl AtomicEngineStats {
    fn snapshot(&self) -> EngineStats {
        // Load order is the consistency guarantee: see [`EngineStats`].
        let result_hits = self.result_hits.load(Ordering::Acquire);
        let queries = self.queries.load(Ordering::Acquire);
        EngineStats {
            queries,
            result_hits,
        }
    }
}

/// The full identity of one memoized request. Stored alongside the
/// outcome and compared on every hit, so a 64-bit hash collision can
/// never serve one query's answers as another's.
#[derive(Debug, Clone, PartialEq)]
struct ResultKey {
    table: u64,
    version: u64,
    seed: u64,
    query: Query,
}

/// A long-lived query session: one executor, one cross-query cache, one
/// result memo, many queries — and many worker threads.
///
/// `Send + Sync` with `run(&self)`: share one engine behind an `Arc` (or
/// a scoped-thread borrow) and call it from every worker directly. See
/// the module docs for the exact concurrency guarantees.
pub struct QueryEngine {
    executor: Box<dyn Executor>,
    store: CacheStore,
    session: CostTracker,
    results: ShardedResultMemo<ResultKey, RunOutcome>,
    udf_latency: Option<Duration>,
    stats: AtomicEngineStats,
}

// The `&self + Sync` contract is the point of the engine; if a field
// change ever silently broke it, every serving deployment would stop
// compiling somewhere far less obvious than here.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryEngine>()
};

impl QueryEngine {
    /// An engine on the [`Sequential`] backend with default capacities.
    pub fn new() -> Self {
        Self::with_executor(Box::new(Sequential))
    }

    /// An engine running UDF batches through `executor`.
    pub fn with_executor(executor: Box<dyn Executor>) -> Self {
        Self {
            executor,
            store: CacheStore::new(),
            session: CostTracker::new(),
            results: ShardedResultMemo::with_capacity(DEFAULT_RESULT_MEMO_CAPACITY),
            udf_latency: None,
            stats: AtomicEngineStats::default(),
        }
    }

    /// Replaces the row-tier cache with one bounded at `capacity` entries
    /// per namespace.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.store = CacheStore::with_capacity(capacity);
        self
    }

    /// Bounds the query-tier result memo (0 disables it). The effective
    /// bound may round down slightly to divide evenly across stripes
    /// ([`ShardedResultMemo::with_capacity`]).
    pub fn with_result_capacity(mut self, capacity: usize) -> Self {
        self.results = ShardedResultMemo::with_capacity(capacity);
        self
    }

    /// Adds an artificial latency to every fresh UDF evaluation this
    /// engine performs — a load-testing knob: answers, cache identities,
    /// and audited counts are all unaffected.
    pub fn with_udf_latency(mut self, latency: Duration) -> Self {
        self.udf_latency = (!latency.is_zero()).then_some(latency);
        self
    }

    /// The execution context this engine runs queries under — exposed so
    /// callers can drive the lower-level `*_ctx` entry points (or their
    /// own invokers) inside this session's cache, from any thread.
    pub fn context(&self) -> ExecContext<'_> {
        let ctx = ExecContext::new(self.executor.as_ref()).with_cache(&self.store);
        match self.udf_latency {
            Some(latency) => ctx.with_udf_latency(latency),
            None => ctx,
        }
    }

    /// Serves one query. Callable from any thread — `&self` is the whole
    /// point; see the module docs for concurrency semantics.
    ///
    /// An identical request — same dataset state, same [`Query`], same
    /// seed — returns the memoized [`RunOutcome`] (its `counts` describe
    /// the original run) and charges nothing new to the session. A fresh
    /// request runs the pipeline against the shared row cache and folds
    /// its bill into [`QueryEngine::session_counts`]. Two threads racing
    /// on the identical fresh request may both execute it (each bill is
    /// absorbed; the memo keeps one outcome).
    pub fn run(&self, ds: &Dataset, query: &Query, seed: u64) -> RunOutcome {
        // `queries` before the memo probe, `result_hits` after the hit:
        // this increment order is what makes stats snapshots consistent.
        self.stats.queries.fetch_add(1, Ordering::AcqRel);
        let key = query_key(ds, query, seed);
        let identity = ResultKey {
            table: ds.table.id().as_u64(),
            version: ds.table.version(),
            seed,
            query: query.clone(),
        };
        // The memo verifies the full identity: a colliding key is
        // treated as a miss, never served.
        if let Some(hit) = self.results.get(key, &identity) {
            self.stats.result_hits.fetch_add(1, Ordering::AcqRel);
            return hit;
        }
        let outcome = {
            let ctx = self.context();
            match query {
                Query::IntelSample(cfg) => run_intel_sample_ctx(ds, cfg, seed, &ctx),
                Query::Naive(spec) => run_naive_ctx(ds, spec, seed, &ctx),
                Query::Optimal { spec, predictor } => {
                    run_optimal_ctx(ds, spec, predictor, seed, &ctx)
                }
                Query::Adaptive {
                    spec,
                    corr,
                    predictor,
                } => run_intel_sample_adaptive_ctx(ds, spec, *corr, predictor, seed, &ctx),
                Query::Iterative {
                    spec,
                    corr,
                    predictor,
                    rule,
                    rounds,
                } => run_intel_sample_iterative_ctx(
                    ds, spec, *corr, predictor, *rule, *rounds, seed, &ctx,
                ),
                Query::Learning(spec) => run_learning_ctx(ds, spec, seed, &ctx),
                Query::Multiple { spec, imputations } => {
                    run_multiple_ctx(ds, spec, *imputations, seed, &ctx)
                }
            }
        };
        self.session.absorb(&outcome.counts);
        self.results.insert(key, identity, outcome.clone());
        outcome
    }

    /// Cumulative audited counts across every non-memoized query served.
    pub fn session_counts(&self) -> CostCounts {
        self.session.snapshot()
    }

    /// Row-tier cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.store.stats()
    }

    /// Session statistics (queries served, result-memo hits) as a
    /// consistent snapshot — see [`EngineStats`].
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot()
    }

    /// Query-tier result-memo statistics (hits, misses, collision
    /// rejects, evictions).
    pub fn result_memo_stats(&self) -> ResultMemoStats {
        self.results.stats()
    }

    /// The shared row-tier store (e.g. for explicit invalidation).
    pub fn store(&self) -> &CacheStore {
        &self.store
    }

    /// Drops both reuse tiers, keeping the executor and counters.
    ///
    /// # Semantics under concurrent `run`s
    ///
    /// Safe to call from any thread at any time. Every entry present in
    /// either tier when the call starts is dropped. Queries in flight are
    /// unaffected beyond losing cheap answers: an invoker that already
    /// borrowed its [`expred_exec::CacheHandle`] keeps a private `Arc` to
    /// the detached namespace (its own read-your-writes view stays
    /// intact), and whatever an in-flight query inserts *after* the clear
    /// is a freshly computed, correct entry for the current table
    /// version — never a resurrection of cleared state. There is no
    /// staleness hazard to begin with: both tiers key by table version
    /// and full request identity, so the worst post-clear outcome is
    /// paying full price once more.
    pub fn clear_caches(&self) {
        self.store.clear();
        self.results.clear();
    }
}

impl Default for QueryEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Fingerprints one request: dataset state + query shape + seed.
fn query_key(ds: &Dataset, query: &Query, seed: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(ds.table.id().as_u64());
    h.write_u64(ds.table.version());
    h.write_u64(seed);
    match query {
        Query::IntelSample(cfg) => {
            h.write_u64(1);
            spec_key(&mut h, &cfg.spec);
            rule_key(&mut h, cfg.rule);
            corr_key(&mut h, cfg.corr);
            match &cfg.predictor {
                PredictorChoice::Fixed(col) => {
                    h.write_u64(1);
                    h.write_str(col);
                }
                PredictorChoice::Auto { label_fraction } => {
                    h.write_u64(2);
                    h.write_u64(label_fraction.to_bits());
                }
                PredictorChoice::Virtual {
                    buckets,
                    label_fraction,
                } => {
                    h.write_u64(3);
                    h.write_u64(*buckets as u64);
                    h.write_u64(label_fraction.to_bits());
                }
            }
        }
        Query::Naive(spec) => {
            h.write_u64(2);
            spec_key(&mut h, spec);
        }
        Query::Optimal { spec, predictor } => {
            h.write_u64(3);
            spec_key(&mut h, spec);
            h.write_str(predictor);
        }
        Query::Adaptive {
            spec,
            corr,
            predictor,
        } => {
            h.write_u64(4);
            spec_key(&mut h, spec);
            corr_key(&mut h, *corr);
            h.write_str(predictor);
        }
        Query::Iterative {
            spec,
            corr,
            predictor,
            rule,
            rounds,
        } => {
            h.write_u64(5);
            spec_key(&mut h, spec);
            corr_key(&mut h, *corr);
            h.write_str(predictor);
            rule_key(&mut h, *rule);
            h.write_u64(*rounds as u64);
        }
        Query::Learning(spec) => {
            h.write_u64(6);
            spec_key(&mut h, spec);
        }
        Query::Multiple { spec, imputations } => {
            h.write_u64(7);
            spec_key(&mut h, spec);
            h.write_u64(*imputations as u64);
        }
    }
    h.finish()
}

fn spec_key(h: &mut Fnv64, spec: &QuerySpec) {
    h.write_u64(spec.alpha.to_bits());
    h.write_u64(spec.beta.to_bits());
    h.write_u64(spec.rho.to_bits());
    h.write_u64(spec.cost.retrieve.to_bits());
    h.write_u64(spec.cost.evaluate.to_bits());
}

fn rule_key(h: &mut Fnv64, rule: SampleSizeRule) {
    match rule {
        SampleSizeRule::Fraction(f) => {
            h.write_u64(1);
            h.write_u64(f.to_bits());
        }
        SampleSizeRule::Constant(c) => {
            h.write_u64(2);
            h.write_u64(c as u64);
        }
        SampleSizeRule::TwoThirdPower(p) => {
            h.write_u64(3);
            h.write_u64(p.to_bits());
        }
    }
}

fn corr_key(h: &mut Fnv64, corr: CorrelationModel) {
    h.write_u64(match corr {
        CorrelationModel::Independent => 1,
        CorrelationModel::Unknown => 2,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use expred_table::datasets::{DatasetSpec, PROSPER};

    fn small_prosper(seed: u64) -> Dataset {
        Dataset::generate(
            DatasetSpec {
                rows: 3_000,
                ..PROSPER
            },
            seed,
        )
    }

    fn intel_query() -> Query {
        Query::IntelSample(IntelSampleConfig::experiment1(PredictorChoice::Fixed(
            "grade".into(),
        )))
    }

    #[test]
    fn identical_query_is_memoized_and_free() {
        let ds = small_prosper(1);
        let engine = QueryEngine::new();
        let first = engine.run(&ds, &intel_query(), 5);
        let after_first = engine.session_counts();
        let again = engine.run(&ds, &intel_query(), 5);
        assert_eq!(first.returned, again.returned);
        assert_eq!(first.counts, again.counts);
        assert_eq!(
            engine.session_counts(),
            after_first,
            "a memoized repeat charges nothing"
        );
        assert_eq!(engine.stats().result_hits, 1);
        assert_eq!(engine.stats().queries, 2);
    }

    #[test]
    fn first_run_matches_the_legacy_pipeline_exactly() {
        let ds = small_prosper(2);
        let engine = QueryEngine::new();
        let engine_out = engine.run(&ds, &intel_query(), 9);
        let legacy = crate::pipeline::run_intel_sample(
            &ds,
            &IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into())),
            9,
        );
        assert_eq!(engine_out.returned, legacy.returned);
        assert_eq!(engine_out.counts.evaluated, legacy.counts.evaluated);
        assert_eq!(engine_out.counts.retrieved, legacy.counts.retrieved);
        assert_eq!(engine_out.cost, legacy.cost);
        assert_eq!(engine_out.counts.reuse_hits, 0, "cold session, no reuse");
    }

    #[test]
    fn overlapping_queries_reuse_rows() {
        let ds = small_prosper(3);
        let engine = QueryEngine::new();
        let spec = QuerySpec::paper_default();
        engine.run(&ds, &Query::Naive(spec), 1);
        // Same query, different seed: different random β-fraction, heavy
        // overlap with the first one's rows.
        let second = engine.run(&ds, &Query::Naive(spec), 2);
        assert!(
            second.counts.reuse_hits > 0,
            "overlapping workload must reuse"
        );
        let cold = crate::pipeline::run_naive(&ds, &spec, 2);
        assert_eq!(
            second.returned, cold.returned,
            "reuse must not change answers"
        );
        assert!(
            second.counts.evaluated < cold.counts.evaluated,
            "warm {} vs cold {}",
            second.counts.evaluated,
            cold.counts.evaluated
        );
        assert_eq!(
            second.counts.evaluated + second.counts.reuse_hits,
            cold.counts.evaluated,
            "every demanded row is either fresh or reused"
        );
    }

    #[test]
    fn different_seeds_and_specs_are_distinct_memo_keys() {
        let ds = small_prosper(4);
        let engine = QueryEngine::new();
        let spec = QuerySpec::paper_default();
        engine.run(&ds, &Query::Naive(spec), 1);
        engine.run(&ds, &Query::Naive(spec), 2);
        let other = QuerySpec::new(0.7, 0.7, 0.8, spec.cost);
        engine.run(&ds, &Query::Naive(other), 1);
        assert_eq!(engine.stats().result_hits, 0);
        assert_eq!(engine.stats().queries, 3);
    }

    #[test]
    fn result_capacity_zero_disables_the_memo() {
        let ds = small_prosper(5);
        let engine = QueryEngine::new().with_result_capacity(0);
        let spec = QuerySpec::paper_default();
        let a = engine.run(&ds, &Query::Naive(spec), 1);
        let b = engine.run(&ds, &Query::Naive(spec), 1);
        assert_eq!(engine.stats().result_hits, 0);
        // The row tier still answers everything: zero fresh evaluations.
        assert_eq!(b.counts.evaluated, 0);
        assert_eq!(b.counts.reuse_hits, a.counts.evaluated);
        assert_eq!(a.returned, b.returned);
    }

    #[test]
    fn every_query_kind_runs_through_the_engine() {
        let ds = small_prosper(6);
        let spec = QuerySpec::paper_default();
        let engine = QueryEngine::new();
        let queries = [
            intel_query(),
            Query::Naive(spec),
            Query::Optimal {
                spec,
                predictor: "grade".into(),
            },
            Query::Adaptive {
                spec,
                corr: CorrelationModel::Independent,
                predictor: "grade".into(),
            },
            Query::Iterative {
                spec,
                corr: CorrelationModel::Independent,
                predictor: "grade".into(),
                rule: SampleSizeRule::Fraction(0.05),
                rounds: 2,
            },
        ];
        for (i, q) in queries.iter().enumerate() {
            let out = engine.run(&ds, q, 100 + i as u64);
            assert!(!out.returned.is_empty(), "query {i} returned nothing");
        }
        assert_eq!(engine.stats().queries, queries.len() as u64);
        assert!(engine.cache_stats().insertions > 0);
        // Later queries benefit from earlier ones' evaluations.
        assert!(engine.session_counts().reuse_hits > 0);
    }

    #[test]
    fn clear_caches_forces_full_price_again() {
        let ds = small_prosper(7);
        let spec = QuerySpec::paper_default();
        let engine = QueryEngine::new();
        let first = engine.run(&ds, &Query::Naive(spec), 1);
        engine.clear_caches();
        let again = engine.run(&ds, &Query::Naive(spec), 1);
        assert_eq!(again.counts.evaluated, first.counts.evaluated);
        assert_eq!(again.counts.reuse_hits, 0);
    }
}
