//! The open [`Strategy`] trait and its built-in implementations.
//!
//! A strategy is *how* a query request is answered: which pipeline runs,
//! under which configuration. The trait is object-safe and deliberately
//! small — a name, a fingerprint, a cheap validation pass, and an
//! execution method taking the session's [`ExecContext`] — so new
//! evaluation strategies can be added outside this crate and still enjoy
//! the engine's full session machinery (result memo, cold-race
//! suppression, row-tier cache, adaptive batching).
//!
//! # Identity and the result memo
//!
//! The engine memoizes whole outcomes and deduplicates in-flight runs by
//! *request identity*. A strategy declares its identity by writing every
//! outcome-affecting parameter into a [`Fingerprint`] — an
//! order-significant byte stream. The engine stores the full stream (not
//! just its 64-bit digest) and compares it on every memo hit, so two
//! strategies whose streams differ can never be served each other's
//! answers, even under hash collisions. The contract mirrors
//! [`expred_udf::UdfId`]: write *all* of it, or do not be surprised by
//! sharing. Two `Strategy` implementations that write identical streams
//! (including the [`Strategy::name`] prefix the engine adds) are declared
//! interchangeable.
//!
//! # Built-ins
//!
//! The seven pipelines the workspace grew as free functions are all here
//! as first-class strategies: [`IntelSample`], [`Naive`], [`Optimal`],
//! [`Adaptive`], [`Iterative`], [`Learning`], and [`Multiple`] — plus
//! [`ExprScan`], which evaluates a [`PredicateExpr`] over the whole table
//! through the session cache with cost-ordered short-circuiting.

use crate::adaptive::{run_intel_sample_adaptive_ctx, run_intel_sample_iterative_ctx};
use crate::baselines::{run_learning_ctx, run_multiple_ctx};
use crate::error::EngineError;
use crate::optimize::CorrelationModel;
use crate::pipeline::{
    run_intel_sample_ctx, run_naive_ctx, run_optimal_ctx, IntelSampleConfig, PredictorChoice,
    RunOutcome,
};
use crate::query::QuerySpec;
use crate::sampling::SampleSizeRule;
use expred_exec::ExecContext;
use expred_ml::metrics::PrSummary;
use expred_stats::hash::Fnv64;
use expred_table::datasets::{Dataset, LABEL_COLUMN};
use expred_table::Table;
use expred_udf::{evaluate_expr_batch_ctx, BooleanUdf, CostModel, CostTracker, PredicateExpr};
use std::time::Instant;

/// An order-significant identity stream for one strategy configuration.
///
/// Strategies write every outcome-affecting parameter into it; the
/// engine prefixes the strategy name, keys the result memo by the FNV
/// digest, and stores the full byte stream for collision-proof
/// verification. Writing is append-only and deterministic — no hashing
/// happens until [`Fingerprint::digest64`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Fingerprint {
    bytes: Vec<u8>,
}

impl Fingerprint {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern (`-0.0` and `0.0` are distinct;
    /// any NaN is itself — fine for identity, which wants "the same
    /// request", not numeric equivalence).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Appends a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// stay distinct.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.bytes.extend_from_slice(s.as_bytes());
    }

    /// The FNV-1a digest of the stream so far.
    pub fn digest64(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_bytes(&self.bytes);
        h.finish()
    }

    /// The raw stream.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the recorder into its stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// The stored, comparable identity of one strategy configuration:
/// its name plus its full fingerprint stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyIdentity {
    /// [`Strategy::name`] at fingerprint time.
    pub name: String,
    /// The full [`Fingerprint`] stream.
    pub fingerprint: Vec<u8>,
}

impl StrategyIdentity {
    /// Records `strategy`'s identity.
    pub fn of(strategy: &dyn Strategy) -> Self {
        let mut fp = Fingerprint::new();
        strategy.fingerprint(&mut fp);
        Self {
            name: strategy.name().to_owned(),
            fingerprint: fp.into_bytes(),
        }
    }

    /// Digest folding in the name and the stream — the engine's memo-key
    /// component for this strategy.
    pub fn digest64(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(&self.name);
        h.write_bytes(&self.fingerprint);
        h.finish()
    }
}

/// One way of answering a query request — the open extension point
/// behind [`crate::engine::QueryEngine::submit`].
///
/// Implementations must be deterministic given `(dataset state, seed,
/// fingerprint)`: the engine memoizes outcomes and deduplicates racing
/// identical requests on exactly that identity.
///
/// ```
/// use expred_core::{EngineError, Fingerprint, RunOutcome, Strategy};
/// use expred_exec::ExecContext;
/// use expred_table::datasets::Dataset;
///
/// /// A strategy that returns the first `k` rows without evaluating.
/// struct FirstK(usize);
///
/// impl Strategy for FirstK {
///     fn name(&self) -> &str {
///         "first_k"
///     }
///     fn fingerprint(&self, fp: &mut Fingerprint) {
///         fp.write_u64(self.0 as u64);
///     }
///     fn execute(
///         &self,
///         ds: &Dataset,
///         _seed: u64,
///         _ctx: &ExecContext<'_>,
///     ) -> Result<RunOutcome, EngineError> {
///         let returned: Vec<u32> = (0..self.0.min(ds.table.num_rows()) as u32).collect();
///         Ok(RunOutcome::trivial(returned))
///     }
/// }
/// ```
pub trait Strategy: Send + Sync {
    /// Stable, unique name — the first component of the memo identity
    /// and the label error messages use.
    fn name(&self) -> &str;

    /// Writes every outcome-affecting parameter into `fp` (see the
    /// module docs for the identity contract). The engine adds the
    /// [`Strategy::name`] prefix itself.
    fn fingerprint(&self, fp: &mut Fingerprint);

    /// Cheap request validation against the dataset, run before any UDF
    /// money is spent. The default accepts everything.
    fn validate(&self, _ds: &Dataset) -> Result<(), EngineError> {
        Ok(())
    }

    /// Runs the strategy under the session's execution context.
    fn execute(
        &self,
        ds: &Dataset,
        seed: u64,
        ctx: &ExecContext<'_>,
    ) -> Result<RunOutcome, EngineError>;
}

impl RunOutcome {
    /// An outcome carrying only a returned row set — zero counts, perfect
    /// summary, one group. For strategies (tests, trivial baselines) that
    /// do not run a planned pipeline.
    pub fn trivial(returned: Vec<u32>) -> Self {
        let returned_len = returned.len();
        Self {
            returned,
            counts: Default::default(),
            cost: 0.0,
            summary: PrSummary {
                precision: 1.0,
                recall: 1.0,
                returned: returned_len,
                true_positives: returned_len,
                total_correct: returned_len,
            },
            num_groups: 1,
            compute_seconds: 0.0,
            plan_feasible: true,
        }
    }
}

/// Every column of `table`, for [`EngineError::UnknownColumn`] messages.
fn column_names(table: &Table) -> Vec<String> {
    table
        .schema()
        .fields()
        .iter()
        .map(|f| f.name().to_owned())
        .collect()
}

/// Errors unless `column` exists in `table`.
fn require_column(table: &Table, column: &str) -> Result<(), EngineError> {
    if table.column(column).is_some() {
        Ok(())
    } else {
        Err(EngineError::UnknownColumn {
            column: column.to_owned(),
            available: column_names(table),
        })
    }
}

/// Shared validation for every built-in pipeline: the label oracle
/// column must exist (all seven evaluate it as the expensive UDF).
fn require_label_column(ds: &Dataset) -> Result<(), EngineError> {
    require_column(&ds.table, LABEL_COLUMN)
}

fn validate_rule(rule: SampleSizeRule) -> Result<(), EngineError> {
    let ok = match rule {
        SampleSizeRule::Fraction(f) => f.is_finite() && f > 0.0 && f <= 1.0,
        SampleSizeRule::Constant(c) => c >= 1,
        SampleSizeRule::TwoThirdPower(p) => p.is_finite() && p > 0.0,
    };
    if ok {
        Ok(())
    } else {
        Err(EngineError::InvalidRequest {
            reason: format!("sampling rule {rule:?} is out of range"),
        })
    }
}

fn validate_predictor(ds: &Dataset, predictor: &PredictorChoice) -> Result<(), EngineError> {
    match predictor {
        PredictorChoice::Fixed(col) => require_column(&ds.table, col),
        PredictorChoice::Auto { label_fraction }
        | PredictorChoice::Virtual { label_fraction, .. } => {
            if label_fraction.is_finite() && *label_fraction > 0.0 && *label_fraction <= 1.0 {
                if let PredictorChoice::Virtual { buckets, .. } = predictor {
                    if *buckets < 1 {
                        return Err(EngineError::InvalidRequest {
                            reason: "virtual predictor needs at least one bucket".into(),
                        });
                    }
                }
                Ok(())
            } else {
                Err(EngineError::InvalidRequest {
                    reason: format!("label fraction {label_fraction} must be in (0, 1]"),
                })
            }
        }
    }
}

fn spec_fp(fp: &mut Fingerprint, spec: &QuerySpec) {
    fp.write_f64(spec.alpha);
    fp.write_f64(spec.beta);
    fp.write_f64(spec.rho);
    fp.write_f64(spec.cost.retrieve);
    fp.write_f64(spec.cost.evaluate);
}

fn rule_fp(fp: &mut Fingerprint, rule: SampleSizeRule) {
    match rule {
        SampleSizeRule::Fraction(f) => {
            fp.write_u64(1);
            fp.write_f64(f);
        }
        SampleSizeRule::Constant(c) => {
            fp.write_u64(2);
            fp.write_u64(c as u64);
        }
        SampleSizeRule::TwoThirdPower(p) => {
            fp.write_u64(3);
            fp.write_f64(p);
        }
    }
}

fn corr_fp(fp: &mut Fingerprint, corr: CorrelationModel) {
    fp.write_u64(match corr {
        CorrelationModel::Independent => 1,
        CorrelationModel::Unknown => 2,
    });
}

fn predictor_fp(fp: &mut Fingerprint, predictor: &PredictorChoice) {
    match predictor {
        PredictorChoice::Fixed(col) => {
            fp.write_u64(1);
            fp.write_str(col);
        }
        PredictorChoice::Auto { label_fraction } => {
            fp.write_u64(2);
            fp.write_f64(*label_fraction);
        }
        PredictorChoice::Virtual {
            buckets,
            label_fraction,
        } => {
            fp.write_u64(3);
            fp.write_u64(*buckets as u64);
            fp.write_f64(*label_fraction);
        }
    }
}

/// The paper's main algorithm as a strategy
/// ([`crate::pipeline::run_intel_sample_ctx`]).
#[derive(Debug, Clone, PartialEq)]
pub struct IntelSample(pub IntelSampleConfig);

impl Strategy for IntelSample {
    fn name(&self) -> &str {
        "intel_sample"
    }

    fn fingerprint(&self, fp: &mut Fingerprint) {
        spec_fp(fp, &self.0.spec);
        rule_fp(fp, self.0.rule);
        corr_fp(fp, self.0.corr);
        predictor_fp(fp, &self.0.predictor);
    }

    fn validate(&self, ds: &Dataset) -> Result<(), EngineError> {
        self.0.spec.validate()?;
        validate_rule(self.0.rule)?;
        validate_predictor(ds, &self.0.predictor)?;
        require_label_column(ds)
    }

    fn execute(
        &self,
        ds: &Dataset,
        seed: u64,
        ctx: &ExecContext<'_>,
    ) -> Result<RunOutcome, EngineError> {
        Ok(run_intel_sample_ctx(ds, &self.0, seed, ctx))
    }
}

/// The naive β-fraction baseline as a strategy
/// ([`crate::pipeline::run_naive_ctx`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Naive(pub QuerySpec);

impl Strategy for Naive {
    fn name(&self) -> &str {
        "naive"
    }

    fn fingerprint(&self, fp: &mut Fingerprint) {
        spec_fp(fp, &self.0);
    }

    fn validate(&self, ds: &Dataset) -> Result<(), EngineError> {
        self.0.validate()?;
        require_label_column(ds)
    }

    fn execute(
        &self,
        ds: &Dataset,
        seed: u64,
        ctx: &ExecContext<'_>,
    ) -> Result<RunOutcome, EngineError> {
        Ok(run_naive_ctx(ds, &self.0, seed, ctx))
    }
}

/// The perfect-information lower bound as a strategy
/// ([`crate::pipeline::run_optimal_ctx`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Optimal {
    /// Accuracy contract.
    pub spec: QuerySpec,
    /// Predictor column with free exact selectivities.
    pub predictor: String,
}

impl Strategy for Optimal {
    fn name(&self) -> &str {
        "optimal"
    }

    fn fingerprint(&self, fp: &mut Fingerprint) {
        spec_fp(fp, &self.spec);
        fp.write_str(&self.predictor);
    }

    fn validate(&self, ds: &Dataset) -> Result<(), EngineError> {
        self.spec.validate()?;
        require_column(&ds.table, &self.predictor)?;
        require_label_column(ds)
    }

    fn execute(
        &self,
        ds: &Dataset,
        seed: u64,
        ctx: &ExecContext<'_>,
    ) -> Result<RunOutcome, EngineError> {
        Ok(run_optimal_ctx(ds, &self.spec, &self.predictor, seed, ctx))
    }
}

/// The §4.3 parameter-free adaptive pipeline as a strategy
/// ([`crate::adaptive::run_intel_sample_adaptive_ctx`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Adaptive {
    /// Accuracy contract.
    pub spec: QuerySpec,
    /// Estimate-correlation model.
    pub corr: CorrelationModel,
    /// Predictor column.
    pub predictor: String,
}

impl Strategy for Adaptive {
    fn name(&self) -> &str {
        "adaptive"
    }

    fn fingerprint(&self, fp: &mut Fingerprint) {
        spec_fp(fp, &self.spec);
        corr_fp(fp, self.corr);
        fp.write_str(&self.predictor);
    }

    fn validate(&self, ds: &Dataset) -> Result<(), EngineError> {
        self.spec.validate()?;
        require_column(&ds.table, &self.predictor)?;
        require_label_column(ds)
    }

    fn execute(
        &self,
        ds: &Dataset,
        seed: u64,
        ctx: &ExecContext<'_>,
    ) -> Result<RunOutcome, EngineError> {
        Ok(run_intel_sample_adaptive_ctx(
            ds,
            &self.spec,
            self.corr,
            &self.predictor,
            seed,
            ctx,
        ))
    }
}

/// The §4.2 iterative estimate/exploit pipeline as a strategy
/// ([`crate::adaptive::run_intel_sample_iterative_ctx`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Iterative {
    /// Accuracy contract.
    pub spec: QuerySpec,
    /// Estimate-correlation model.
    pub corr: CorrelationModel,
    /// Predictor column.
    pub predictor: String,
    /// Initial sampling rule.
    pub rule: SampleSizeRule,
    /// Number of estimate/exploit rounds.
    pub rounds: usize,
}

impl Strategy for Iterative {
    fn name(&self) -> &str {
        "iterative"
    }

    fn fingerprint(&self, fp: &mut Fingerprint) {
        spec_fp(fp, &self.spec);
        corr_fp(fp, self.corr);
        fp.write_str(&self.predictor);
        rule_fp(fp, self.rule);
        fp.write_u64(self.rounds as u64);
    }

    fn validate(&self, ds: &Dataset) -> Result<(), EngineError> {
        self.spec.validate()?;
        validate_rule(self.rule)?;
        if self.rounds < 1 {
            return Err(EngineError::InvalidRequest {
                reason: "iterative pipeline needs at least one round".into(),
            });
        }
        require_column(&ds.table, &self.predictor)?;
        require_label_column(ds)
    }

    fn execute(
        &self,
        ds: &Dataset,
        seed: u64,
        ctx: &ExecContext<'_>,
    ) -> Result<RunOutcome, EngineError> {
        Ok(run_intel_sample_iterative_ctx(
            ds,
            &self.spec,
            self.corr,
            &self.predictor,
            self.rule,
            self.rounds,
            seed,
            ctx,
        ))
    }
}

/// The `Learning` ML baseline as a strategy
/// ([`crate::baselines::run_learning_ctx`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Learning(pub QuerySpec);

impl Strategy for Learning {
    fn name(&self) -> &str {
        "learning"
    }

    fn fingerprint(&self, fp: &mut Fingerprint) {
        spec_fp(fp, &self.0);
    }

    fn validate(&self, ds: &Dataset) -> Result<(), EngineError> {
        self.0.validate()?;
        require_label_column(ds)
    }

    fn execute(
        &self,
        ds: &Dataset,
        seed: u64,
        ctx: &ExecContext<'_>,
    ) -> Result<RunOutcome, EngineError> {
        Ok(run_learning_ctx(ds, &self.0, seed, ctx))
    }
}

/// The `Multiple` ML baseline as a strategy
/// ([`crate::baselines::run_multiple_ctx`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Multiple {
    /// Accuracy contract.
    pub spec: QuerySpec,
    /// Number of imputed completions.
    pub imputations: usize,
}

impl Strategy for Multiple {
    fn name(&self) -> &str {
        "multiple"
    }

    fn fingerprint(&self, fp: &mut Fingerprint) {
        spec_fp(fp, &self.spec);
        fp.write_u64(self.imputations as u64);
    }

    fn validate(&self, ds: &Dataset) -> Result<(), EngineError> {
        self.spec.validate()?;
        if self.imputations < 1 {
            return Err(EngineError::InvalidRequest {
                reason: "the Multiple baseline needs at least one imputation".into(),
            });
        }
        require_label_column(ds)
    }

    fn execute(
        &self,
        ds: &Dataset,
        seed: u64,
        ctx: &ExecContext<'_>,
    ) -> Result<RunOutcome, EngineError> {
        Ok(run_multiple_ctx(
            ds,
            &self.spec,
            self.imputations,
            seed,
            ctx,
        ))
    }
}

/// Exact multi-predicate selection as a strategy: evaluates a
/// [`PredicateExpr`] on every row through the session cache, with
/// cost-ordered short-circuiting inside each conjunction/disjunction.
///
/// `SELECT * FROM R WHERE expr = 1`, answered exactly — the returned set
/// is precisely the rows where the expression holds, so the reported
/// precision/recall are 1. The bill charges one retrieval per row plus
/// one evaluation per *leaf UDF actually invoked*; leaves an earlier
/// session query already paid for arrive as
/// [`expred_udf::CostCounts::reuse_hits`].
#[derive(Clone)]
pub struct ExprScan {
    expr: PredicateExpr,
    cost: CostModel,
    /// Whether to run the selectivity-aware rewrite
    /// ([`expred_udf::optimize_expr`]) before evaluating. Answers are
    /// byte-identical either way; the flag still enters the strategy
    /// fingerprint because the *bill* differs, and a memoized outcome
    /// replays its bill.
    optimize: bool,
}

impl ExprScan {
    /// A full-table scan of `expr` billed under `cost`, evaluated with
    /// static cost-ordered short-circuiting.
    pub fn new(expr: PredicateExpr, cost: CostModel) -> Self {
        Self {
            expr,
            cost,
            optimize: false,
        }
    }

    /// A scan that first rewrites `expr` through the session's
    /// selectivity-aware optimizer: shared conjuncts factor out and
    /// `AND`/`OR` siblings reorder by observed pass rates. Same answers,
    /// smaller bill once the session has observations.
    pub fn optimized(expr: PredicateExpr, cost: CostModel) -> Self {
        Self {
            expr,
            cost,
            optimize: true,
        }
    }

    /// The expression this scan evaluates.
    pub fn expr(&self) -> &PredicateExpr {
        &self.expr
    }

    /// Whether the selectivity-aware rewrite runs before evaluation.
    pub fn is_optimized(&self) -> bool {
        self.optimize
    }
}

impl Strategy for ExprScan {
    fn name(&self) -> &str {
        "expr_scan"
    }

    /// The expression's identity enters through its derived
    /// [`expred_udf::UdfId`] — a 64-bit digest, so expression identity
    /// inherits `UdfId`'s (documented) collision contract rather than the
    /// full-stream guarantee the built-in pipelines get.
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.write_u64(self.expr.fingerprint().map_or(0, |id| id.as_u64()));
        fp.write_f64(self.cost.retrieve);
        fp.write_f64(self.cost.evaluate);
        fp.write_u64(self.optimize as u64);
    }

    fn validate(&self, ds: &Dataset) -> Result<(), EngineError> {
        if self.expr.fingerprint().is_none() {
            return Err(EngineError::BadExpression {
                reason: "expression contains a UDF without a stable fingerprint, so the \
                         request has no cacheable identity (implement BooleanUdf::fingerprint)"
                    .into(),
            });
        }
        if !self.expr.costs_valid() {
            return Err(EngineError::BadExpression {
                reason: "every leaf evaluation cost must be finite and >= 0".into(),
            });
        }
        // A mistyped column in a leaf (e.g. an OracleUdf) must be a typed
        // error here, not a panic mid-scan.
        for column in self.expr.required_columns() {
            require_column(&ds.table, &column)?;
        }
        crate::query::validate_cost_model(&self.cost)
    }

    fn execute(
        &self,
        ds: &Dataset,
        _seed: u64,
        ctx: &ExecContext<'_>,
    ) -> Result<RunOutcome, EngineError> {
        let start = Instant::now();
        let table = &ds.table;
        let tracker = CostTracker::new();
        let rows: Vec<usize> = (0..table.num_rows()).collect();
        tracker.add_retrievals(rows.len() as u64);
        let expr;
        let expr = if self.optimize {
            expr = expred_udf::optimize_expr(&self.expr, table, ctx.selectivity);
            &expr
        } else {
            &self.expr
        };
        let answers = evaluate_expr_batch_ctx(expr, table, &rows, &tracker, ctx).map_err(|e| {
            // Unreachable through the engine: validate() already rejected
            // invalid costs. Kept as a typed error for direct callers.
            EngineError::BadExpression {
                reason: e.to_string(),
            }
        })?;
        let returned: Vec<u32> = rows
            .iter()
            .zip(&answers)
            .filter(|&(_, &passed)| passed)
            .map(|(&row, _)| row as u32)
            .collect();
        let compute_seconds = start.elapsed().as_secs_f64();
        let counts = tracker.snapshot();
        let returned_len = returned.len();
        Ok(RunOutcome {
            returned,
            counts,
            cost: counts.cost(&self.cost),
            // Exact evaluation: the answer set *is* the truth set.
            summary: PrSummary {
                precision: 1.0,
                recall: 1.0,
                returned: returned_len,
                true_positives: returned_len,
                total_correct: returned_len,
            },
            num_groups: 1,
            compute_seconds,
            plan_feasible: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expred_table::datasets::{DatasetSpec, PROSPER};

    fn tiny() -> Dataset {
        Dataset::generate(
            DatasetSpec {
                rows: 500,
                ..PROSPER
            },
            1,
        )
    }

    #[test]
    fn fingerprint_streams_are_order_significant() {
        let mut a = Fingerprint::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a, b);
        assert_ne!(a.digest64(), b.digest64());
    }

    #[test]
    fn identities_separate_strategies_and_parameters() {
        let spec = QuerySpec::paper_default();
        let naive = StrategyIdentity::of(&Naive(spec));
        let learning = StrategyIdentity::of(&Learning(spec));
        // Same parameter stream, different names: distinct identities.
        assert_eq!(naive.fingerprint, learning.fingerprint);
        assert_ne!(naive, learning);
        assert_ne!(naive.digest64(), learning.digest64());
        let other = StrategyIdentity::of(&Naive(QuerySpec::new(0.7, 0.8, 0.8, spec.cost)));
        assert_ne!(naive, other);
    }

    #[test]
    fn validation_catches_bad_predictors_and_specs() {
        let ds = tiny();
        let good = Optimal {
            spec: QuerySpec::paper_default(),
            predictor: "grade".into(),
        };
        assert!(good.validate(&ds).is_ok());
        let missing = Optimal {
            spec: QuerySpec::paper_default(),
            predictor: "no_such_column".into(),
        };
        match missing.validate(&ds) {
            Err(EngineError::UnknownColumn { column, available }) => {
                assert_eq!(column, "no_such_column");
                assert!(available.iter().any(|c| c == "grade"));
            }
            other => panic!("expected UnknownColumn, got {other:?}"),
        }
        let bad_spec = Naive(QuerySpec {
            alpha: 2.0,
            ..QuerySpec::paper_default()
        });
        assert!(matches!(
            bad_spec.validate(&ds),
            Err(EngineError::InvalidSpec { field: "alpha", .. })
        ));
        let zero_imputations = Multiple {
            spec: QuerySpec::paper_default(),
            imputations: 0,
        };
        assert!(matches!(
            zero_imputations.validate(&ds),
            Err(EngineError::InvalidRequest { .. })
        ));
        let bad_rule = IntelSample(IntelSampleConfig {
            rule: SampleSizeRule::Fraction(0.0),
            ..IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into()))
        });
        assert!(matches!(
            bad_rule.validate(&ds),
            Err(EngineError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn trivial_outcome_is_well_formed() {
        let out = RunOutcome::trivial(vec![1, 2, 3]);
        assert_eq!(out.returned, vec![1, 2, 3]);
        assert_eq!(out.summary.precision, 1.0);
        assert_eq!(out.counts.evaluated, 0);
        assert!(out.plan_feasible);
    }
}
