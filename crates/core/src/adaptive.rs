//! Adaptive estimation–exploitation loops (paper §4.2–§4.3).
//!
//! Two schemes beyond the one-shot pipeline:
//!
//! * [`run_intel_sample_adaptive`] — §4.3's parameter-free variant:
//!   instead of fixing the sampling parameter `num` up front, grow it and
//!   re-plan until the estimated total cost starts rising ("we can guess
//!   the optimal value of z using adaptive sampling").
//! * [`run_intel_sample_iterative`] — §4.2's remark that "nothing prevents
//!   us from going back-and-forth between estimating selectivities and
//!   exploiting them": run a fraction of the plan, fold the new
//!   evaluations into the estimates, and re-plan.

use crate::execute::{execute_plan_ctx, truth_vector};
use crate::optimize::{solve_estimated, CorrelationModel};
use crate::pipeline::{session_group_by, RunOutcome};
use crate::plan::Plan;
use crate::query::QuerySpec;
use crate::sampling::{adaptive_num_search_ctx, sample_groups_ctx, SampleSizeRule};
use expred_exec::{ExecContext, Executor};
use expred_ml::metrics::precision_recall;
use expred_stats::rng::Prng;
use expred_table::datasets::{Dataset, LABEL_COLUMN};
use expred_udf::UdfInvoker;
use std::time::Instant;

/// §4.3's adaptive pipeline: no sampling parameter needs to be supplied.
pub fn run_intel_sample_adaptive(
    ds: &Dataset,
    spec: &QuerySpec,
    corr: CorrelationModel,
    predictor: &str,
    seed: u64,
) -> RunOutcome {
    run_intel_sample_adaptive_ctx(ds, spec, corr, predictor, seed, &ExecContext::sequential())
}

/// [`run_intel_sample_adaptive`], probing through `executor`.
pub fn run_intel_sample_adaptive_with(
    ds: &Dataset,
    spec: &QuerySpec,
    corr: CorrelationModel,
    predictor: &str,
    seed: u64,
    executor: &dyn Executor,
) -> RunOutcome {
    run_intel_sample_adaptive_ctx(ds, spec, corr, predictor, seed, &ExecContext::new(executor))
}

/// [`run_intel_sample_adaptive`] under an execution context.
pub fn run_intel_sample_adaptive_ctx(
    ds: &Dataset,
    spec: &QuerySpec,
    corr: CorrelationModel,
    predictor: &str,
    seed: u64,
    ctx: &ExecContext<'_>,
) -> RunOutcome {
    let start = Instant::now();
    let table = &ds.table;
    let udf = crate::pipeline::label_udf(ctx);
    let invoker = UdfInvoker::with_context(udf.as_ref(), table, ctx);
    let mut rng = Prng::seeded(seed);
    let groups = session_group_by(table, predictor, ctx).expect("predictor column");

    let outcome = adaptive_num_search_ctx(&groups, &invoker, spec, corr, &mut rng, ctx);
    let est_groups = outcome.sample.to_estimated_groups(&groups);
    let (plan, plan_feasible) = match solve_estimated(&est_groups, spec, corr) {
        Ok(plan) => (plan, true),
        Err(_) => (Plan::evaluate_all(groups.num_groups()), false),
    };
    let result = execute_plan_ctx(&plan, &groups, &invoker, &mut rng, ctx);
    let compute_seconds = start.elapsed().as_secs_f64();

    let truth = truth_vector(table, LABEL_COLUMN);
    let returned_usize: Vec<usize> = result.returned.iter().map(|&r| r as usize).collect();
    let summary = precision_recall(&returned_usize, &truth);
    let counts = invoker.counts();
    RunOutcome {
        returned: result.returned,
        counts,
        cost: counts.cost(&spec.cost),
        summary,
        num_groups: groups.num_groups(),
        compute_seconds,
        plan_feasible,
    }
}

/// §4.2's iterative pipeline: `rounds` alternations of (sample, plan,
/// partially execute). Each round executes a `1/rounds_remaining` slice of
/// every group under the current plan, then folds what it learned back
/// into the estimates.
///
/// With `rounds = 1` this degenerates to the one-shot pipeline.
pub fn run_intel_sample_iterative(
    ds: &Dataset,
    spec: &QuerySpec,
    corr: CorrelationModel,
    predictor: &str,
    initial_rule: SampleSizeRule,
    rounds: usize,
    seed: u64,
) -> RunOutcome {
    run_intel_sample_iterative_ctx(
        ds,
        spec,
        corr,
        predictor,
        initial_rule,
        rounds,
        seed,
        &ExecContext::sequential(),
    )
}

/// [`run_intel_sample_iterative`], probing through `executor`.
#[allow(clippy::too_many_arguments)]
pub fn run_intel_sample_iterative_with(
    ds: &Dataset,
    spec: &QuerySpec,
    corr: CorrelationModel,
    predictor: &str,
    initial_rule: SampleSizeRule,
    rounds: usize,
    seed: u64,
    executor: &dyn Executor,
) -> RunOutcome {
    run_intel_sample_iterative_ctx(
        ds,
        spec,
        corr,
        predictor,
        initial_rule,
        rounds,
        seed,
        &ExecContext::new(executor),
    )
}

/// [`run_intel_sample_iterative`] under an execution context.
#[allow(clippy::too_many_arguments)]
pub fn run_intel_sample_iterative_ctx(
    ds: &Dataset,
    spec: &QuerySpec,
    corr: CorrelationModel,
    predictor: &str,
    initial_rule: SampleSizeRule,
    rounds: usize,
    seed: u64,
    ctx: &ExecContext<'_>,
) -> RunOutcome {
    assert!(rounds >= 1, "need at least one round");
    let start = Instant::now();
    let table = &ds.table;
    let udf = crate::pipeline::label_udf(ctx);
    let invoker = UdfInvoker::with_context(udf.as_ref(), table, ctx);
    let mut rng = Prng::seeded(seed);
    let groups = session_group_by(table, predictor, ctx).expect("predictor column");
    let k = groups.num_groups();

    // Initial estimates.
    let mut sample = sample_groups_ctx(&groups, &invoker, initial_rule, &mut rng, ctx);
    let mut returned: Vec<u32> = Vec::new();
    // Rows not yet touched by execution, per group.
    let mut pending: Vec<Vec<u32>> = (0..k).map(|g| groups.rows(g).to_vec()).collect();
    let mut plan_feasible = true;

    for round in 0..rounds {
        let est_groups = sample.to_estimated_groups(&groups);
        let plan = match solve_estimated(&est_groups, spec, corr) {
            Ok(plan) => plan,
            Err(_) => {
                plan_feasible = false;
                Plan::evaluate_all(k)
            }
        };
        // Slice each group's pending rows for this round, restricting the
        // plan to the groups that still have rows.
        let remaining_rounds = rounds - round;
        let mut keys = Vec::new();
        let mut slice_rows: Vec<Vec<u32>> = Vec::new();
        let mut slice_r = Vec::new();
        let mut slice_e = Vec::new();
        let mut total = 0usize;
        for (g, p) in pending.iter_mut().enumerate() {
            let take = p.len().div_ceil(remaining_rounds).min(p.len());
            if take == 0 {
                continue;
            }
            let slice: Vec<u32> = p.drain(..take).collect();
            total += slice.len();
            keys.push(groups.key(g).clone());
            slice_rows.push(slice);
            slice_r.push(plan.r()[g]);
            slice_e.push(plan.e()[g]);
        }
        if total == 0 {
            break;
        }
        let slice_groups = expred_table::GroupBy::new(
            format!("{predictor}#round{round}"),
            keys,
            slice_rows,
            total,
        );
        let slice_plan = Plan::new(slice_r, slice_e);
        let result = execute_plan_ctx(&slice_plan, &slice_groups, &invoker, &mut rng, ctx);
        returned.extend(result.returned);

        // Fold everything evaluated so far back into the estimates.
        let refreshed = sample_groups_ctx(
            &groups,
            &invoker,
            SampleSizeRule::Constant(0),
            &mut rng,
            ctx,
        );
        sample = refreshed;
    }
    returned.sort_unstable();
    returned.dedup();

    let compute_seconds = start.elapsed().as_secs_f64();
    let truth = truth_vector(table, LABEL_COLUMN);
    let returned_usize: Vec<usize> = returned.iter().map(|&r| r as usize).collect();
    let summary = precision_recall(&returned_usize, &truth);
    let counts = invoker.counts();
    RunOutcome {
        returned,
        counts,
        cost: counts.cost(&spec.cost),
        summary,
        num_groups: k,
        compute_seconds,
        plan_feasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_intel_sample, run_naive, IntelSampleConfig, PredictorChoice};
    use expred_table::datasets::{Dataset, DatasetSpec, PROSPER};

    fn small_prosper() -> Dataset {
        Dataset::generate(
            DatasetSpec {
                rows: 6_000,
                ..PROSPER
            },
            41,
        )
    }

    #[test]
    fn adaptive_pipeline_beats_naive_without_tuning() {
        let ds = small_prosper();
        let spec = QuerySpec::paper_default();
        let adaptive =
            run_intel_sample_adaptive(&ds, &spec, CorrelationModel::Independent, "grade", 1);
        let naive = run_naive(&ds, &spec, 1);
        assert!(
            adaptive.counts.evaluated < naive.counts.evaluated,
            "adaptive {} vs naive {}",
            adaptive.counts.evaluated,
            naive.counts.evaluated
        );
    }

    #[test]
    fn adaptive_pipeline_meets_constraints_mostly() {
        let ds = small_prosper();
        let spec = QuerySpec::paper_default();
        let mut ok = 0;
        for seed in 0..8 {
            let out =
                run_intel_sample_adaptive(&ds, &spec, CorrelationModel::Independent, "grade", seed);
            if out.summary.meets(spec.alpha, spec.beta) {
                ok += 1;
            }
        }
        assert!(ok >= 6, "met constraints only {ok}/8 times");
    }

    #[test]
    fn iterative_single_round_close_to_one_shot() {
        let ds = small_prosper();
        let spec = QuerySpec::paper_default();
        let iterative = run_intel_sample_iterative(
            &ds,
            &spec,
            CorrelationModel::Independent,
            "grade",
            SampleSizeRule::Fraction(0.05),
            1,
            5,
        );
        let one_shot = run_intel_sample(
            &ds,
            &IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into())),
            5,
        );
        // Same structure; costs should land in the same ballpark.
        let a = iterative.counts.evaluated as f64;
        let b = one_shot.counts.evaluated as f64;
        assert!(
            (a - b).abs() < 0.35 * b.max(1.0),
            "iterative {a} vs one-shot {b}"
        );
    }

    #[test]
    fn iterative_multi_round_refines_without_losing_accuracy() {
        let ds = small_prosper();
        let spec = QuerySpec::paper_default();
        let mut ok = 0;
        for seed in 0..6 {
            let out = run_intel_sample_iterative(
                &ds,
                &spec,
                CorrelationModel::Independent,
                "grade",
                SampleSizeRule::Fraction(0.03),
                3,
                100 + seed,
            );
            assert!(out.counts.evaluated > 0);
            if out.summary.meets(spec.alpha, spec.beta) {
                ok += 1;
            }
        }
        assert!(ok >= 4, "multi-round met constraints only {ok}/6 times");
    }

    #[test]
    fn iterative_never_duplicates_answers() {
        let ds = small_prosper();
        let spec = QuerySpec::paper_default();
        let out = run_intel_sample_iterative(
            &ds,
            &spec,
            CorrelationModel::Independent,
            "grade",
            SampleSizeRule::Fraction(0.05),
            4,
            9,
        );
        let mut sorted = out.returned.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), out.returned.len());
    }
}
