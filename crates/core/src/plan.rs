//! Probabilistic execution plans.

use expred_udf::CostModel;

/// A per-group probabilistic plan: retrieve each tuple of group `a` with
/// probability `r[a]`, and evaluate retrieved tuples with conditional
/// probability `e[a]/r[a]` (so `e[a]` is the unconditional evaluation
/// probability). Deterministic plans are the `{0,1}` special case.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    r: Vec<f64>,
    e: Vec<f64>,
}

impl Plan {
    /// Builds a plan, validating `0 ≤ e[a] ≤ r[a] ≤ 1` for every group.
    pub fn new(r: Vec<f64>, e: Vec<f64>) -> Self {
        assert_eq!(r.len(), e.len(), "plan vectors must be parallel");
        for (i, (&ra, &ea)) in r.iter().zip(&e).enumerate() {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&ra),
                "R[{i}] = {ra} out of range"
            );
            assert!(
                ea >= -1e-9 && ea <= ra + 1e-9,
                "E[{i}] = {ea} violates 0 <= E <= R = {ra}"
            );
        }
        // Snap tiny numerical noise into the box.
        let r: Vec<f64> = r.into_iter().map(|v| v.clamp(0.0, 1.0)).collect();
        let e = e
            .into_iter()
            .zip(&r)
            .map(|(v, &ra)| v.clamp(0.0, ra))
            .collect();
        Self { r, e }
    }

    /// The plan that ignores every group.
    pub fn discard_all(num_groups: usize) -> Self {
        Self {
            r: vec![0.0; num_groups],
            e: vec![0.0; num_groups],
        }
    }

    /// The plan that retrieves and evaluates everything (always meets any
    /// satisfiable constraint, at maximum cost).
    pub fn evaluate_all(num_groups: usize) -> Self {
        Self {
            r: vec![1.0; num_groups],
            e: vec![1.0; num_groups],
        }
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.r.len()
    }

    /// Retrieval probabilities.
    pub fn r(&self) -> &[f64] {
        &self.r
    }

    /// Unconditional evaluation probabilities.
    pub fn e(&self) -> &[f64] {
        &self.e
    }

    /// Expected plan cost over `sizes` (tuples still subject to the plan,
    /// i.e. excluding already-sampled tuples).
    pub fn expected_cost(&self, sizes: &[f64], cost: &CostModel) -> f64 {
        assert_eq!(sizes.len(), self.r.len());
        sizes
            .iter()
            .zip(self.r.iter().zip(&self.e))
            .map(|(&t, (&r, &e))| t * (cost.retrieve * r + cost.evaluate * e))
            .sum()
    }

    /// Expected number of evaluations over `sizes`.
    pub fn expected_evaluations(&self, sizes: &[f64]) -> f64 {
        sizes.iter().zip(&self.e).map(|(&t, &e)| t * e).sum()
    }

    /// Expected number of retrievals over `sizes`.
    pub fn expected_retrievals(&self, sizes: &[f64]) -> f64 {
        sizes.iter().zip(&self.r).map(|(&t, &r)| t * r).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_quantities() {
        let plan = Plan::new(vec![1.0, 0.5, 0.0], vec![0.5, 0.5, 0.0]);
        let sizes = [100.0, 200.0, 300.0];
        let cost = CostModel::PAPER_DEFAULT;
        // Retrievals: 100 + 100 = 200; evaluations: 50 + 100 = 150.
        assert_eq!(plan.expected_retrievals(&sizes), 200.0);
        assert_eq!(plan.expected_evaluations(&sizes), 150.0);
        assert_eq!(plan.expected_cost(&sizes, &cost), 200.0 + 450.0);
    }

    #[test]
    fn canned_plans() {
        let d = Plan::discard_all(3);
        assert_eq!(d.expected_retrievals(&[1.0, 1.0, 1.0]), 0.0);
        let e = Plan::evaluate_all(2);
        assert_eq!(e.expected_evaluations(&[10.0, 20.0]), 30.0);
    }

    #[test]
    fn noise_is_snapped() {
        let plan = Plan::new(vec![1.0 + 1e-12], vec![1.0 + 5e-10]);
        assert!(plan.r()[0] <= 1.0);
        assert!(plan.e()[0] <= plan.r()[0]);
    }

    #[test]
    #[should_panic]
    fn e_above_r_rejected() {
        Plan::new(vec![0.5], vec![0.7]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_rejected() {
        Plan::new(vec![0.5], vec![]);
    }
}
