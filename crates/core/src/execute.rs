//! Probabilistic plan execution (paper §3.2, "Execution").
//!
//! Given a plan `(R_a, E_a)` and a grouping, each tuple of group `a` is
//! retrieved with probability `R_a` independently; a retrieved tuple is
//! evaluated with conditional probability `E_a / R_a` (so the
//! unconditional evaluation probability is exactly `E_a`). Evaluated
//! tuples enter the answer iff the UDF passes; retrieved-but-unevaluated
//! tuples enter unconditionally.
//!
//! Tuples that were already evaluated during sampling bypass the plan:
//! positives join the answer for free, negatives are dropped — §4.2's
//! "those that are correct … can be simply returned as part of the query
//! result without re-evaluating them".

use crate::plan::Plan;
use expred_exec::{BatchPlanner, ExecContext, Executor};
use expred_stats::rng::Prng;
use expred_table::GroupBy;
use expred_udf::UdfInvoker;

/// The rows a query execution returned (cost lives in the invoker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionResult {
    /// Row ids in the answer, ascending.
    pub returned: Vec<u32>,
    /// How many answer rows came from reused sampled positives.
    pub reused_positives: usize,
}

/// Executes `plan` over `groups`, charging all retrievals/evaluations to
/// `invoker` and reusing its memoized sample answers.
///
/// Equivalent to [`execute_plan_ctx`] on [`ExecContext::sequential`].
pub fn execute_plan(
    plan: &Plan,
    groups: &GroupBy,
    invoker: &UdfInvoker<'_>,
    rng: &mut Prng,
) -> ExecutionResult {
    execute_plan_ctx(plan, groups, invoker, rng, &ExecContext::sequential())
}

/// Executes `plan` over `groups`, routing UDF probes through `executor`
/// with the default in-flight budget.
pub fn execute_plan_with(
    plan: &Plan,
    groups: &GroupBy,
    invoker: &UdfInvoker<'_>,
    rng: &mut Prng,
    executor: &dyn Executor,
) -> ExecutionResult {
    execute_plan_ctx(plan, groups, invoker, rng, &ExecContext::new(executor))
}

/// Executes `plan` over `groups` under an execution context: probes run
/// through `ctx.executor` in batches bounded by `ctx.max_in_flight`.
/// Cross-query caching is the invoker's concern — build it with
/// [`UdfInvoker::with_context`] and already-known rows (from sampling or
/// from earlier queries in the session) bypass the plan for free.
pub fn execute_plan_ctx(
    plan: &Plan,
    groups: &GroupBy,
    invoker: &UdfInvoker<'_>,
    rng: &mut Prng,
    ctx: &ExecContext<'_>,
) -> ExecutionResult {
    execute_plan_with_planner(plan, groups, invoker, rng, ctx.executor, ctx.planner())
}

/// Executes `plan` over `groups`, routing UDF probes through `executor`
/// and a caller-supplied [`BatchPlanner`] (the way to bound how many
/// rows one `evaluate_batch` call may carry — memory-bounded backends,
/// crowd-scale windows).
///
/// The random decisions (retrieve? evaluate?) are drawn on the calling
/// thread in group order — exactly the stream the sequential executor
/// consumes — and only then are the chosen rows drained through the
/// runtime: ordered by correlation group, in slices of at most the
/// planner's `max_in_flight` rows (a slice may span a group boundary).
/// The result is therefore byte-identical across backends and budgets
/// for a fixed seed; only wall-clock time changes.
pub fn execute_plan_with_planner(
    plan: &Plan,
    groups: &GroupBy,
    invoker: &UdfInvoker<'_>,
    rng: &mut Prng,
    executor: &dyn Executor,
    mut planner: BatchPlanner,
) -> ExecutionResult {
    assert_eq!(
        plan.num_groups(),
        groups.num_groups(),
        "plan and grouping must agree on group count"
    );
    let mut returned = Vec::new();
    let mut reused_positives = 0;
    for (g, _, rows) in groups.iter() {
        let r = plan.r()[g];
        let e = plan.e()[g];
        let eval_given_retrieved = if r > 0.0 { (e / r).min(1.0) } else { 0.0 };
        for &row in rows {
            // Sampled tuples are already decided.
            if let Some(answer) = invoker.memoized(row as usize) {
                if answer {
                    returned.push(row);
                    reused_positives += 1;
                }
                continue;
            }
            if r <= 0.0 || !rng.bernoulli(r) {
                continue;
            }
            invoker.charge_retrievals(1);
            if eval_given_retrieved > 0.0 && rng.bernoulli(eval_given_retrieved) {
                planner.enqueue(g, row as usize);
            } else {
                returned.push(row);
            }
        }
    }
    // Every queued row is fresh (the memoized branch above skipped the
    // rest) and distinct (groups partition rows), so the audited batch
    // charges exactly one evaluation per row — the same bill the serial
    // loop paid. Drain through the invoker, never the raw probe: the
    // invoker is what memoizes the answers and charges the tracker.
    let answers = planner.drain_with(&mut |rows| invoker.evaluate_batch(executor, rows));
    returned.extend(answers.iter().filter(|a| a.answer).map(|a| a.row as u32));
    returned.sort_unstable();
    ExecutionResult {
        returned,
        reused_positives,
    }
}

/// Reads the ground-truth vector for evaluation purposes (never available
/// to the planning code).
pub fn truth_vector(table: &expred_table::Table, label_column: &str) -> Vec<bool> {
    let col = table
        .column(label_column)
        .unwrap_or_else(|| panic!("label column {label_column:?} missing"));
    (0..table.num_rows())
        .map(|r| col.bool_at(r).expect("label column must be non-null bool"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use expred_exec::Sequential;
    use expred_table::{DataType, Field, Schema, Table, Value};
    use expred_udf::{CostModel, OracleUdf};

    fn test_table(labels: &[bool], groups: &[i64]) -> Table {
        assert_eq!(labels.len(), groups.len());
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("label", DataType::Bool),
        ]);
        let rows = groups
            .iter()
            .zip(labels)
            .map(|(&g, &l)| vec![Value::Int(g), Value::Bool(l)])
            .collect();
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn deterministic_plan_execution() {
        // Group 0: return all; group 1: evaluate all; group 2: discard.
        let labels = [true, false, true, false, true, false];
        let table = test_table(&labels, &[0, 0, 1, 1, 2, 2]);
        let udf = OracleUdf::new("label");
        let invoker = UdfInvoker::new(&udf, &table);
        let groups = table.group_by("g").unwrap();
        let plan = Plan::new(vec![1.0, 1.0, 0.0], vec![0.0, 1.0, 0.0]);
        let mut rng = Prng::seeded(1);
        let result = execute_plan(&plan, &groups, &invoker, &mut rng);
        // Group 0 returned unevaluated (rows 0,1); group 1 evaluated, only
        // row 2 passes; group 2 dropped.
        assert_eq!(result.returned, vec![0, 1, 2]);
        let counts = invoker.counts();
        assert_eq!(counts.retrieved, 4);
        assert_eq!(counts.evaluated, 2);
        assert_eq!(counts.cost(&CostModel::PAPER_DEFAULT), 4.0 + 6.0);
    }

    #[test]
    fn memoized_positives_are_free_and_returned() {
        let labels = [true, false, true];
        let table = test_table(&labels, &[0, 0, 0]);
        let udf = OracleUdf::new("label");
        let invoker = UdfInvoker::new(&udf, &table);
        // Pre-sample rows 0 and 1.
        invoker.retrieve_and_evaluate(0);
        invoker.retrieve_and_evaluate(1);
        let before = invoker.counts();
        let groups = table.group_by("g").unwrap();
        // Plan discards the group entirely; sampled positive still returns.
        let plan = Plan::discard_all(1);
        let mut rng = Prng::seeded(2);
        let result = execute_plan(&plan, &groups, &invoker, &mut rng);
        assert_eq!(result.returned, vec![0]);
        assert_eq!(result.reused_positives, 1);
        assert_eq!(invoker.counts(), before, "no new cost for reuse");
    }

    #[test]
    fn fractional_plan_rates_track_probabilities() {
        let n = 10_000;
        let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let group_ids = vec![0i64; n];
        let table = test_table(&labels, &group_ids);
        let udf = OracleUdf::new("label");
        let invoker = UdfInvoker::new(&udf, &table);
        let groups = table.group_by("g").unwrap();
        let plan = Plan::new(vec![0.6], vec![0.3]);
        let mut rng = Prng::seeded(3);
        let _ = execute_plan(&plan, &groups, &invoker, &mut rng);
        let counts = invoker.counts();
        let retrieved_rate = counts.retrieved as f64 / n as f64;
        let evaluated_rate = counts.evaluated as f64 / n as f64;
        assert!((retrieved_rate - 0.6).abs() < 0.03, "{retrieved_rate}");
        assert!((evaluated_rate - 0.3).abs() < 0.03, "{evaluated_rate}");
    }

    #[test]
    fn evaluated_tuples_filter_failures() {
        let n = 2_000;
        let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect(); // sel 0.25
        let table = test_table(&labels, &vec![0i64; n]);
        let udf = OracleUdf::new("label");
        let invoker = UdfInvoker::new(&udf, &table);
        let groups = table.group_by("g").unwrap();
        // Evaluate everything: answer must be exactly the true set.
        let plan = Plan::evaluate_all(1);
        let mut rng = Prng::seeded(4);
        let result = execute_plan(&plan, &groups, &invoker, &mut rng);
        let truth = truth_vector(&table, "label");
        assert!(result.returned.iter().all(|&r| truth[r as usize]));
        assert_eq!(result.returned.len(), n / 4);
    }

    #[test]
    fn custom_in_flight_budget_does_not_change_the_outcome() {
        use expred_exec::BatchPlanner;
        let n = 3_000;
        let labels: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let group_ids: Vec<i64> = (0..n as i64).map(|i| i % 4).collect();
        let table = test_table(&labels, &group_ids);
        let udf = OracleUdf::new("label");
        let groups = table.group_by("g").unwrap();
        let plan = Plan::new(vec![0.8; 4], vec![0.5; 4]);
        let run = |planner: BatchPlanner| {
            let invoker = UdfInvoker::new(&udf, &table);
            let mut rng = Prng::seeded(17);
            let result =
                execute_plan_with_planner(&plan, &groups, &invoker, &mut rng, &Sequential, planner);
            (result, invoker.counts())
        };
        let (default_result, default_counts) = run(BatchPlanner::new());
        // A budget far below one group's queue forces many slices.
        let (tiny_result, tiny_counts) = run(BatchPlanner::with_max_in_flight(7));
        assert_eq!(default_result, tiny_result);
        assert_eq!(default_counts, tiny_counts);
    }

    #[test]
    fn truth_vector_reads_labels() {
        let labels = [true, false, true];
        let table = test_table(&labels, &[0, 1, 2]);
        assert_eq!(truth_vector(&table, "label"), vec![true, false, true]);
    }

    #[test]
    #[should_panic]
    fn plan_group_mismatch_panics() {
        let table = test_table(&[true], &[0]);
        let udf = OracleUdf::new("label");
        let invoker = UdfInvoker::new(&udf, &table);
        let groups = table.group_by("g").unwrap();
        let plan = Plan::discard_all(2);
        let mut rng = Prng::seeded(5);
        execute_plan(&plan, &groups, &invoker, &mut rng);
    }
}
