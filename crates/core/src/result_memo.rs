//! [`ShardedResultMemo`]: the engine's concurrent whole-result memo.
//!
//! [`crate::engine::QueryEngine`] memoizes entire query outcomes keyed by
//! a 64-bit fingerprint of the request. Serving that memo from many
//! threads at once needs the same treatment the row tier got in
//! `expred_exec::CacheStore`: lock striping so readers and writers of
//! different requests never contend, a hard capacity bound enforced by
//! second-chance (CLOCK) eviction, and — because the key is a *hash* —
//! full-identity verification on every lookup so a 64-bit collision can
//! never serve one query's answer as another's.
//!
//! The memo is generic over the identity (`K`) and value (`V`) types so
//! its invariants can be property-tested in isolation (see
//! `crates/core/tests/result_memo_props.rs`):
//!
//! * **Collision safety** — `get(h, id)` returns a value only if the
//!   stored identity equals `id` exactly; a colliding occupant is
//!   reported as a miss and counted in
//!   [`ResultMemoStats::collision_rejects`].
//! * **Capacity** — the number of live entries never exceeds
//!   [`ShardedResultMemo::capacity`], under any interleaving of inserts,
//!   gets, and clears.
//! * **Last-writer-wins** — inserting under an occupied hash replaces the
//!   occupant in place (its ring slot carries over), so two threads
//!   racing to memoize the same request settle on one entry.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

/// Upper bound on the stripe count (actual count is the largest power of
/// two that also keeps each stripe at [`MIN_SHARD_CAPACITY`] slots).
const MAX_SHARDS: usize = 64;

/// Floor on per-stripe slots: a single-slot stripe cannot grant a CLOCK
/// second chance (evicting always lands on the one occupant), so small
/// capacities take fewer, deeper stripes instead of 64 useless ones.
const MIN_SHARD_CAPACITY: usize = 4;

/// A snapshot of memo-wide statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultMemoStats {
    /// Lookups that returned a verified value.
    pub hits: u64,
    /// Lookups that found nothing under the hash.
    pub misses: u64,
    /// Lookups that found a *different* identity under the hash and
    /// refused to serve it.
    pub collision_rejects: u64,
    /// Values written (including in-place replacements).
    pub insertions: u64,
    /// Entries discarded by the capacity bound.
    pub evictions: u64,
}

impl ResultMemoStats {
    /// The snapshot as named counters, in stable declaration order — the
    /// serialization-ready view the serving `/metrics` endpoint consumes
    /// (render with [`expred_stats::json::counters_to_json`] /
    /// [`expred_stats::json::counters_to_text`]).
    pub fn fields(&self) -> [(&'static str, u64); 5] {
        [
            ("hits", self.hits),
            ("misses", self.misses),
            ("collision_rejects", self.collision_rejects),
            ("insertions", self.insertions),
            ("evictions", self.evictions),
        ]
    }
}

#[derive(Debug, Default)]
struct AtomicMemoStats {
    hits: AtomicU64,
    misses: AtomicU64,
    collision_rejects: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

/// One memoized value, its full identity, and its CLOCK referenced bit
/// (atomic so hits can mark it under a shared read lock).
#[derive(Debug)]
struct Entry<K, V> {
    identity: K,
    value: V,
    referenced: AtomicBool,
}

/// One lock-striped shard: entries plus the CLOCK ring over their hashes.
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<u64, Entry<K, V>>,
    ring: VecDeque<u64>,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Self {
            map: HashMap::new(),
            ring: VecDeque::new(),
        }
    }
}

/// A lock-striped, capacity-bounded, collision-verified memo of whole
/// values keyed by a caller-computed 64-bit hash.
///
/// `Sync` whenever `K` and `V` are `Send + Sync`; all methods take
/// `&self`. See the module docs for the invariants.
#[derive(Debug)]
pub struct ShardedResultMemo<K, V> {
    shards: Box<[RwLock<Shard<K, V>>]>,
    mask: u64,
    shard_capacity: usize,
    stats: AtomicMemoStats,
}

/// Largest power of two `<= x` (for `x >= 1`).
fn prev_power_of_two(x: usize) -> usize {
    debug_assert!(x >= 1);
    usize::MAX.wrapping_shr(x.leading_zeros()) / 2 + 1
}

impl<K: PartialEq, V: Clone> ShardedResultMemo<K, V> {
    /// A memo holding at most `capacity` entries in total. The effective
    /// bound ([`ShardedResultMemo::capacity`]) is rounded *down* so the
    /// sum of per-shard budgets never exceeds the request; `capacity == 0`
    /// disables the memo entirely (every get misses, inserts are no-ops).
    pub fn with_capacity(capacity: usize) -> Self {
        let num_shards = if capacity == 0 {
            1
        } else {
            prev_power_of_two(MAX_SHARDS.min((capacity / MIN_SHARD_CAPACITY).max(1)))
        };
        let shards: Vec<RwLock<Shard<K, V>>> = (0..num_shards).map(|_| RwLock::default()).collect();
        Self {
            shards: shards.into_boxed_slice(),
            mask: (num_shards - 1) as u64,
            shard_capacity: capacity / num_shards,
            stats: AtomicMemoStats::default(),
        }
    }

    /// The enforced total entry bound (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    fn shard(&self, key: u64) -> &RwLock<Shard<K, V>> {
        // Fibonacci spread: the caller's hash may be weak in its low bits.
        let spread = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(spread & self.mask) as usize]
    }

    /// The value stored under `key`, provided its stored identity equals
    /// `identity` exactly. A colliding occupant is a miss (counted as a
    /// [`ResultMemoStats::collision_rejects`]), never served.
    pub fn get(&self, key: u64, identity: &K) -> Option<V> {
        if self.shard_capacity == 0 {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let guard = self.shard(key).read().unwrap_or_else(|e| e.into_inner());
        match guard.map.get(&key) {
            Some(entry) if entry.identity == *identity => {
                entry.referenced.store(true, Ordering::Relaxed);
                let value = entry.value.clone();
                drop(guard);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            Some(_) => {
                drop(guard);
                self.stats.collision_rejects.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(guard);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `value` under `key`, evicting under the capacity bound. An
    /// occupied hash — same request memoized twice, or a genuine
    /// collision — is replaced in place and keeps its ring slot.
    pub fn insert(&self, key: u64, identity: K, value: V) {
        if self.shard_capacity == 0 {
            return;
        }
        let mut evicted = 0u64;
        {
            let mut guard = self.shard(key).write().unwrap_or_else(|e| e.into_inner());
            let shard = &mut *guard;
            if let Some(entry) = shard.map.get_mut(&key) {
                entry.identity = identity;
                entry.value = value;
                entry.referenced.store(true, Ordering::Relaxed);
            } else {
                // Second-chance sweep: referenced entries get one more
                // lap, unreferenced ones go. Terminates because every
                // pass-over clears a referenced bit.
                while shard.map.len() >= self.shard_capacity {
                    let Some(candidate) = shard.ring.pop_front() else {
                        break;
                    };
                    match shard.map.get(&candidate) {
                        Some(entry) if entry.referenced.load(Ordering::Relaxed) => {
                            entry.referenced.store(false, Ordering::Relaxed);
                            shard.ring.push_back(candidate);
                        }
                        Some(_) => {
                            shard.map.remove(&candidate);
                            evicted += 1;
                        }
                        None => {}
                    }
                }
                shard.map.insert(
                    key,
                    Entry {
                        identity,
                        value,
                        referenced: AtomicBool::new(false),
                    },
                );
                shard.ring.push_back(key);
            }
        }
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (statistics are preserved). Entries being
    /// inserted concurrently by in-flight callers may land after the
    /// clear; they are fresh values, not resurrections of cleared ones.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut guard = shard.write().unwrap_or_else(|e| e.into_inner());
            guard.map.clear();
            guard.ring.clear();
        }
    }

    /// Memo-wide statistics since construction.
    pub fn stats(&self) -> ResultMemoStats {
        ResultMemoStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            collision_rejects: self.stats.collision_rejects.load(Ordering::Relaxed),
            insertions: self.stats.insertions.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_verifies_identity() {
        let memo: ShardedResultMemo<&str, u32> = ShardedResultMemo::with_capacity(16);
        memo.insert(7, "query-a", 1);
        assert_eq!(memo.get(7, &"query-a"), Some(1));
        // Same hash, different identity: a collision must be refused.
        assert_eq!(memo.get(7, &"query-b"), None);
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.collision_rejects), (1, 0, 1));
    }

    #[test]
    fn colliding_insert_replaces_in_place() {
        let memo: ShardedResultMemo<&str, u32> = ShardedResultMemo::with_capacity(16);
        memo.insert(7, "a", 1);
        memo.insert(7, "b", 2);
        assert_eq!(memo.get(7, &"a"), None);
        assert_eq!(memo.get(7, &"b"), Some(2));
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn capacity_zero_disables() {
        let memo: ShardedResultMemo<u64, u64> = ShardedResultMemo::with_capacity(0);
        assert_eq!(memo.capacity(), 0);
        memo.insert(1, 1, 1);
        assert_eq!(memo.get(1, &1), None);
        assert!(memo.is_empty());
    }

    #[test]
    fn len_never_exceeds_capacity() {
        for requested in [1usize, 3, 10, 64, 100, 1024] {
            let memo: ShardedResultMemo<u64, u64> = ShardedResultMemo::with_capacity(requested);
            assert!(memo.capacity() <= requested);
            assert!(memo.capacity() >= 1);
            for k in 0..2_000u64 {
                memo.insert(k, k, k);
                assert!(memo.len() <= memo.capacity());
            }
        }
    }

    #[test]
    fn second_chance_protects_hot_entries() {
        // >1 entry per stripe: a single-slot shard has no lap to grant.
        let memo: ShardedResultMemo<u64, u64> = ShardedResultMemo::with_capacity(256);
        memo.insert(0, 0, 42);
        for cold in 1..2_000u64 {
            assert_eq!(memo.get(0, &0), Some(42), "hot entry evicted at {cold}");
            memo.insert(cold, cold, cold);
        }
        assert!(memo.stats().evictions > 0);
    }

    #[test]
    fn clear_empties_and_keeps_stats() {
        let memo: ShardedResultMemo<u64, u64> = ShardedResultMemo::with_capacity(8);
        memo.insert(1, 1, 1);
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.stats().insertions, 1);
        assert_eq!(memo.get(1, &1), None);
    }

    #[test]
    fn prev_power_of_two_is_exact() {
        assert_eq!(prev_power_of_two(1), 1);
        assert_eq!(prev_power_of_two(2), 2);
        assert_eq!(prev_power_of_two(3), 2);
        assert_eq!(prev_power_of_two(10), 8);
        assert_eq!(prev_power_of_two(64), 64);
        assert_eq!(prev_power_of_two(100), 64);
    }

    #[test]
    fn concurrent_access_stays_bounded_and_verified() {
        let memo: ShardedResultMemo<u64, u64> = ShardedResultMemo::with_capacity(64);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let memo = &memo;
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        let k = (t * 1_000 + i) % 300;
                        memo.insert(k, k, k * 2);
                        if let Some(v) = memo.get(k, &k) {
                            assert_eq!(v, k * 2);
                        }
                        assert_eq!(memo.get(k, &(k + 1_000_000)), None);
                    }
                });
            }
        });
        assert!(memo.len() <= memo.capacity());
    }
}
