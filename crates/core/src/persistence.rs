//! The engine ↔ durable-store bridge: identity translation, spill, and
//! rehydration.
//!
//! [`expred_persist::PersistStore`] speaks *process-independent* keys —
//! `(udf fingerprint, schema fingerprint, content version)` — because a
//! [`expred_table::TableId`] is a process-local counter that means
//! nothing after a restart. The live cache tiers speak *process-local*
//! [`CacheNamespace`]s keyed by that id. `PersistLayer` owns the
//! translation in both directions:
//!
//! * **Spill** (live → disk): the layer implements
//!   [`expred_exec::SpillSink`], so every fresh answer entering the
//!   [`expred_exec::CacheStore`] (and every answer the capacity bound
//!   evicts) is offered to the WAL, translated through the table-id
//!   registry. Offers for unregistered tables are dropped and counted —
//!   never guessed.
//! * **Rehydrate** (disk → live): the first time a session submits a
//!   query over a dataset, the layer registers the table and prefill-loads
//!   every persisted namespace whose `(schema fingerprint, content
//!   version)` *both* match the live table — a version-checked hydration
//!   that can serve stale answers to no one. Selectivity counters ride
//!   along into the session's [`expred_exec::SelectivityTracker`].
//!
//! Row timestamps are wall-clock (`UNIX_EPOCH` nanos) so a cache TTL
//! ([`expred_exec::CacheStore::set_ttl`]) measures answer age across
//! restarts: a rehydrated namespace is backdated by its oldest persisted
//! answer's age and expires on schedule, not one full TTL after every
//! reboot.

use expred_exec::{CacheNamespace, CacheStore, SelectivityTracker, SpillSink};
use expred_persist::{PersistKey, PersistStats, PersistStore};
use expred_table::datasets::Dataset;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Current wall-clock time as nanos since `UNIX_EPOCH` (0 if the clock
/// is before the epoch — timestamps only feed TTL aging, so degrading to
/// "brand new" is safe).
pub(crate) fn now_unix_nanos() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// One registered table: its process-independent schema identity plus
/// which content versions have already been rehydrated this session.
#[derive(Debug, Default)]
struct TableReg {
    schema_fp: u64,
    hydrated: HashSet<u64>,
}

/// Counters the engine layer adds on top of [`PersistStats`].
#[derive(Debug, Default)]
struct LayerCounters {
    spilled_offers: AtomicU64,
    skipped_unregistered: AtomicU64,
    skipped_row_overflow: AtomicU64,
    rehydrated_rows: AtomicU64,
    rehydrated_namespaces: AtomicU64,
    selectivity_seeded: AtomicU64,
}

/// A session-level snapshot of the whole persistence pipeline: the
/// store's own counters plus the engine layer's translation/rehydration
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistSessionStats {
    /// Row answers accepted into the durable index.
    pub appended: u64,
    /// WAL records dropped under backpressure (recaptured by compaction).
    pub shed: u64,
    /// Records written to the WAL by the flusher.
    pub flushed: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Snapshot compactions completed.
    pub compactions: u64,
    /// Row answers recovered from disk at open.
    pub recovered_rows: u64,
    /// Namespaces recovered from disk at open.
    pub recovered_namespaces: u64,
    /// Corrupt/truncated tail bytes discarded at open.
    pub tail_bytes_discarded: u64,
    /// Cache writes offered to the store (fresh inserts + evictions).
    pub spilled_offers: u64,
    /// Offers dropped because their table was never registered.
    pub skipped_unregistered: u64,
    /// Offers dropped because the row index exceeds the on-disk `u32`
    /// key width.
    pub skipped_row_overflow: u64,
    /// Rows prefill-loaded into the live cache from disk.
    pub rehydrated_rows: u64,
    /// Namespaces prefill-loaded into the live cache from disk.
    pub rehydrated_namespaces: u64,
    /// Selectivity namespaces seeded from persisted counters.
    pub selectivity_seeded: u64,
}

impl PersistSessionStats {
    /// The snapshot as named counters, in stable declaration order — the
    /// serialization-ready view the `/metrics` endpoint and the bench
    /// artifacts share (render with
    /// [`expred_stats::json::counters_to_json`] /
    /// [`expred_stats::json::counters_to_text`]).
    pub fn fields(&self) -> [(&'static str, u64); 14] {
        [
            ("appended", self.appended),
            ("shed", self.shed),
            ("flushed", self.flushed),
            ("fsyncs", self.fsyncs),
            ("compactions", self.compactions),
            ("recovered_rows", self.recovered_rows),
            ("recovered_namespaces", self.recovered_namespaces),
            ("tail_bytes_discarded", self.tail_bytes_discarded),
            ("spilled_offers", self.spilled_offers),
            ("skipped_unregistered", self.skipped_unregistered),
            ("skipped_row_overflow", self.skipped_row_overflow),
            ("rehydrated_rows", self.rehydrated_rows),
            ("rehydrated_namespaces", self.rehydrated_namespaces),
            ("selectivity_seeded", self.selectivity_seeded),
        ]
    }
}

/// The engine's durable-persistence bridge. See the module docs.
#[derive(Debug)]
pub(crate) struct PersistLayer {
    store: PersistStore,
    /// Table instance id → registration (schema fingerprint + hydrated
    /// versions). Read on every spill; written once per new table state.
    tables: RwLock<HashMap<u64, TableReg>>,
    counters: LayerCounters,
}

impl PersistLayer {
    pub(crate) fn new(store: PersistStore) -> Self {
        Self {
            store,
            tables: RwLock::new(HashMap::new()),
            counters: LayerCounters::default(),
        }
    }

    pub(crate) fn store(&self) -> &PersistStore {
        &self.store
    }

    /// Translates a live namespace to its durable key, if the table is
    /// registered.
    fn durable_key(&self, namespace: CacheNamespace) -> Option<PersistKey> {
        let tables = self.tables.read().unwrap_or_else(|e| e.into_inner());
        tables.get(&namespace.table).map(|reg| PersistKey {
            udf: namespace.udf,
            table: reg.schema_fp,
            version: namespace.version,
        })
    }

    /// Registers `ds`'s current state and — exactly once per `(table,
    /// version)` per session — rehydrates every matching persisted
    /// namespace into `cache` and seeds `selectivity` with persisted
    /// counters.
    pub(crate) fn register(
        &self,
        ds: &Dataset,
        cache: &CacheStore,
        selectivity: &SelectivityTracker,
    ) {
        let tid = ds.table.id().as_u64();
        let schema_fp = ds.table.schema().fingerprint();
        let version = ds.table.version();
        {
            let tables = self.tables.read().unwrap_or_else(|e| e.into_inner());
            if let Some(reg) = tables.get(&tid) {
                if reg.schema_fp == schema_fp && reg.hydrated.contains(&version) {
                    return;
                }
            }
        }
        let mut tables = self.tables.write().unwrap_or_else(|e| e.into_inner());
        let reg = tables.entry(tid).or_default();
        // A table id whose schema changed is a different durable identity:
        // re-point the registration (hydration below is version-checked,
        // so nothing stale can have leaked under the old mapping).
        if reg.schema_fp != schema_fp {
            reg.schema_fp = schema_fp;
            reg.hydrated.clear();
        }
        if !reg.hydrated.insert(version) {
            return;
        }
        // Hydrate while holding the write lock: it happens once per table
        // state, and racing submits must not observe "registered" before
        // the prefill has landed (they would pay o_e for persisted rows).
        // Safe only because `CacheStore::prefill` never touches the spill
        // sink — a sink offer would re-enter `durable_key`'s read lock on
        // this same thread and deadlock the std RwLock.
        let now = now_unix_nanos();
        for key in self.store.namespaces() {
            if key.table != schema_fp || key.version != version {
                continue;
            }
            let Some(rows) = self.store.rows(key) else {
                continue;
            };
            if rows.is_empty() {
                continue;
            }
            let oldest = rows.iter().map(|&(_, _, ts)| ts).min().unwrap_or(now);
            let age = Duration::from_nanos(now.saturating_sub(oldest));
            let pairs: Vec<(usize, bool)> = rows
                .iter()
                .map(|&(row, answer, _)| (row as usize, answer))
                .collect();
            let namespace = CacheNamespace {
                udf: key.udf,
                table: tid,
                version,
            };
            let loaded = cache.prefill(namespace, &pairs, age);
            if loaded > 0 {
                self.counters
                    .rehydrated_rows
                    .fetch_add(loaded as u64, Ordering::Relaxed);
                self.counters
                    .rehydrated_namespaces
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        for (key, passes, total) in self.store.selectivities() {
            if key.table != schema_fp || key.version != version {
                continue;
            }
            let namespace = CacheNamespace {
                udf: key.udf,
                table: tid,
                version,
            };
            selectivity.seed_counts(namespace, passes, total);
            self.counters
                .selectivity_seeded
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Writes the session's current selectivity counters through to the
    /// store (absolute overwrite semantics: repeated flushes never
    /// double-count).
    pub(crate) fn flush_selectivity(&self, selectivity: &SelectivityTracker) {
        for (namespace, passes, total) in selectivity.snapshot_counts() {
            if let Some(key) = self.durable_key(namespace) {
                self.store.record_selectivity(key, passes, total);
            }
        }
    }

    /// Session-level statistics: store counters + layer counters.
    pub(crate) fn session_stats(&self) -> PersistSessionStats {
        let PersistStats {
            appended,
            shed,
            flushed,
            fsyncs,
            compactions,
            recovered_rows,
            recovered_namespaces,
            tail_bytes_discarded,
        } = self.store.stats();
        PersistSessionStats {
            appended,
            shed,
            flushed,
            fsyncs,
            compactions,
            recovered_rows,
            recovered_namespaces,
            tail_bytes_discarded,
            spilled_offers: self.counters.spilled_offers.load(Ordering::Relaxed),
            skipped_unregistered: self.counters.skipped_unregistered.load(Ordering::Relaxed),
            skipped_row_overflow: self.counters.skipped_row_overflow.load(Ordering::Relaxed),
            rehydrated_rows: self.counters.rehydrated_rows.load(Ordering::Relaxed),
            rehydrated_namespaces: self.counters.rehydrated_namespaces.load(Ordering::Relaxed),
            selectivity_seeded: self.counters.selectivity_seeded.load(Ordering::Relaxed),
        }
    }
}

impl SpillSink for PersistLayer {
    fn spill(&self, namespace: CacheNamespace, row: usize, answer: bool) {
        // The on-disk format stores row keys as u32; a row index beyond
        // that (no bundled dataset comes close) is dropped rather than
        // aliased onto a truncated key.
        let Ok(row) = u32::try_from(row) else {
            self.counters
                .skipped_row_overflow
                .fetch_add(1, Ordering::Relaxed);
            return;
        };
        let Some(key) = self.durable_key(namespace) else {
            self.counters
                .skipped_unregistered
                .fetch_add(1, Ordering::Relaxed);
            return;
        };
        self.counters.spilled_offers.fetch_add(1, Ordering::Relaxed);
        self.store.append_row(key, row, answer, now_unix_nanos());
    }
}
