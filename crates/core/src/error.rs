//! [`EngineError`]: typed rejection of bad query requests.
//!
//! The original API validated user input with `assert!`/`expect` — fine
//! for a research harness, fatal for a serving deployment where one bad
//! request must not take down the worker. Everything a *caller* can get
//! wrong (an out-of-range accuracy contract, a predictor column the table
//! does not have, an expression over an unidentifiable UDF, a plan the
//! solver proves unsatisfiable under a strict policy) surfaces as a
//! variant here, through [`crate::engine::QueryEngine::submit`] and
//! [`crate::query::QuerySpec::try_new`]. Internal invariant violations
//! still panic: those are bugs, not requests.

use std::fmt;

/// Why a query request was rejected.
///
/// Returned by the fallible query surface ([`QuerySpec::try_new`],
/// [`QueryEngine::submit`]) instead of panicking on user input.
///
/// [`QuerySpec::try_new`]: crate::query::QuerySpec::try_new
/// [`QueryEngine::submit`]: crate::engine::QueryEngine::submit
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// An accuracy-contract or cost-model field is out of range.
    InvalidSpec {
        /// Which field was rejected (`"alpha"`, `"rho"`, `"cost.retrieve"`, …).
        field: &'static str,
        /// The offending value.
        value: f64,
        /// The range the field must lie in.
        expected: &'static str,
    },
    /// The request names a predictor column the table does not have.
    UnknownColumn {
        /// The missing column.
        column: String,
        /// Every column the table does have, for the error message.
        available: Vec<String>,
    },
    /// The optimizer proved the constraints unsatisfiable and the request
    /// ran under [`InfeasiblePolicy::Error`] — the caller asked to be
    /// told rather than silently pay the evaluate-everything fallback.
    ///
    /// [`InfeasiblePolicy::Error`]: crate::request::InfeasiblePolicy::Error
    Infeasible {
        /// The strategy whose plan was infeasible.
        strategy: String,
    },
    /// A [`PredicateExpr`] cannot be served: it contains a UDF with no
    /// stable fingerprint (so the request has no cacheable identity) or a
    /// malformed evaluation cost.
    ///
    /// [`PredicateExpr`]: expred_udf::PredicateExpr
    BadExpression {
        /// What is wrong with the expression.
        reason: String,
    },
    /// Any other malformed request parameter (zero imputations, an empty
    /// label fraction, …).
    InvalidRequest {
        /// What is wrong with the request.
        reason: String,
    },
    /// A remote UDF backend the query depends on is unreachable: its
    /// circuit breaker is open or every retry of a probe exhausted its
    /// deadline, and no local fallback evaluator was configured. Unlike
    /// the 4xx variants this is not the caller's fault — the serving
    /// tier maps it to a retryable `503 Service Unavailable`.
    Unavailable {
        /// The backend that failed (e.g. the remote endpoint address).
        endpoint: String,
        /// Why it is unavailable (breaker open, deadline exhausted, …).
        reason: String,
    },
}

impl EngineError {
    /// Helper for range checks: errors unless `value` lies in the range
    /// described by `check`.
    pub(crate) fn expect_range(
        field: &'static str,
        value: f64,
        expected: &'static str,
        ok: bool,
    ) -> Result<(), EngineError> {
        if ok {
            Ok(())
        } else {
            Err(EngineError::InvalidSpec {
                field,
                value,
                expected,
            })
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidSpec {
                field,
                value,
                expected,
            } => write!(
                f,
                "invalid query spec: {field} = {value} (must be {expected})"
            ),
            EngineError::UnknownColumn { column, available } => write!(
                f,
                "unknown predictor column {column:?} (available: {})",
                available.join(", ")
            ),
            EngineError::Infeasible { strategy } => write!(
                f,
                "the {strategy} plan is infeasible under the requested contract \
                 (resubmit with InfeasiblePolicy::FallbackEvaluateAll to pay the \
                 evaluate-everything fallback instead)"
            ),
            EngineError::BadExpression { reason } => {
                write!(f, "bad predicate expression: {reason}")
            }
            EngineError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            EngineError::Unavailable { endpoint, reason } => write!(
                f,
                "remote UDF backend {endpoint} is unavailable: {reason} \
                 (retry later or configure a local fallback evaluator)"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// A predicate-DSL parse failure is a bad expression: the serving tier
/// parses `"predicate"` strings and `?` straight into the engine's error
/// space (and from there to a 400, never a panic).
impl From<expred_udf::ParseError> for EngineError {
    fn from(e: expred_udf::ParseError) -> Self {
        EngineError::BadExpression {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::InvalidSpec {
            field: "alpha",
            value: 1.5,
            expected: "in [0, 1]",
        };
        assert_eq!(
            e.to_string(),
            "invalid query spec: alpha = 1.5 (must be in [0, 1])"
        );
        let e = EngineError::UnknownColumn {
            column: "grade".into(),
            available: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("\"grade\""));
        assert!(e.to_string().contains("a, b"));
        assert!(EngineError::Infeasible {
            strategy: "intel_sample".into()
        }
        .to_string()
        .contains("infeasible"));
    }

    #[test]
    fn unavailable_names_the_endpoint_and_is_retry_worded() {
        let e = EngineError::Unavailable {
            endpoint: "127.0.0.1:9099".into(),
            reason: "circuit breaker open after 5 consecutive failures".into(),
        };
        let text = e.to_string();
        assert!(text.contains("127.0.0.1:9099"), "{text}");
        assert!(text.contains("circuit breaker open"), "{text}");
        assert!(text.contains("retry"), "{text}");
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&EngineError::BadExpression { reason: "x".into() });
    }

    #[test]
    fn parse_errors_convert_to_bad_expression() {
        let parse_err = expred_udf::parse_predicate("a and", &expred_udf::OracleRegistry::new())
            .expect_err("truncated predicate");
        let engine_err: EngineError = parse_err.into();
        match &engine_err {
            EngineError::BadExpression { reason } => {
                assert!(reason.contains("parse error"), "{reason}");
                assert!(reason.contains("byte 5"), "{reason}");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
