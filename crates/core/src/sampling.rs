//! Joint estimation & exploitation: the sampling side (paper §4).
//!
//! * [`SampleSizeRule`] — how many tuples to sample per group: a fixed
//!   fraction (Experiment 1 uses 5%), a constant per group (§6.3's
//!   `Constant(c)` scheme), or the paper's rule of thumb
//!   `F_a = num · t_a · n^{-1/3}` (§4.3, the `Two-Third-Power` scheme).
//! * [`sample_groups`] — draws and evaluates the sample through the
//!   audited invoker (sampling cost is *included* in the algorithm's cost,
//!   §6.2), reusing any tuples that were already evaluated (e.g. the 1%
//!   used for predictor selection — "the 1% labelled tuples can be re-used
//!   for both selectivity estimation and as part of the output", §4.4).
//! * [`adaptive_num_search`] — §4.3's adaptive scheme: grow `num`, re-plan,
//!   and stop when the estimated total cost starts rising.

use crate::optimize::{solve_estimated, CorrelationModel, EstimatedGroup};
use crate::query::QuerySpec;
use expred_exec::{ExecContext, Executor};
use expred_stats::estimator::SelectivityEstimate;
use expred_stats::rng::Prng;
use expred_table::GroupBy;
use expred_udf::UdfInvoker;

/// How many tuples to sample from each group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleSizeRule {
    /// Sample `fraction · t_a` tuples from each group (so `fraction` of
    /// the whole table).
    Fraction(f64),
    /// Sample a constant number of tuples per group.
    Constant(usize),
    /// The paper's rule of thumb: `F_a = num · t_a · n^{-1/3}`.
    TwoThirdPower(f64),
}

impl SampleSizeRule {
    /// Target sample size for a group of `t_a` tuples in a table of `n`.
    pub fn sample_size(&self, group_size: usize, total_rows: usize) -> usize {
        let t = group_size as f64;
        let raw = match self {
            SampleSizeRule::Fraction(f) => f * t,
            SampleSizeRule::Constant(c) => *c as f64,
            SampleSizeRule::TwoThirdPower(num) => num * t * (total_rows as f64).powf(-1.0 / 3.0),
        };
        (raw.round().max(0.0) as usize).min(group_size)
    }
}

/// The outcome of sampling one grouping.
#[derive(Debug, Clone)]
pub struct GroupSample {
    /// Per-group selectivity estimates (Beta posterior over the evaluated
    /// tuples, §4.1).
    pub estimates: Vec<SelectivityEstimate>,
    /// Per-group count of evaluated tuples (`F_a`), including re-used ones.
    pub evaluated: Vec<u64>,
    /// Per-group count of evaluated tuples that satisfied the predicate
    /// (`F⁺_a`).
    pub positives: Vec<u64>,
}

impl GroupSample {
    /// Converts the sample into the optimizer's input, attaching group
    /// sizes from the grouping.
    pub fn to_estimated_groups(&self, groups: &GroupBy) -> Vec<EstimatedGroup> {
        (0..groups.num_groups())
            .map(|g| EstimatedGroup {
                size: groups.size(g) as f64,
                sampled: self.evaluated[g] as f64,
                sampled_positive: self.positives[g] as f64,
                sel: self.estimates[g].mean(),
                var: self.estimates[g].variance(),
            })
            .collect()
    }
}

/// Samples every group per `rule`, evaluating through `invoker`.
///
/// Already-evaluated rows (from predictor selection or earlier sampling
/// rounds) count toward the target for free; only the shortfall incurs
/// retrieval + evaluation cost. Estimates are Beta posteriors over *all*
/// evaluated rows of the group.
pub fn sample_groups(
    groups: &GroupBy,
    invoker: &UdfInvoker<'_>,
    rule: SampleSizeRule,
    rng: &mut Prng,
) -> GroupSample {
    sample_groups_ctx(groups, invoker, rule, rng, &ExecContext::sequential())
}

/// [`sample_groups`], with each group's shortfall evaluated as one batch
/// through `executor`.
pub fn sample_groups_with(
    groups: &GroupBy,
    invoker: &UdfInvoker<'_>,
    rule: SampleSizeRule,
    rng: &mut Prng,
    executor: &dyn Executor,
) -> GroupSample {
    sample_groups_ctx(groups, invoker, rule, rng, &ExecContext::new(executor))
}

/// [`sample_groups`] under an execution context.
///
/// Row selection consumes the RNG identically to the sequential path, and
/// every batched row is fresh and distinct, so estimates, counts, and
/// charged costs are byte-identical across backends for a fixed seed.
/// Rows known to the invoker — sampled earlier in this query *or*
/// evaluated by a previous query sharing the session cache — count toward
/// the target for free.
pub fn sample_groups_ctx(
    groups: &GroupBy,
    invoker: &UdfInvoker<'_>,
    rule: SampleSizeRule,
    rng: &mut Prng,
    ctx: &ExecContext<'_>,
) -> GroupSample {
    let n = groups.num_rows();
    let mut estimates = Vec::with_capacity(groups.num_groups());
    let mut evaluated = Vec::with_capacity(groups.num_groups());
    let mut positives = Vec::with_capacity(groups.num_groups());
    for (g, _, rows) in groups.iter() {
        let target = rule.sample_size(groups.size(g), n);
        // Free information first: rows already evaluated.
        let mut known: Vec<u32> = rows
            .iter()
            .copied()
            .filter(|&r| invoker.is_evaluated(r as usize))
            .collect();
        if known.len() < target {
            // Pay for the shortfall with fresh random rows.
            let fresh: Vec<u32> = rows
                .iter()
                .copied()
                .filter(|&r| !invoker.is_evaluated(r as usize))
                .collect();
            let need = target - known.len();
            let batch: Vec<usize> = rng
                .sample_indices(fresh.len(), need)
                .into_iter()
                .map(|idx| fresh[idx] as usize)
                .collect();
            invoker.retrieve_and_evaluate_batch(ctx.executor, &batch);
            known.extend(batch.into_iter().map(|row| row as u32));
        }
        let pos = known
            .iter()
            .filter(|&&r| invoker.memoized(r as usize) == Some(true))
            .count() as u64;
        let total = known.len() as u64;
        estimates.push(SelectivityEstimate::from_sample(pos, total));
        evaluated.push(total);
        positives.push(pos);
    }
    GroupSample {
        estimates,
        evaluated,
        positives,
    }
}

/// Result of the adaptive `num` search (§4.3).
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// The sample state at the stopping point.
    pub sample: GroupSample,
    /// The `num` value the search stopped at.
    pub num: f64,
    /// Estimated total cost (sampling already spent + planned remainder)
    /// at the stopping point.
    pub estimated_cost: f64,
}

/// §4.3's adaptive scheme: start from a small `num`, keep enlarging the
/// sample and re-solving ConvexProg 4.1; stop when the estimated total
/// cost (sampling spent so far + planned execution) rises for two
/// consecutive steps, returning the best state seen.
pub fn adaptive_num_search(
    groups: &GroupBy,
    invoker: &UdfInvoker<'_>,
    spec: &QuerySpec,
    corr: CorrelationModel,
    rng: &mut Prng,
) -> AdaptiveOutcome {
    adaptive_num_search_ctx(groups, invoker, spec, corr, rng, &ExecContext::sequential())
}

/// [`adaptive_num_search`], sampling each round through `executor`.
pub fn adaptive_num_search_with(
    groups: &GroupBy,
    invoker: &UdfInvoker<'_>,
    spec: &QuerySpec,
    corr: CorrelationModel,
    rng: &mut Prng,
    executor: &dyn Executor,
) -> AdaptiveOutcome {
    adaptive_num_search_ctx(
        groups,
        invoker,
        spec,
        corr,
        rng,
        &ExecContext::new(executor),
    )
}

/// [`adaptive_num_search`] under an execution context.
pub fn adaptive_num_search_ctx(
    groups: &GroupBy,
    invoker: &UdfInvoker<'_>,
    spec: &QuerySpec,
    corr: CorrelationModel,
    rng: &mut Prng,
    ctx: &ExecContext<'_>,
) -> AdaptiveOutcome {
    let mut num = 0.5 * spec.alpha.max(0.1);
    let growth = 1.4;
    let max_steps = 16;
    let mut best: Option<AdaptiveOutcome> = None;
    let mut rises = 0;
    for _ in 0..max_steps {
        let sample = sample_groups_ctx(
            groups,
            invoker,
            SampleSizeRule::TwoThirdPower(num),
            rng,
            ctx,
        );
        let est_groups = sample.to_estimated_groups(groups);
        let spent = invoker.cost(&spec.cost);
        let planned = match solve_estimated(&est_groups, spec, corr) {
            Ok(plan) => {
                let sizes: Vec<f64> = est_groups.iter().map(|g| g.remaining()).collect();
                plan.expected_cost(&sizes, &spec.cost)
            }
            Err(_) => f64::INFINITY,
        };
        let total = spent + planned;
        let improved = best.as_ref().is_none_or(|b| total < b.estimated_cost);
        if improved {
            best = Some(AdaptiveOutcome {
                sample,
                num,
                estimated_cost: total,
            });
            rises = 0;
        } else {
            rises += 1;
            if rises >= 2 {
                break;
            }
        }
        num *= growth;
    }
    best.expect("at least one adaptive step always runs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use expred_table::{DataType, Field, Schema, Table, Value};
    use expred_udf::{CostModel, OracleUdf};

    /// A 3-group table: group g has 40 rows, selectivity g * 0.3 + 0.1.
    fn test_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("label", DataType::Bool),
        ]);
        let mut rows = Vec::new();
        for g in 0..3i64 {
            let sel = g as f64 * 0.3 + 0.1;
            for i in 0..40 {
                let label = (i as f64) < sel * 40.0;
                rows.push(vec![Value::Int(g), Value::Bool(label)]);
            }
        }
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn rule_sizes() {
        assert_eq!(SampleSizeRule::Fraction(0.05).sample_size(1000, 10_000), 50);
        assert_eq!(SampleSizeRule::Constant(30).sample_size(1000, 10_000), 30);
        assert_eq!(SampleSizeRule::Constant(30).sample_size(10, 10_000), 10);
        // Two-third power: num * t * n^{-1/3} = 2 * 1000 * 0.046.. ≈ 93.
        let s = SampleSizeRule::TwoThirdPower(2.0).sample_size(1000, 10_000);
        assert!((90..=96).contains(&s), "{s}");
    }

    #[test]
    fn sampling_charges_and_estimates() {
        let table = test_table();
        let udf = OracleUdf::new("label");
        let invoker = UdfInvoker::new(&udf, &table);
        let groups = table.group_by("g").unwrap();
        let mut rng = Prng::seeded(5);
        let sample = sample_groups(&groups, &invoker, SampleSizeRule::Constant(20), &mut rng);
        assert_eq!(sample.evaluated, vec![20, 20, 20]);
        let counts = invoker.counts();
        assert_eq!(counts.evaluated, 60);
        assert_eq!(counts.retrieved, 60);
        // Estimates should be ordered like the true selectivities.
        assert!(sample.estimates[0].mean() < sample.estimates[1].mean());
        assert!(sample.estimates[1].mean() < sample.estimates[2].mean());
    }

    #[test]
    fn sampling_reuses_free_labels() {
        let table = test_table();
        let udf = OracleUdf::new("label");
        let invoker = UdfInvoker::new(&udf, &table);
        let groups = table.group_by("g").unwrap();
        // Pre-evaluate 10 rows of group 0 (rows 0..10).
        for r in 0..10 {
            invoker.retrieve_and_evaluate(r);
        }
        let before = invoker.counts().evaluated;
        let mut rng = Prng::seeded(6);
        let sample = sample_groups(&groups, &invoker, SampleSizeRule::Constant(10), &mut rng);
        // Group 0's target of 10 is fully covered by reuse.
        assert_eq!(invoker.counts().evaluated, before + 20);
        assert_eq!(sample.evaluated[0], 10);
    }

    #[test]
    fn estimates_follow_beta_posterior() {
        let table = test_table();
        let udf = OracleUdf::new("label");
        let invoker = UdfInvoker::new(&udf, &table);
        let groups = table.group_by("g").unwrap();
        let mut rng = Prng::seeded(7);
        let sample = sample_groups(&groups, &invoker, SampleSizeRule::Fraction(1.0), &mut rng);
        // Full sampling: estimates are posteriors over the whole group.
        for g in 0..3 {
            let pos = sample.positives[g];
            let n = sample.evaluated[g];
            assert_eq!(n, 40);
            let want = (pos as f64 + 1.0) / (n as f64 + 2.0);
            assert!((sample.estimates[g].mean() - want).abs() < 1e-12);
        }
    }

    #[test]
    fn to_estimated_groups_shapes() {
        let table = test_table();
        let udf = OracleUdf::new("label");
        let invoker = UdfInvoker::new(&udf, &table);
        let groups = table.group_by("g").unwrap();
        let mut rng = Prng::seeded(8);
        let sample = sample_groups(&groups, &invoker, SampleSizeRule::Constant(5), &mut rng);
        let est = sample.to_estimated_groups(&groups);
        assert_eq!(est.len(), 3);
        for g in &est {
            assert_eq!(g.size, 40.0);
            assert_eq!(g.sampled, 5.0);
            assert_eq!(g.remaining(), 35.0);
        }
    }

    #[test]
    fn adaptive_search_terminates_with_finite_cost() {
        let table = test_table();
        let udf = OracleUdf::new("label");
        let invoker = UdfInvoker::new(&udf, &table);
        let groups = table.group_by("g").unwrap();
        let spec = QuerySpec::new(0.5, 0.5, 0.5, CostModel::PAPER_DEFAULT);
        let mut rng = Prng::seeded(9);
        let outcome = adaptive_num_search(
            &groups,
            &invoker,
            &spec,
            CorrelationModel::Independent,
            &mut rng,
        );
        assert!(outcome.estimated_cost.is_finite());
        assert!(outcome.num > 0.0);
    }
}
