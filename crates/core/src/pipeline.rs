//! End-to-end query pipelines (paper §6.2's contestants).
//!
//! * [`run_intel_sample`] — the paper's main algorithm: choose a predictor
//!   column (fixed, auto-ranked, or an ML virtual column), sample to
//!   estimate selectivities, solve the convex program, execute.
//! * [`run_optimal`] — the unrealistic lower bound: exact selectivities
//!   handed to the §3.2 optimizer for free.
//! * [`run_naive`] — retrieve a random `β` fraction and evaluate all of it.
//!
//! Every pipeline runs against the audited [`UdfInvoker`], so reported
//! costs include sampling and predictor-selection evaluations, exactly as
//! §6.2 requires.

use crate::column_select::{rank_columns_ctx, virtual_column};
use crate::execute::{execute_plan_ctx, truth_vector};
use crate::optimize::{solve_estimated, solve_perfect_selectivities, CorrelationModel};
use crate::plan::Plan;
use crate::query::QuerySpec;
use crate::sampling::{sample_groups_ctx, SampleSizeRule};
use expred_exec::{ExecContext, Executor};
use expred_ml::metrics::{precision_recall, PrSummary};
use expred_stats::rng::Prng;
use expred_table::datasets::{Dataset, LABEL_COLUMN};
use expred_table::{GroupBy, Table};
use expred_udf::{BooleanUdf, CostCounts, OracleUdf, SlowUdf, UdfInvoker};
use std::sync::Arc;
use std::time::Instant;

/// The label oracle every pipeline evaluates, wrapped in the context's
/// artificial latency when one is set. Answers, audited counts, and
/// cache identities are unchanged — [`SlowUdf`] shares its inner UDF's
/// fingerprint — so a latency-injected session is byte-identical to a
/// plain one, only slower.
pub(crate) fn label_udf(ctx: &ExecContext<'_>) -> Box<dyn BooleanUdf> {
    match ctx.udf_latency {
        Some(latency) => Box::new(SlowUdf::new(OracleUdf::new(LABEL_COLUMN), latency)),
        None => Box::new(OracleUdf::new(LABEL_COLUMN)),
    }
}

/// Partitions `table` by `column`, serving the partition from the
/// context's session [`expred_table::DerivedCache`] when one is attached
/// (repeat queries over an unchanged table skip the re-group; `push_row`
/// bumps the version and forces a fresh derivation). Without a cache
/// this is exactly [`Table::group_by`] — the partition is byte-identical
/// either way.
pub(crate) fn session_group_by(
    table: &Table,
    column: &str,
    ctx: &ExecContext<'_>,
) -> Result<Arc<GroupBy>, String> {
    match ctx.derived {
        Some(cache) => cache.group_by(table, column),
        None => table.group_by(column).map(Arc::new),
    }
}

/// How the correlated column is obtained.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictorChoice {
    /// Use a named column as-is.
    Fixed(String),
    /// Rank all candidate columns on a labelled sample (§4.4 method 1).
    Auto {
        /// Fraction of the table to label for ranking (the paper uses 1%).
        label_fraction: f64,
    },
    /// Train a logistic regressor and bucketize its scores (§4.4 method 2).
    Virtual {
        /// Number of equal-depth buckets (the paper uses 10).
        buckets: usize,
        /// Fraction of the table to label for training (the paper uses 1%).
        label_fraction: f64,
    },
}

/// Intel-Sample configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct IntelSampleConfig {
    /// Accuracy contract.
    pub spec: QuerySpec,
    /// Per-group sampling budget.
    pub rule: SampleSizeRule,
    /// Estimate-correlation model for the convex program.
    pub corr: CorrelationModel,
    /// Predictor column source.
    pub predictor: PredictorChoice,
}

impl IntelSampleConfig {
    /// The paper's Experiment-1 configuration for a given predictor:
    /// defaults `α=β=ρ=0.8`, independent-correlation convex program, 5%
    /// sample.
    pub fn experiment1(predictor: PredictorChoice) -> Self {
        Self {
            spec: QuerySpec::paper_default(),
            rule: SampleSizeRule::Fraction(0.05),
            corr: CorrelationModel::Independent,
            predictor,
        }
    }
}

/// The outcome of one pipeline run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Row ids returned as the query answer.
    pub returned: Vec<u32>,
    /// Audited action counts (retrievals, UDF evaluations, memo hits).
    pub counts: CostCounts,
    /// Total cost under the query's cost model.
    pub cost: f64,
    /// Quality versus ground truth (evaluation-side only).
    pub summary: PrSummary,
    /// Number of groups the plan was computed over.
    pub num_groups: usize,
    /// Wall-clock seconds spent outside UDF calls (planning, sampling
    /// bookkeeping, optimization) — the paper reports this is ≪ 1 s.
    pub compute_seconds: f64,
    /// False when the optimizer declared the constraints infeasible and
    /// the pipeline fell back to evaluating everything.
    pub plan_feasible: bool,
}

/// Runs the paper's Intel-Sample pipeline on a dataset.
///
/// Equivalent to [`run_intel_sample_ctx`] on [`ExecContext::sequential`].
pub fn run_intel_sample(ds: &Dataset, cfg: &IntelSampleConfig, seed: u64) -> RunOutcome {
    run_intel_sample_ctx(ds, cfg, seed, &ExecContext::sequential())
}

/// Runs Intel-Sample with every UDF probe (predictor labelling, sampling,
/// execution) routed through `executor`.
pub fn run_intel_sample_with(
    ds: &Dataset,
    cfg: &IntelSampleConfig,
    seed: u64,
    executor: &dyn Executor,
) -> RunOutcome {
    run_intel_sample_ctx(ds, cfg, seed, &ExecContext::new(executor))
}

/// Runs Intel-Sample under an execution context.
///
/// For a fixed seed the outcome is byte-identical across backends: all
/// randomness is drawn on the calling thread before batches dispatch.
/// When the context carries a session cache store, one invoker — and
/// therefore one borrowed cache handle — serves predictor ranking,
/// sampling, *and* execution, and rows paid for by earlier queries in
/// the session arrive as free [`CostCounts::reuse_hits`].
pub fn run_intel_sample_ctx(
    ds: &Dataset,
    cfg: &IntelSampleConfig,
    seed: u64,
    ctx: &ExecContext<'_>,
) -> RunOutcome {
    let start = Instant::now();
    let table = &ds.table;
    let udf = label_udf(ctx);
    let invoker = UdfInvoker::with_context(udf.as_ref(), table, ctx);
    let mut rng = Prng::seeded(seed);

    // Step 0: obtain the correlated (possibly virtual) grouping.
    let groups: Arc<GroupBy> = match &cfg.predictor {
        PredictorChoice::Fixed(col) => {
            session_group_by(table, col, ctx).expect("predictor column must exist")
        }
        PredictorChoice::Auto { label_fraction } => {
            let candidates = ds.candidate_columns();
            let (scores, _labelled) = rank_columns_ctx(
                table,
                &candidates,
                &invoker,
                &cfg.spec,
                *label_fraction,
                &mut rng,
                ctx,
            );
            let best = scores.first().expect("at least one candidate");
            session_group_by(table, &best.column, ctx).expect("ranked column must exist")
        }
        PredictorChoice::Virtual {
            buckets,
            label_fraction,
        } => {
            let n = table.num_rows();
            let want = ((label_fraction * n as f64).ceil() as usize).clamp(1, n);
            let batch = rng.sample_indices(n, want);
            invoker.retrieve_and_evaluate_batch(ctx.executor, &batch);
            let labelled: Vec<u32> = batch.into_iter().map(|r| r as u32).collect();
            Arc::new(virtual_column(
                table,
                &[LABEL_COLUMN, "row_id"],
                &invoker,
                &labelled,
                *buckets,
                ctx,
            ))
        }
    };

    // Step 1: sample for selectivity estimates (reuses labelled rows).
    let sample = sample_groups_ctx(&groups, &invoker, cfg.rule, &mut rng, ctx);
    let est_groups = sample.to_estimated_groups(&groups);

    // Step 2: optimize. Infeasibility falls back to evaluating everything
    // (always correct, never cheap).
    let (plan, plan_feasible) = match solve_estimated(&est_groups, &cfg.spec, cfg.corr) {
        Ok(plan) => (plan, true),
        Err(_) => (Plan::evaluate_all(groups.num_groups()), false),
    };

    // Step 3: execute.
    let result = execute_plan_ctx(&plan, &groups, &invoker, &mut rng, ctx);
    let compute_seconds = start.elapsed().as_secs_f64();

    let truth = truth_vector(table, LABEL_COLUMN);
    let returned_usize: Vec<usize> = result.returned.iter().map(|&r| r as usize).collect();
    let summary = precision_recall(&returned_usize, &truth);
    let counts = invoker.counts();
    RunOutcome {
        returned: result.returned,
        counts,
        cost: counts.cost(&cfg.spec.cost),
        summary,
        num_groups: groups.num_groups(),
        compute_seconds,
        plan_feasible,
    }
}

/// Runs the unrealistic `Optimal` baseline: exact selectivities are read
/// from ground truth for free, then the §3.2 optimizer plans and executes.
pub fn run_optimal(ds: &Dataset, spec: &QuerySpec, predictor: &str, seed: u64) -> RunOutcome {
    run_optimal_ctx(ds, spec, predictor, seed, &ExecContext::sequential())
}

/// [`run_optimal`], executing its plan through `executor`.
pub fn run_optimal_with(
    ds: &Dataset,
    spec: &QuerySpec,
    predictor: &str,
    seed: u64,
    executor: &dyn Executor,
) -> RunOutcome {
    run_optimal_ctx(ds, spec, predictor, seed, &ExecContext::new(executor))
}

/// [`run_optimal`] under an execution context.
pub fn run_optimal_ctx(
    ds: &Dataset,
    spec: &QuerySpec,
    predictor: &str,
    seed: u64,
    ctx: &ExecContext<'_>,
) -> RunOutcome {
    let start = Instant::now();
    let table = &ds.table;
    let udf = label_udf(ctx);
    let invoker = UdfInvoker::with_context(udf.as_ref(), table, ctx);
    let mut rng = Prng::seeded(seed);
    let groups = session_group_by(table, predictor, ctx).expect("predictor column");
    let truth = truth_vector(table, LABEL_COLUMN);

    let sizes: Vec<f64> = groups.sizes().iter().map(|&s| s as f64).collect();
    let sels: Vec<f64> = (0..groups.num_groups())
        .map(|g| {
            let rows = groups.rows(g);
            rows.iter().filter(|&&r| truth[r as usize]).count() as f64 / rows.len() as f64
        })
        .collect();
    let (plan, plan_feasible) = match solve_perfect_selectivities(&sizes, &sels, spec) {
        Ok(plan) => (plan, true),
        Err(_) => (Plan::evaluate_all(groups.num_groups()), false),
    };
    let result = execute_plan_ctx(&plan, &groups, &invoker, &mut rng, ctx);
    let compute_seconds = start.elapsed().as_secs_f64();
    let returned_usize: Vec<usize> = result.returned.iter().map(|&r| r as usize).collect();
    let summary = precision_recall(&returned_usize, &truth);
    let counts = invoker.counts();
    RunOutcome {
        returned: result.returned,
        counts,
        cost: counts.cost(&spec.cost),
        summary,
        num_groups: groups.num_groups(),
        compute_seconds,
        plan_feasible,
    }
}

/// Runs the `Naive` baseline: retrieve a uniform `β` fraction of the table
/// and evaluate every retrieved tuple (§6.2).
pub fn run_naive(ds: &Dataset, spec: &QuerySpec, seed: u64) -> RunOutcome {
    run_naive_ctx(ds, spec, seed, &ExecContext::sequential())
}

/// [`run_naive`], evaluating its β-fraction as executor batches.
pub fn run_naive_with(
    ds: &Dataset,
    spec: &QuerySpec,
    seed: u64,
    executor: &dyn Executor,
) -> RunOutcome {
    run_naive_ctx(ds, spec, seed, &ExecContext::new(executor))
}

/// [`run_naive`] under an execution context.
pub fn run_naive_ctx(
    ds: &Dataset,
    spec: &QuerySpec,
    seed: u64,
    ctx: &ExecContext<'_>,
) -> RunOutcome {
    let start = Instant::now();
    let table = &ds.table;
    let udf = label_udf(ctx);
    let invoker = UdfInvoker::with_context(udf.as_ref(), table, ctx);
    let mut rng = Prng::seeded(seed);
    let n = table.num_rows();
    let k = ((spec.beta * n as f64).ceil() as usize).min(n);
    let batch = rng.sample_indices(n, k);
    let answers = invoker.retrieve_and_evaluate_batch(ctx.executor, &batch);
    let mut returned: Vec<u32> = batch
        .into_iter()
        .zip(answers)
        .filter(|&(_, answer)| answer)
        .map(|(row, _)| row as u32)
        .collect();
    returned.sort_unstable();
    let compute_seconds = start.elapsed().as_secs_f64();
    let truth = truth_vector(table, LABEL_COLUMN);
    let returned_usize: Vec<usize> = returned.iter().map(|&r| r as usize).collect();
    let summary = precision_recall(&returned_usize, &truth);
    let counts = invoker.counts();
    RunOutcome {
        returned,
        counts,
        cost: counts.cost(&spec.cost),
        summary,
        num_groups: 1,
        compute_seconds,
        plan_feasible: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expred_table::datasets::{Dataset, PROSPER};

    fn prosper() -> Dataset {
        Dataset::generate(PROSPER, 21)
    }

    #[test]
    fn naive_meets_recall_in_expectation_with_perfect_precision() {
        let ds = prosper();
        let spec = QuerySpec::paper_default();
        let out = run_naive(&ds, &spec, 1);
        assert_eq!(out.summary.precision, 1.0);
        assert!(
            (out.summary.recall - 0.8).abs() < 0.03,
            "{}",
            out.summary.recall
        );
        assert_eq!(
            out.counts.evaluated as usize,
            (0.8f64 * 30_000.0).ceil() as usize
        );
    }

    #[test]
    fn intel_sample_fixed_predictor_beats_naive() {
        let ds = prosper();
        let cfg = IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into()));
        let intel = run_intel_sample(&ds, &cfg, 2);
        let naive = run_naive(&ds, &cfg.spec, 2);
        assert!(intel.plan_feasible, "plan must be feasible on Prosper");
        assert!(
            intel.counts.evaluated < naive.counts.evaluated,
            "intel {} vs naive {}",
            intel.counts.evaluated,
            naive.counts.evaluated
        );
    }

    #[test]
    fn intel_sample_respects_constraints_typically() {
        let ds = prosper();
        let cfg = IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into()));
        let mut ok = 0;
        let runs = 10;
        for seed in 0..runs {
            let out = run_intel_sample(&ds, &cfg, 100 + seed);
            if out.summary.meets(cfg.spec.alpha, cfg.spec.beta) {
                ok += 1;
            }
        }
        // rho = 0.8: at least 8/10 in expectation; allow one slip.
        assert!(ok >= 7, "constraints met only {ok}/{runs} times");
    }

    #[test]
    fn optimal_is_cheapest() {
        let ds = prosper();
        let spec = QuerySpec::paper_default();
        let cfg = IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into()));
        let optimal = run_optimal(&ds, &spec, "grade", 3);
        let intel = run_intel_sample(&ds, &cfg, 3);
        assert!(optimal.plan_feasible);
        assert!(
            optimal.counts.evaluated <= intel.counts.evaluated,
            "optimal {} vs intel {}",
            optimal.counts.evaluated,
            intel.counts.evaluated
        );
    }

    #[test]
    fn auto_predictor_runs_and_is_competitive() {
        let ds = prosper();
        let cfg = IntelSampleConfig::experiment1(PredictorChoice::Auto {
            label_fraction: 0.01,
        });
        let auto = run_intel_sample(&ds, &cfg, 4);
        let naive = run_naive(&ds, &cfg.spec, 4);
        assert!(auto.counts.evaluated < naive.counts.evaluated);
    }

    #[test]
    fn virtual_predictor_runs() {
        let ds = prosper();
        let cfg = IntelSampleConfig::experiment1(PredictorChoice::Virtual {
            buckets: 10,
            label_fraction: 0.01,
        });
        let out = run_intel_sample(&ds, &cfg, 5);
        assert!(out.num_groups >= 5);
        let naive = run_naive(&ds, &cfg.spec, 5);
        assert!(out.counts.evaluated < naive.counts.evaluated);
    }

    #[test]
    fn compute_time_is_sub_second() {
        let ds = prosper();
        let cfg = IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into()));
        let out = run_intel_sample(&ds, &cfg, 6);
        // Debug builds are slow; the paper's <1s claim is checked in the
        // release-mode experiment harness. Here: just sanity.
        assert!(out.compute_seconds < 30.0);
    }
}
