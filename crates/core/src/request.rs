//! [`QueryRequest`]: the composable, fallible query surface.
//!
//! A request bundles *what* to run (a [`Strategy`]), the seed, and the
//! serving options ([`InfeasiblePolicy`]). It is the single argument of
//! [`QueryEngine::submit`], the engine's primary entry point — the legacy
//! [`Query`]-enum [`QueryEngine::run`] is a thin (panicking) wrapper over
//! it.
//!
//! ```
//! use expred_core::{QueryEngine, QueryRequest, QuerySpec};
//! use expred_table::datasets::{Dataset, DatasetSpec, PROSPER};
//! use expred_udf::CostModel;
//!
//! let ds = Dataset::generate(DatasetSpec { rows: 2_000, ..PROSPER }, 7);
//! let engine = QueryEngine::new();
//!
//! // Fallible end to end: spec validation, then submission.
//! let spec = QuerySpec::try_new(0.9, 0.9, 0.9, CostModel::PAPER_DEFAULT)?;
//! let outcome = engine.submit(&ds, &QueryRequest::naive(spec).with_seed(42))?;
//! assert!(!outcome.returned.is_empty());
//!
//! // Bad input is an error, not a panic.
//! let bad = QueryRequest::optimal(spec, "no_such_column");
//! assert!(engine.submit(&ds, &bad).is_err());
//! # Ok::<(), expred_core::EngineError>(())
//! ```
//!
//! [`QueryEngine::submit`]: crate::engine::QueryEngine::submit
//! [`QueryEngine::run`]: crate::engine::QueryEngine::run
//! [`Query`]: crate::engine::Query

use crate::engine::Query;
use crate::optimize::CorrelationModel;
use crate::pipeline::IntelSampleConfig;
use crate::query::QuerySpec;
use crate::sampling::SampleSizeRule;
use crate::strategy::{
    Adaptive, ExprScan, IntelSample, Iterative, Learning, Multiple, Naive, Optimal, Strategy,
};
use expred_udf::{CostModel, PredicateExpr};
use std::sync::Arc;

/// What the engine should do when the optimizer proves a request's
/// constraints unsatisfiable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InfeasiblePolicy {
    /// Fall back to evaluating everything — always correct, never cheap.
    /// This is the legacy behavior; the outcome reports
    /// `plan_feasible == false`.
    #[default]
    FallbackEvaluateAll,
    /// Surface [`crate::error::EngineError::Infeasible`] instead of
    /// paying for the fallback silently. Note the *detection* happens
    /// when the pipeline
    /// reports back, so the (already-executed, already-billed) fallback
    /// outcome is still memoized — a later resubmission under
    /// [`InfeasiblePolicy::FallbackEvaluateAll`] gets it for free.
    Error,
}

/// One composable query request: strategy + seed + options.
///
/// Construct with a convenience constructor (one per built-in strategy)
/// or [`QueryRequest::new`] for a custom [`Strategy`], then chain
/// builders. Requests are cheap to clone (the strategy is shared behind
/// an `Arc`) and a single request value can be resubmitted — to the same
/// engine (memoized) or to others.
#[derive(Clone)]
pub struct QueryRequest {
    strategy: Arc<dyn Strategy>,
    seed: u64,
    on_infeasible: InfeasiblePolicy,
}

impl QueryRequest {
    /// A request running `strategy` with seed 0 and default options.
    pub fn new(strategy: impl Strategy + 'static) -> Self {
        Self::from_arc(Arc::new(strategy))
    }

    /// A request over an already-shared strategy.
    pub fn from_arc(strategy: Arc<dyn Strategy>) -> Self {
        Self {
            strategy,
            seed: 0,
            on_infeasible: InfeasiblePolicy::default(),
        }
    }

    /// The built-in strategy equivalent to a legacy [`Query`] variant —
    /// the bridge [`crate::engine::QueryEngine::run`] rides.
    pub fn from_query(query: &Query) -> Self {
        match query {
            Query::IntelSample(cfg) => Self::intel_sample(cfg.clone()),
            Query::Naive(spec) => Self::naive(*spec),
            Query::Optimal { spec, predictor } => Self::optimal(*spec, predictor.clone()),
            Query::Adaptive {
                spec,
                corr,
                predictor,
            } => Self::adaptive(*spec, *corr, predictor.clone()),
            Query::Iterative {
                spec,
                corr,
                predictor,
                rule,
                rounds,
            } => Self::iterative(*spec, *corr, predictor.clone(), *rule, *rounds),
            Query::Learning(spec) => Self::learning(*spec),
            Query::Multiple { spec, imputations } => Self::multiple(*spec, *imputations),
        }
    }

    /// The paper's main algorithm ([`crate::pipeline::run_intel_sample_ctx`]).
    pub fn intel_sample(cfg: IntelSampleConfig) -> Self {
        Self::new(IntelSample(cfg))
    }

    /// The naive β-fraction baseline ([`crate::pipeline::run_naive_ctx`]).
    pub fn naive(spec: QuerySpec) -> Self {
        Self::new(Naive(spec))
    }

    /// The perfect-information lower bound
    /// ([`crate::pipeline::run_optimal_ctx`]).
    pub fn optimal(spec: QuerySpec, predictor: impl Into<String>) -> Self {
        Self::new(Optimal {
            spec,
            predictor: predictor.into(),
        })
    }

    /// The parameter-free adaptive pipeline
    /// ([`crate::adaptive::run_intel_sample_adaptive_ctx`]).
    pub fn adaptive(spec: QuerySpec, corr: CorrelationModel, predictor: impl Into<String>) -> Self {
        Self::new(Adaptive {
            spec,
            corr,
            predictor: predictor.into(),
        })
    }

    /// The §4.2 iterative estimate/exploit pipeline
    /// ([`crate::adaptive::run_intel_sample_iterative_ctx`]).
    pub fn iterative(
        spec: QuerySpec,
        corr: CorrelationModel,
        predictor: impl Into<String>,
        rule: SampleSizeRule,
        rounds: usize,
    ) -> Self {
        Self::new(Iterative {
            spec,
            corr,
            predictor: predictor.into(),
            rule,
            rounds,
        })
    }

    /// The `Learning` ML baseline ([`crate::baselines::run_learning_ctx`]).
    pub fn learning(spec: QuerySpec) -> Self {
        Self::new(Learning(spec))
    }

    /// The `Multiple` ML baseline ([`crate::baselines::run_multiple_ctx`]).
    pub fn multiple(spec: QuerySpec, imputations: usize) -> Self {
        Self::new(Multiple { spec, imputations })
    }

    /// Exact multi-predicate selection: evaluates `expr` on every row
    /// through the session cache with cost-ordered short-circuiting
    /// ([`crate::strategy::ExprScan`]).
    pub fn expr_scan(expr: PredicateExpr, cost: CostModel) -> Self {
        Self::new(ExprScan::new(expr, cost))
    }

    /// [`QueryRequest::expr_scan`] with the session's selectivity-aware
    /// optimizer enabled ([`crate::strategy::ExprScan::optimized`]):
    /// identical answers, smaller bill once the session has observed the
    /// leaves' pass rates.
    pub fn expr_scan_optimized(expr: PredicateExpr, cost: CostModel) -> Self {
        Self::new(ExprScan::optimized(expr, cost))
    }

    /// Sets the random seed (identical requests differing only in seed
    /// are distinct memo identities).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the infeasibility policy.
    pub fn with_on_infeasible(mut self, policy: InfeasiblePolicy) -> Self {
        self.on_infeasible = policy;
        self
    }

    /// The strategy this request runs.
    pub fn strategy(&self) -> &dyn Strategy {
        self.strategy.as_ref()
    }

    /// The request's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The request's infeasibility policy.
    pub fn infeasible_policy(&self) -> InfeasiblePolicy {
        self.on_infeasible
    }
}

impl std::fmt::Debug for QueryRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryRequest")
            .field("strategy", &self.strategy.name())
            .field("seed", &self.seed)
            .field("on_infeasible", &self.on_infeasible)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PredictorChoice;
    use crate::strategy::StrategyIdentity;

    #[test]
    fn builder_defaults_and_chaining() {
        let spec = QuerySpec::paper_default();
        let req = QueryRequest::naive(spec);
        assert_eq!(req.seed(), 0);
        assert_eq!(
            req.infeasible_policy(),
            InfeasiblePolicy::FallbackEvaluateAll
        );
        let req = req.with_seed(9).with_on_infeasible(InfeasiblePolicy::Error);
        assert_eq!(req.seed(), 9);
        assert_eq!(req.infeasible_policy(), InfeasiblePolicy::Error);
        assert_eq!(req.strategy().name(), "naive");
        assert!(format!("{req:?}").contains("naive"));
    }

    #[test]
    fn clones_share_the_strategy() {
        let req = QueryRequest::naive(QuerySpec::paper_default());
        let other = req.clone().with_seed(1);
        assert_eq!(
            StrategyIdentity::of(req.strategy()),
            StrategyIdentity::of(other.strategy())
        );
    }

    #[test]
    fn from_query_covers_every_variant() {
        let spec = QuerySpec::paper_default();
        let queries = [
            (
                Query::IntelSample(IntelSampleConfig::experiment1(PredictorChoice::Fixed(
                    "grade".into(),
                ))),
                "intel_sample",
            ),
            (Query::Naive(spec), "naive"),
            (
                Query::Optimal {
                    spec,
                    predictor: "grade".into(),
                },
                "optimal",
            ),
            (
                Query::Adaptive {
                    spec,
                    corr: CorrelationModel::Independent,
                    predictor: "grade".into(),
                },
                "adaptive",
            ),
            (
                Query::Iterative {
                    spec,
                    corr: CorrelationModel::Independent,
                    predictor: "grade".into(),
                    rule: SampleSizeRule::Fraction(0.05),
                    rounds: 2,
                },
                "iterative",
            ),
            (Query::Learning(spec), "learning"),
            (
                Query::Multiple {
                    spec,
                    imputations: 5,
                },
                "multiple",
            ),
        ];
        for (query, name) in queries {
            assert_eq!(QueryRequest::from_query(&query).strategy().name(), name);
        }
    }
}
