//! The paper's plan optimizers.
//!
//! * [`solve_perfect_selectivities`] — Problem 2 / LinearProg 3.4 (§3.2):
//!   Hoeffding slack terms turn the probabilistic constraints into linear
//!   thresholds, solved by BiGreedy (with exact-LP fallback).
//! * [`solve_estimated`] — Problem 3 / ConvexProgs 3.10 & 3.11 (§3.3) and
//!   their sampling-aware refinement ConvexProg 4.1 (§4.2): Chebyshev
//!   deviation terms make the thresholds depend on the plan itself; we
//!   solve by a damped fixed-point over the structured LP, keeping the
//!   cheapest iterate that passes the *exact* convex feasibility check
//!   ([`estimated_feasible`]) — correctness rests on that verification,
//!   not on the iteration converging.

use crate::plan::Plan;
use crate::query::QuerySpec;
use expred_solver::bigreedy::GreedyProblem;
use expred_stats::bounds::{chebyshev_scale, precision_slack, recall_slack};

/// Group counts above which the exact-LP cross-check is skipped and the
/// `O(|A| log |A|)` greedy answer is trusted directly.
const EXACT_LP_LIMIT: usize = 512;

/// Plan construction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// No plan can satisfy the constraints; the payload says which side.
    Infeasible(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Infeasible(why) => write!(f, "infeasible plan: {why}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Solves Problem 2: perfect selectivities with Hoeffding slacks.
///
/// `sizes[a] = t_a`, `sels[a] = s_a` (exact). The recall constraint LHS
/// must exceed `β Σ t_a s_a + h^r_ρ` and the precision LHS must exceed
/// `h^p_ρ`, per LinearProg 3.4.
pub fn solve_perfect_selectivities(
    sizes: &[f64],
    sels: &[f64],
    spec: &QuerySpec,
) -> Result<Plan, PlanError> {
    assert_eq!(sizes.len(), sels.len());
    // beta = 0 makes the recall constraint vacuous; the empty answer is
    // optimal and vacuously precise (the slack machinery below would
    // otherwise demand a margin an empty plan cannot produce).
    if spec.beta == 0.0 {
        return Ok(Plan::discard_all(sizes.len()));
    }
    let n: f64 = sizes.iter().sum();
    let hp = if spec.alpha == 0.0 {
        0.0
    } else {
        precision_slack(n, spec.rho)
    };
    let hr = recall_slack(n, spec.beta, spec.rho);
    let recall_mass: f64 = sizes.iter().zip(sels).map(|(t, s)| t * s).sum();
    let problem = GreedyProblem::from_group_stats(
        sizes,
        sels,
        spec.alpha,
        spec.cost.retrieve,
        spec.cost.evaluate,
        spec.beta * recall_mass + hr,
        hp,
    );
    let plan = problem
        .solve_robust(sizes.len() <= EXACT_LP_LIMIT)
        .map_err(|e| PlanError::Infeasible(e.to_string()))?;
    Ok(Plan::new(plan.r, plan.e))
}

/// How selectivity-estimate errors co-vary across groups (§3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationModel {
    /// Estimates are independent across groups (the sampling case);
    /// deviations combine in L2 — ConvexProg 3.11.
    Independent,
    /// Nothing is known; worst-case full correlation, deviations add up in
    /// L1 — ConvexProg 3.10.
    Unknown,
}

/// One group's estimated statistics for Problem 3 / ConvexProg 4.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatedGroup {
    /// Total group size `t_a`.
    pub size: f64,
    /// Tuples already sampled (retrieved + evaluated) from this group
    /// (`F_a`; 0 when estimates came from elsewhere).
    pub sampled: f64,
    /// Sampled tuples that satisfied the predicate (`F⁺_a`).
    pub sampled_positive: f64,
    /// Estimated selectivity mean `s_a`.
    pub sel: f64,
    /// Estimated selectivity variance `v_a`.
    pub var: f64,
}

impl EstimatedGroup {
    /// Tuples still subject to planning: `m_a = t_a − F_a`.
    pub fn remaining(&self) -> f64 {
        (self.size - self.sampled).max(0.0)
    }
}

/// The Chebyshev deviation bound on the precision constraint for a plan.
fn precision_dev(
    groups: &[EstimatedGroup],
    plan_r: &[f64],
    plan_e: &[f64],
    alpha: f64,
    corr: CorrelationModel,
) -> f64 {
    match corr {
        CorrelationModel::Independent => {
            let sum: f64 = groups
                .iter()
                .zip(plan_r.iter().zip(plan_e))
                .map(|(g, (&r, &e))| {
                    let m = g.remaining();
                    let d = r - alpha * e;
                    m * m * g.var * d * d + 0.25 * m
                })
                .sum();
            sum.sqrt()
        }
        CorrelationModel::Unknown => groups
            .iter()
            .zip(plan_r.iter().zip(plan_e))
            .map(|(g, (&r, &e))| {
                let m = g.remaining();
                g.var.sqrt() * m * (r - alpha * e) + 0.5 * m.sqrt()
            })
            .sum(),
    }
}

/// The Chebyshev deviation bound on the recall constraint for a plan.
fn recall_dev(groups: &[EstimatedGroup], plan_r: &[f64], beta: f64, corr: CorrelationModel) -> f64 {
    match corr {
        CorrelationModel::Independent => {
            let sum: f64 = groups
                .iter()
                .zip(plan_r)
                .map(|(g, &r)| {
                    let m = g.remaining();
                    let d = r - beta;
                    m * m * g.var * d * d + 0.25 * m
                })
                .sum();
            sum.sqrt()
        }
        CorrelationModel::Unknown => groups
            .iter()
            .zip(plan_r)
            .map(|(g, &r)| {
                let m = g.remaining();
                g.var.sqrt() * m * (r - beta).abs() + 0.5 * m.sqrt()
            })
            .sum(),
    }
}

/// Expected precision-constraint margin (the `≥ X` LHS of ConvexProg 4.1).
pub fn precision_margin(groups: &[EstimatedGroup], plan: &Plan, alpha: f64) -> f64 {
    groups
        .iter()
        .zip(plan.r().iter().zip(plan.e()))
        .map(|(g, (&r, &e))| {
            let m = g.remaining();
            g.sampled_positive * (1.0 - alpha) + (1.0 - alpha) * m * r * g.sel
                - m * alpha * (r - e) * (1.0 - g.sel)
        })
        .sum()
}

/// Expected recall-constraint margin (the `≥ Y` LHS of ConvexProg 4.1).
pub fn recall_margin(groups: &[EstimatedGroup], plan: &Plan, beta: f64) -> f64 {
    groups
        .iter()
        .zip(plan.r())
        .map(|(g, &r)| {
            let m = g.remaining();
            g.sampled_positive + m * r * g.sel - beta * (g.sampled_positive + m * g.sel)
        })
        .sum()
}

/// Verifies the convex-program feasibility of a plan: both expected
/// margins must dominate `e_ρ` times their deviation bounds.
pub fn estimated_feasible(
    groups: &[EstimatedGroup],
    plan: &Plan,
    spec: &QuerySpec,
    corr: CorrelationModel,
    tol: f64,
) -> bool {
    let e_rho = chebyshev_scale(spec.rho);
    let x = e_rho * precision_dev(groups, plan.r(), plan.e(), spec.alpha, corr);
    let y = e_rho * recall_dev(groups, plan.r(), spec.beta, corr);
    precision_margin(groups, plan, spec.alpha) >= x - tol
        && recall_margin(groups, plan, spec.beta) >= y - tol
}

/// Solves Problem 3 (ConvexProg 3.10 / 3.11) — and, when `sampled > 0`,
/// the sampling-aware ConvexProg 4.1 — by a damped fixed-point over the
/// structured LP, returning the cheapest iterate that passes
/// [`estimated_feasible`].
pub fn solve_estimated(
    groups: &[EstimatedGroup],
    spec: &QuerySpec,
    corr: CorrelationModel,
) -> Result<Plan, PlanError> {
    let k = groups.len();
    // beta = 0: the recall constraint is vacuous and the empty answer is
    // optimal and vacuously precise.
    if spec.beta == 0.0 {
        return Ok(Plan::discard_all(k));
    }
    let e_rho = chebyshev_scale(spec.rho);
    let sizes: Vec<f64> = groups.iter().map(|g| g.remaining()).collect();
    let sels: Vec<f64> = groups.iter().map(|g| g.sel).collect();
    let sampled_pos: f64 = groups.iter().map(|g| g.sampled_positive).sum();
    let expected_correct: f64 = groups
        .iter()
        .map(|g| g.sampled_positive + g.remaining() * g.sel)
        .sum();
    let scale = 1.0 + expected_correct;
    // Looser than the iteration's convergence tolerance, so a converged
    // iterate always passes its own verification (the slack is well under
    // one tuple's worth of margin at any realistic table size).
    let verify_tol = 1e-5 * scale;

    // Correctness comes from the *verification*, not the iteration: every
    // iterate whose exact Chebyshev margins check out is a candidate, and
    // the cheapest verified candidate wins. The damped threshold update
    // merely steers the LP toward the convex program's fixed point — a
    // monotone ratchet would lock onto an early overshoot (a cheap low-E
    // plan maximizes the deviation terms) and misreport infeasibility.
    let mut best: Option<(f64, Plan)> = None;
    let consider = |plan: Plan, best: &mut Option<(f64, Plan)>| {
        if estimated_feasible(groups, &plan, spec, corr, verify_tol) {
            let cost = plan.expected_cost(&sizes, &spec.cost);
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                *best = Some((cost, plan));
            }
        }
    };

    // The always-feasible anchor, if one exists at all.
    consider(Plan::evaluate_all(k), &mut best);

    let solve_at = |x: f64, y: f64| -> Option<Plan> {
        let problem = GreedyProblem::from_group_stats(
            &sizes,
            &sels,
            spec.alpha,
            spec.cost.retrieve,
            spec.cost.evaluate,
            y + spec.beta * expected_correct - sampled_pos,
            x - (1.0 - spec.alpha) * sampled_pos,
        );
        problem
            .solve_robust(k <= EXACT_LP_LIMIT)
            .ok()
            .map(|p| Plan::new(p.r, p.e))
    };

    let mut x = 0.0f64;
    let mut y = 0.0f64;
    for iter in 0..60 {
        let Some(plan) = solve_at(x, y) else {
            // Thresholds overshot what the instance can support; relax and
            // keep iterating (a verified candidate may already exist).
            x *= 0.7;
            y *= 0.7;
            continue;
        };
        let x_next = e_rho * precision_dev(groups, plan.r(), plan.e(), spec.alpha, corr);
        let y_next = e_rho * recall_dev(groups, plan.r(), spec.beta, corr);
        consider(plan, &mut best);
        let converged = (x_next - x).abs() <= 1e-6 * scale && (y_next - y).abs() <= 1e-6 * scale;
        if converged {
            // One last slightly over-tightened solve: its LP margins then
            // strictly dominate its own deviations, guaranteeing a
            // verified candidate whenever the program is feasible here.
            let pad = 1e-6 * scale;
            if let Some(plan) = solve_at(x_next + pad, y_next + pad) {
                consider(plan, &mut best);
            }
            if best.is_some() {
                break;
            }
        }
        // Damped update; undamped on the first step so thresholds engage
        // immediately.
        if iter == 0 {
            x = x_next;
            y = y_next;
        } else {
            x = 0.5 * (x + x_next);
            y = 0.5 * (y + y_next);
        }
    }
    match best {
        Some((_, plan)) => Ok(plan),
        None => Err(PlanError::Infeasible(
            "no plan satisfies the Chebyshev-verified precision/recall margins".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_groups() -> (Vec<f64>, Vec<f64>) {
        (vec![1000.0, 1000.0, 1000.0], vec![0.9, 0.5, 0.1])
    }

    fn estimated_from(sizes: &[f64], sels: &[f64], samples: f64) -> Vec<EstimatedGroup> {
        sizes
            .iter()
            .zip(sels)
            .map(|(&t, &s)| {
                // Beta-posterior-style variance for `samples` observations.
                let var = s * (1.0 - s) / (samples + 3.0);
                EstimatedGroup {
                    size: t,
                    sampled: 0.0,
                    sampled_positive: 0.0,
                    sel: s,
                    var,
                }
            })
            .collect()
    }

    #[test]
    fn perfect_selectivities_plan_is_valid() {
        let (sizes, sels) = paper_groups();
        let spec = QuerySpec::paper_default();
        let plan = solve_perfect_selectivities(&sizes, &sels, &spec).expect("feasible");
        assert_eq!(plan.num_groups(), 3);
        // High-selectivity group should be fully retrieved.
        assert!(plan.r()[0] > 0.99);
        // Recall LHS must exceed beta * mass + slack.
        let lhs: f64 = sizes
            .iter()
            .zip(sels.iter().zip(plan.r()))
            .map(|(t, (s, r))| t * s * r)
            .sum();
        let hr = recall_slack(3000.0, spec.beta, spec.rho);
        assert!(lhs >= 0.8 * 1500.0 + hr - 1e-6);
    }

    #[test]
    fn tighter_rho_costs_more() {
        let (sizes, sels) = paper_groups();
        let loose = QuerySpec::new(0.8, 0.8, 0.6, expred_udf::CostModel::PAPER_DEFAULT);
        let tight = QuerySpec::new(0.8, 0.8, 0.95, expred_udf::CostModel::PAPER_DEFAULT);
        let c_loose = solve_perfect_selectivities(&sizes, &sels, &loose)
            .unwrap()
            .expected_cost(&sizes, &loose.cost);
        let c_tight = solve_perfect_selectivities(&sizes, &sels, &tight)
            .unwrap()
            .expected_cost(&sizes, &tight.cost);
        assert!(c_tight >= c_loose, "{c_tight} < {c_loose}");
    }

    #[test]
    fn estimated_plan_verifies_feasibility() {
        let (sizes, sels) = paper_groups();
        let groups = estimated_from(&sizes, &sels, 50.0);
        let spec = QuerySpec::paper_default();
        for corr in [CorrelationModel::Independent, CorrelationModel::Unknown] {
            let plan = solve_estimated(&groups, &spec, corr).expect("feasible");
            assert!(
                estimated_feasible(&groups, &plan, &spec, corr, 1e-6),
                "{corr:?} plan must verify"
            );
        }
    }

    #[test]
    fn unknown_correlations_cost_at_least_independent() {
        let (sizes, sels) = paper_groups();
        let groups = estimated_from(&sizes, &sels, 50.0);
        let spec = QuerySpec::paper_default();
        let szs: Vec<f64> = groups.iter().map(|g| g.remaining()).collect();
        let ind = solve_estimated(&groups, &spec, CorrelationModel::Independent)
            .unwrap()
            .expected_cost(&szs, &spec.cost);
        let unk = solve_estimated(&groups, &spec, CorrelationModel::Unknown)
            .unwrap()
            .expected_cost(&szs, &spec.cost);
        assert!(
            unk >= ind - 1e-6,
            "worst-case correlations cannot be cheaper: {unk} vs {ind}"
        );
    }

    #[test]
    fn more_samples_reduce_cost() {
        let (sizes, sels) = paper_groups();
        let spec = QuerySpec::paper_default();
        let szs = sizes.clone();
        let vague = estimated_from(&sizes, &sels, 10.0);
        let sharp = estimated_from(&sizes, &sels, 1000.0);
        let c_vague = solve_estimated(&vague, &spec, CorrelationModel::Independent)
            .unwrap()
            .expected_cost(&szs, &spec.cost);
        let c_sharp = solve_estimated(&sharp, &spec, CorrelationModel::Independent)
            .unwrap()
            .expected_cost(&szs, &spec.cost);
        assert!(
            c_sharp <= c_vague + 1e-6,
            "sharper estimates must not cost more: {c_sharp} vs {c_vague}"
        );
    }

    #[test]
    fn fully_sampled_instance_needs_no_plan() {
        let groups = vec![EstimatedGroup {
            size: 100.0,
            sampled: 100.0,
            sampled_positive: 60.0,
            sel: 0.6,
            var: 0.0,
        }];
        let spec = QuerySpec::paper_default();
        let plan = solve_estimated(&groups, &spec, CorrelationModel::Independent).unwrap();
        assert_eq!(plan.expected_cost(&[0.0], &spec.cost), 0.0);
        assert!(estimated_feasible(
            &groups,
            &plan,
            &spec,
            CorrelationModel::Independent,
            1e-9
        ));
    }

    #[test]
    fn sampled_positives_lighten_the_plan() {
        // Same statistics, but one instance has already banked sampled
        // positives; its remaining plan must be no more expensive.
        let fresh = vec![EstimatedGroup {
            size: 1000.0,
            sampled: 0.0,
            sampled_positive: 0.0,
            sel: 0.7,
            var: 0.002,
        }];
        let banked = vec![EstimatedGroup {
            size: 1000.0,
            sampled: 300.0,
            sampled_positive: 210.0,
            sel: 0.7,
            var: 0.002,
        }];
        let spec = QuerySpec::paper_default();
        let p_fresh = solve_estimated(&fresh, &spec, CorrelationModel::Independent).unwrap();
        let p_banked = solve_estimated(&banked, &spec, CorrelationModel::Independent).unwrap();
        let c_fresh = p_fresh.expected_cost(&[1000.0], &spec.cost);
        let c_banked = p_banked.expected_cost(&[700.0], &spec.cost);
        assert!(c_banked <= c_fresh + 1e-6, "{c_banked} vs {c_fresh}");
    }

    #[test]
    fn infeasible_recall_is_reported() {
        let groups = vec![EstimatedGroup {
            size: 10.0,
            sampled: 0.0,
            sampled_positive: 0.0,
            sel: 0.5,
            var: 0.05,
        }];
        let spec = QuerySpec::new(0.5, 0.99, 0.99, expred_udf::CostModel::PAPER_DEFAULT);
        let got = solve_estimated(&groups, &spec, CorrelationModel::Independent);
        assert!(got.is_err(), "tiny noisy group cannot hit 99%/99%");
    }

    #[test]
    fn zero_variance_estimated_close_to_perfect() {
        // With zero estimate variance, the only gap vs Problem 2 is the
        // 0.25·m execution-randomness term (Chebyshev vs Hoeffding).
        let (sizes, sels) = paper_groups();
        let groups: Vec<EstimatedGroup> = sizes
            .iter()
            .zip(&sels)
            .map(|(&t, &s)| EstimatedGroup {
                size: t,
                sampled: 0.0,
                sampled_positive: 0.0,
                sel: s,
                var: 0.0,
            })
            .collect();
        let spec = QuerySpec::paper_default();
        let est = solve_estimated(&groups, &spec, CorrelationModel::Independent)
            .unwrap()
            .expected_cost(&sizes, &spec.cost);
        let perf = solve_perfect_selectivities(&sizes, &sels, &spec)
            .unwrap()
            .expected_cost(&sizes, &spec.cost);
        // Chebyshev slack is inherently looser than Hoeffding slack at the
        // same rho, so a moderate premium remains even at zero variance.
        let rel_gap = (est - perf).abs() / perf;
        assert!(rel_gap < 0.3, "gap {rel_gap} too large: {est} vs {perf}");
    }
}
