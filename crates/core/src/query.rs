//! Query-level specifications.

use crate::error::EngineError;
use expred_udf::CostModel;

/// The user-facing contract of an approximate UDF-selection query:
/// `SELECT * FROM R WHERE f(...) = 1` with accuracy bounds (paper §2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpec {
    /// Precision lower bound `α ∈ [0, 1]`.
    pub alpha: f64,
    /// Recall lower bound `β ∈ [0, 1]`.
    pub beta: f64,
    /// Satisfaction probability `ρ ∈ [0, 1)`: both constraints must hold
    /// with at least this probability.
    pub rho: f64,
    /// Retrieval/evaluation costs `(o_r, o_e)`.
    pub cost: CostModel,
}

impl QuerySpec {
    /// The paper's default experimental setting:
    /// `α = β = ρ = 0.8`, `o_r = 1`, `o_e = 3` (§6.1).
    pub fn paper_default() -> Self {
        Self {
            alpha: 0.8,
            beta: 0.8,
            rho: 0.8,
            cost: CostModel::PAPER_DEFAULT,
        }
    }

    /// Builds a spec, validating every range — the fallible constructor
    /// the serving surface uses ([`crate::request::QueryRequest`] /
    /// [`crate::engine::QueryEngine::submit`]).
    pub fn try_new(alpha: f64, beta: f64, rho: f64, cost: CostModel) -> Result<Self, EngineError> {
        let spec = Self {
            alpha,
            beta,
            rho,
            cost,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Re-checks this spec's ranges (the fields are public, so a struct
    /// literal can bypass [`QuerySpec::try_new`]; the engine re-validates
    /// at submit time).
    pub fn validate(&self) -> Result<(), EngineError> {
        EngineError::expect_range(
            "alpha",
            self.alpha,
            "in [0, 1]",
            (0.0..=1.0).contains(&self.alpha),
        )?;
        EngineError::expect_range(
            "beta",
            self.beta,
            "in [0, 1]",
            (0.0..=1.0).contains(&self.beta),
        )?;
        EngineError::expect_range("rho", self.rho, "in [0, 1)", (0.0..1.0).contains(&self.rho))?;
        validate_cost_model(&self.cost)
    }

    /// Builds a spec, validating ranges.
    ///
    /// **Deprecated (panicking variant):** panics on out-of-range input.
    /// New code should use [`QuerySpec::try_new`], which reports the
    /// offending field as a typed [`EngineError`] instead.
    pub fn new(alpha: f64, beta: f64, rho: f64, cost: CostModel) -> Self {
        Self::try_new(alpha, beta, rho, cost).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The browsing scenario (§2): perfect precision, bounded recall.
    ///
    /// **Deprecated (panicking variant):** panics on out-of-range input;
    /// prefer `QuerySpec::try_new(1.0, beta, rho, cost)`.
    pub fn browsing(beta: f64, rho: f64, cost: CostModel) -> Self {
        Self::new(1.0, beta, rho, cost)
    }
}

/// Validates a cost model's ranges — shared by every surface that
/// accepts one ([`QuerySpec::validate`], expression scans), so the
/// contract cannot silently diverge between them.
pub fn validate_cost_model(cost: &CostModel) -> Result<(), EngineError> {
    EngineError::expect_range(
        "cost.retrieve",
        cost.retrieve,
        "finite and >= 0",
        cost.retrieve.is_finite() && cost.retrieve >= 0.0,
    )?;
    EngineError::expect_range(
        "cost.evaluate",
        cost.evaluate,
        "finite and >= 0",
        cost.evaluate.is_finite() && cost.evaluate >= 0.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let q = QuerySpec::paper_default();
        assert_eq!(q.alpha, 0.8);
        assert_eq!(q.beta, 0.8);
        assert_eq!(q.rho, 0.8);
        assert_eq!(q.cost.retrieve, 1.0);
        assert_eq!(q.cost.evaluate, 3.0);
    }

    #[test]
    fn browsing_has_full_precision() {
        let q = QuerySpec::browsing(0.7, 0.9, CostModel::PAPER_DEFAULT);
        assert_eq!(q.alpha, 1.0);
        assert_eq!(q.beta, 0.7);
    }

    #[test]
    #[should_panic]
    fn rho_one_rejected() {
        QuerySpec::new(0.5, 0.5, 1.0, CostModel::PAPER_DEFAULT);
    }

    #[test]
    #[should_panic]
    fn alpha_out_of_range_rejected() {
        QuerySpec::new(1.5, 0.5, 0.5, CostModel::PAPER_DEFAULT);
    }

    #[test]
    fn try_new_reports_the_offending_field() {
        let cost = CostModel::PAPER_DEFAULT;
        assert!(QuerySpec::try_new(0.8, 0.8, 0.8, cost).is_ok());
        for (a, b, r, field) in [
            (1.5, 0.5, 0.5, "alpha"),
            (-0.1, 0.5, 0.5, "alpha"),
            (0.5, 2.0, 0.5, "beta"),
            (0.5, 0.5, 1.0, "rho"),
        ] {
            match QuerySpec::try_new(a, b, r, cost) {
                Err(EngineError::InvalidSpec { field: got, .. }) => assert_eq!(got, field),
                other => panic!("expected InvalidSpec for {field}, got {other:?}"),
            }
        }
        let bad_cost = CostModel {
            retrieve: -1.0,
            evaluate: 3.0,
        };
        assert!(matches!(
            QuerySpec::try_new(0.5, 0.5, 0.5, bad_cost),
            Err(EngineError::InvalidSpec {
                field: "cost.retrieve",
                ..
            })
        ));
        // The panicking constructor is a thin wrapper over try_new.
        assert_eq!(
            QuerySpec::new(0.8, 0.7, 0.6, cost),
            QuerySpec::try_new(0.8, 0.7, 0.6, cost).unwrap()
        );
    }

    #[test]
    fn validate_catches_struct_literals() {
        let spec = QuerySpec {
            alpha: f64::NAN,
            beta: 0.5,
            rho: 0.5,
            cost: CostModel::PAPER_DEFAULT,
        };
        assert!(spec.validate().is_err());
        assert!(QuerySpec::paper_default().validate().is_ok());
    }
}
