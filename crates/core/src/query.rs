//! Query-level specifications.

use expred_udf::CostModel;

/// The user-facing contract of an approximate UDF-selection query:
/// `SELECT * FROM R WHERE f(...) = 1` with accuracy bounds (paper §2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpec {
    /// Precision lower bound `α ∈ [0, 1]`.
    pub alpha: f64,
    /// Recall lower bound `β ∈ [0, 1]`.
    pub beta: f64,
    /// Satisfaction probability `ρ ∈ [0, 1)`: both constraints must hold
    /// with at least this probability.
    pub rho: f64,
    /// Retrieval/evaluation costs `(o_r, o_e)`.
    pub cost: CostModel,
}

impl QuerySpec {
    /// The paper's default experimental setting:
    /// `α = β = ρ = 0.8`, `o_r = 1`, `o_e = 3` (§6.1).
    pub fn paper_default() -> Self {
        Self {
            alpha: 0.8,
            beta: 0.8,
            rho: 0.8,
            cost: CostModel::PAPER_DEFAULT,
        }
    }

    /// Builds a spec, validating ranges.
    pub fn new(alpha: f64, beta: f64, rho: f64, cost: CostModel) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
        assert!((0.0..1.0).contains(&rho), "rho must be in [0,1)");
        Self {
            alpha,
            beta,
            rho,
            cost,
        }
    }

    /// The browsing scenario (§2): perfect precision, bounded recall.
    pub fn browsing(beta: f64, rho: f64, cost: CostModel) -> Self {
        Self::new(1.0, beta, rho, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let q = QuerySpec::paper_default();
        assert_eq!(q.alpha, 0.8);
        assert_eq!(q.beta, 0.8);
        assert_eq!(q.rho, 0.8);
        assert_eq!(q.cost.retrieve, 1.0);
        assert_eq!(q.cost.evaluate, 3.0);
    }

    #[test]
    fn browsing_has_full_precision() {
        let q = QuerySpec::browsing(0.7, 0.9, CostModel::PAPER_DEFAULT);
        assert_eq!(q.alpha, 1.0);
        assert_eq!(q.beta, 0.7);
    }

    #[test]
    #[should_panic]
    fn rho_one_rejected() {
        QuerySpec::new(0.5, 0.5, 1.0, CostModel::PAPER_DEFAULT);
    }

    #[test]
    #[should_panic]
    fn alpha_out_of_range_rejected() {
        QuerySpec::new(1.5, 0.5, 0.5, CostModel::PAPER_DEFAULT);
    }
}
