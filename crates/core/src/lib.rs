//! `expred-core` — the paper's primary contribution.
//!
//! Correlation-aware evaluation of selection queries with expensive UDF
//! predicates, under user-specified precision (`α`), recall (`β`) and
//! satisfaction-probability (`ρ`) constraints:
//!
//! * [`query`] / [`plan`] — the accuracy contract and the per-group
//!   probabilistic plan `(R_a, E_a)`.
//! * [`optimize`] — Problem 2 (perfect selectivities, Hoeffding slack,
//!   BiGreedy) and Problem 3 (estimated selectivities, Chebyshev slack,
//!   ConvexProgs 3.10/3.11/4.1 via a monotone fixed-point).
//! * [`sampling`] — §4: per-group sampling rules (Constant,
//!   Two-Third-Power, fixed fraction), Beta-posterior estimates, and the
//!   adaptive `num` search.
//! * [`column_select`] — §4.4: ranking real columns, and the logistic
//!   virtual column.
//! * [`execute`] — the probabilistic executor with sample reuse.
//! * [`pipeline`] — end-to-end contestants: Intel-Sample, Optimal, Naive.
//! * [`baselines`] — the ML baselines Learning and Multiple.
//! * [`extensions`] — §5: budgeted objectives, multiple predicates, and
//!   selection-before-join weighting.
//! * [`engine`] — the session layer: [`QueryEngine`] runs many queries
//!   against one executor, one cross-query [`expred_exec::CacheStore`],
//!   and a memo of whole query outcomes. The engine is `Send + Sync`
//!   with `submit(&self)`, so one session serves many worker threads
//!   directly ([`result_memo`] holds the lock-striped memo behind it).
//! * [`request`] / [`strategy`] / [`error`] — the primary query surface:
//!   a [`QueryRequest`] builder over an open, object-safe
//!   [`Strategy`] trait (the seven pipelines ship as built-in
//!   implementations, plus [`strategy::ExprScan`] for
//!   [`expred_udf::PredicateExpr`] multi-predicate requests), submitted
//!   via the fallible [`QueryEngine::submit`] — invalid input surfaces
//!   as a typed [`EngineError`] instead of a panic.
//!
//! Every pipeline entry point comes in three flavors: the legacy bare
//! name (sequential, cache-less — the original audited behavior), a
//! `*_with(executor)` variant, and the primary `*_ctx(ctx)` variant
//! taking one [`expred_exec::ExecContext`]. The first two are thin
//! wrappers over the third; [`QueryEngine::submit`] is the session-level
//! entry point over all of them.

pub mod adaptive;
pub mod baselines;
pub mod column_select;
pub mod engine;
pub mod error;
pub mod execute;
pub mod extensions;
pub mod optimize;
pub mod persistence;
pub mod pipeline;
pub mod plan;
pub mod query;
pub mod request;
pub mod result_memo;
pub mod sampling;
pub mod strategy;

pub use adaptive::{
    run_intel_sample_adaptive, run_intel_sample_adaptive_ctx, run_intel_sample_adaptive_with,
    run_intel_sample_iterative, run_intel_sample_iterative_ctx, run_intel_sample_iterative_with,
};
pub use baselines::{run_learning, run_learning_ctx, run_multiple, run_multiple_ctx};
pub use engine::{EngineStats, Query, QueryEngine};
pub use error::EngineError;
pub use execute::{
    execute_plan, execute_plan_ctx, execute_plan_with, execute_plan_with_planner, truth_vector,
    ExecutionResult,
};
pub use optimize::{
    estimated_feasible, solve_estimated, solve_perfect_selectivities, CorrelationModel,
    EstimatedGroup, PlanError,
};
pub use persistence::PersistSessionStats;
// Re-exported so engine users can configure persistence without a direct
// `expred-persist` dependency.
pub use expred_persist::{FsyncPolicy, PersistConfig, PersistError};
pub use pipeline::{
    run_intel_sample, run_intel_sample_ctx, run_intel_sample_with, run_naive, run_naive_ctx,
    run_naive_with, run_optimal, run_optimal_ctx, run_optimal_with, IntelSampleConfig,
    PredictorChoice, RunOutcome,
};
pub use plan::Plan;
pub use query::QuerySpec;
pub use request::{InfeasiblePolicy, QueryRequest};
pub use result_memo::{ResultMemoStats, ShardedResultMemo};
pub use sampling::{
    adaptive_num_search, adaptive_num_search_ctx, adaptive_num_search_with, sample_groups,
    sample_groups_ctx, sample_groups_with, GroupSample, SampleSizeRule,
};
pub use strategy::{Fingerprint, Strategy, StrategyIdentity};
