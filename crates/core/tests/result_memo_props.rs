//! Property tests for the engine's sharded result memo.
//!
//! The two invariants a correct result memo owes the engine, checked
//! against a reference model under arbitrary operation sequences:
//!
//! * **Collision safety** — `get` never returns a value whose stored
//!   identity differs from the queried one; whatever it does return is
//!   exactly the last value inserted under that hash since the last
//!   clear (eviction may forget, it may never corrupt).
//! * **Capacity** — the live entry count never exceeds the configured
//!   bound at any point in the sequence, including under gets that mark
//!   CLOCK referenced bits and clears that race the ring.

use expred_core::result_memo::ShardedResultMemo;
use proptest::prelude::*;
use std::collections::HashMap;

/// One scripted operation: `kind` selects insert/get/wrong-get/clear,
/// `hash` the (deliberately small, collision-prone) key space, `ident`
/// the identity inserted or probed.
fn ops() -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    prop::collection::vec((0u64..10, 0u64..40, 0u64..5), 1..250)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memo_is_collision_safe_and_model_consistent(script in ops()) {
        let memo: ShardedResultMemo<u64, u64> = ShardedResultMemo::with_capacity(16);
        // hash -> (identity, value) of the last insert since last clear.
        let mut model: HashMap<u64, (u64, u64)> = HashMap::new();
        for (i, &(kind, hash, ident)) in script.iter().enumerate() {
            match kind {
                // Rare clear.
                0 => {
                    memo.clear();
                    model.clear();
                }
                // Insert: value encodes (hash, ident) so a cross-served
                // value is detectable.
                1..=4 => {
                    let value = hash * 1_000 + ident;
                    memo.insert(hash, ident, value);
                    model.insert(hash, (ident, value));
                }
                // Probe with an identity that was never inserted: must
                // always miss, even when the hash is occupied.
                5..=6 => {
                    prop_assert_eq!(
                        memo.get(hash, &(ident + 1_000)),
                        None,
                        "op {}: served a foreign identity", i
                    );
                }
                // Probe with a plausible identity: a hit must agree with
                // the model's last insert for that hash, identity and all.
                _ => {
                    if let Some(value) = memo.get(hash, &ident) {
                        prop_assert_eq!(
                            model.get(&hash),
                            Some(&(ident, value)),
                            "op {}: hit disagrees with the reference model", i
                        );
                    }
                }
            }
            prop_assert!(memo.len() <= memo.capacity());
        }
        let stats = memo.stats();
        prop_assert_eq!(
            stats.hits + stats.misses + stats.collision_rejects,
            script.iter().filter(|&&(k, _, _)| k >= 5).count() as u64
        );
    }

    #[test]
    fn memo_never_exceeds_any_capacity(
        capacity in 0usize..40,
        script in prop::collection::vec((0u64..200, 0u64..3), 1..300),
    ) {
        let memo: ShardedResultMemo<u64, u64> = ShardedResultMemo::with_capacity(capacity);
        prop_assert!(memo.capacity() <= capacity);
        for &(hash, ident) in &script {
            memo.insert(hash, ident, hash ^ ident);
            // Interleave gets so CLOCK referenced bits influence eviction.
            memo.get(hash.wrapping_mul(7) % 200, &ident);
            prop_assert!(
                memo.len() <= memo.capacity(),
                "len {} exceeded capacity {}", memo.len(), memo.capacity()
            );
        }
        if capacity == 0 {
            prop_assert!(memo.is_empty(), "capacity 0 must disable the memo");
        }
    }
}
