//! Property tests for the core optimizers and executor.

use expred_core::execute::execute_plan;
use expred_core::optimize::{
    estimated_feasible, solve_estimated, solve_perfect_selectivities, CorrelationModel,
    EstimatedGroup,
};
use expred_core::plan::Plan;
use expred_core::query::QuerySpec;
use expred_stats::rng::Prng;
use expred_table::{DataType, Field, GroupBy, Schema, Table, Value};
use expred_udf::{CostModel, OracleUdf, UdfInvoker};
use proptest::prelude::*;

/// Random group statistics in the paper's ranges.
fn group_stats() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    prop::collection::vec((50usize..3000, 0.02f64..0.98), 2..9).prop_map(|raw| {
        let sizes = raw.iter().map(|&(t, _)| t as f64).collect();
        let sels = raw.iter().map(|&(_, s)| s).collect();
        (sizes, sels)
    })
}

fn specs() -> impl Strategy<Value = QuerySpec> {
    (0.3f64..0.95, 0.3f64..0.95, 0.5f64..0.95)
        .prop_map(|(a, b, r)| QuerySpec::new(a, b, r, CostModel::PAPER_DEFAULT))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn perfect_selectivity_plans_respect_bounds((sizes, sels) in group_stats(), spec in specs()) {
        if let Ok(plan) = solve_perfect_selectivities(&sizes, &sels, &spec) {
            prop_assert_eq!(plan.num_groups(), sizes.len());
            for (r, e) in plan.r().iter().zip(plan.e()) {
                prop_assert!((0.0..=1.0).contains(r));
                prop_assert!(*e >= 0.0 && *e <= *r + 1e-12);
            }
            // The recall LHS must cover beta * mass + the Hoeffding slack.
            let mass: f64 = sizes.iter().zip(&sels).map(|(t, s)| t * s).sum();
            let lhs: f64 = sizes
                .iter()
                .zip(sels.iter().zip(plan.r()))
                .map(|(t, (s, r))| t * s * r)
                .sum();
            prop_assert!(lhs >= spec.beta * mass - 1e-6);
        }
    }

    #[test]
    fn estimated_plans_always_verify((sizes, sels) in group_stats(), spec in specs(), samples in 10u64..400) {
        let groups: Vec<EstimatedGroup> = sizes
            .iter()
            .zip(&sels)
            .map(|(&t, &s)| {
                let f = (samples as f64).min(t);
                EstimatedGroup {
                    size: t,
                    sampled: f,
                    sampled_positive: (f * s).round(),
                    sel: s,
                    var: s * (1.0 - s) / (f + 3.0),
                }
            })
            .collect();
        for corr in [CorrelationModel::Independent, CorrelationModel::Unknown] {
            if let Ok(plan) = solve_estimated(&groups, &spec, corr) {
                let scale: f64 = 1.0 + groups.iter().map(|g| g.size).sum::<f64>();
                prop_assert!(
                    estimated_feasible(&groups, &plan, &spec, corr, 1e-4 * scale),
                    "{corr:?} plan failed its own feasibility check"
                );
            }
        }
    }

    #[test]
    fn tighter_beta_never_cheapens_the_plan((sizes, sels) in group_stats(), a in 0.3f64..0.9) {
        let loose = QuerySpec::new(a, 0.5, 0.8, CostModel::PAPER_DEFAULT);
        let tight = QuerySpec::new(a, 0.9, 0.8, CostModel::PAPER_DEFAULT);
        match (
            solve_perfect_selectivities(&sizes, &sels, &loose),
            solve_perfect_selectivities(&sizes, &sels, &tight),
        ) {
            (Ok(pl), Ok(pt)) => {
                let cl = pl.expected_cost(&sizes, &loose.cost);
                let ct = pt.expected_cost(&sizes, &tight.cost);
                prop_assert!(ct >= cl - 1e-6, "tight {ct} < loose {cl}");
            }
            (Err(_), Ok(_)) => prop_assert!(false, "loose infeasible but tight feasible"),
            _ => {}
        }
    }

    #[test]
    fn executor_accounting_identity(labels in prop::collection::vec(any::<bool>(), 20..300), r in 0.0f64..1.0, e_frac in 0.0f64..1.0, seed in any::<u64>()) {
        // retrieved = |returned ∩ unevaluated| + evaluated; every returned
        // evaluated row must be truly correct.
        let schema = Schema::new(vec![Field::new("label", DataType::Bool)]);
        let rows: Vec<Vec<Value>> = labels.iter().map(|&l| vec![Value::Bool(l)]).collect();
        let table = Table::from_rows(schema, rows).unwrap();
        let groups = GroupBy::new(
            "all".into(),
            vec![Value::Int(0)],
            vec![(0..labels.len() as u32).collect()],
            labels.len(),
        );
        let udf = OracleUdf::new("label");
        let invoker = UdfInvoker::new(&udf, &table);
        let e = r * e_frac;
        let plan = Plan::new(vec![r], vec![e]);
        let mut rng = Prng::seeded(seed);
        let result = execute_plan(&plan, &groups, &invoker, &mut rng);
        let counts = invoker.counts();
        // Everything evaluated was retrieved first.
        prop_assert!(counts.evaluated <= counts.retrieved);
        // Returned rows that were evaluated must satisfy the predicate.
        for &row in &result.returned {
            if let Some(answer) = invoker.memoized(row as usize) {
                prop_assert!(answer, "returned an evaluated-false row");
            }
        }
        // Unevaluated returns + evaluated-true = returned.
        let evaluated_true = result
            .returned
            .iter()
            .filter(|&&row| invoker.memoized(row as usize) == Some(true))
            .count();
        let unevaluated_returns = result.returned.len() - evaluated_true;
        prop_assert_eq!(
            counts.retrieved as usize,
            unevaluated_returns + counts.evaluated as usize
        );
    }

    #[test]
    fn deterministic_plans_are_exact(labels in prop::collection::vec(any::<bool>(), 10..200)) {
        // Plan::evaluate_all returns exactly the true set.
        let schema = Schema::new(vec![Field::new("label", DataType::Bool)]);
        let rows: Vec<Vec<Value>> = labels.iter().map(|&l| vec![Value::Bool(l)]).collect();
        let table = Table::from_rows(schema, rows).unwrap();
        let groups = GroupBy::new(
            "all".into(),
            vec![Value::Int(0)],
            vec![(0..labels.len() as u32).collect()],
            labels.len(),
        );
        let udf = OracleUdf::new("label");
        let invoker = UdfInvoker::new(&udf, &table);
        let mut rng = Prng::seeded(1);
        let result = execute_plan(&Plan::evaluate_all(1), &groups, &invoker, &mut rng);
        let want: Vec<u32> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(result.returned, want);
    }
}
