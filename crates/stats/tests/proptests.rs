//! Property-based tests for the statistical substrate.

use expred_stats::{
    beta::Beta,
    binomial::Binomial,
    bounds::{chebyshev_scale, hoeffding_threshold},
    descriptive::{pearson, quantile, Accumulator},
    estimator::SelectivityEstimate,
    histogram::{assign_buckets, bucketize, equi_depth_boundaries},
    rng::Prng,
    special::{inc_beta, ln_gamma},
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn prng_f64_always_in_unit_interval(seed in any::<u64>()) {
        let mut rng = Prng::seeded(seed);
        for _ in 0..64 {
            let x = rng.f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn prng_below_always_bounded(seed in any::<u64>(), n in 1usize..10_000) {
        let mut rng = Prng::seeded(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn prng_sample_indices_distinct(seed in any::<u64>(), n in 1usize..300, k in 0usize..300) {
        let mut rng = Prng::seeded(seed);
        let sample = rng.sample_indices(n, k);
        prop_assert_eq!(sample.len(), k.min(n));
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sample.len());
    }

    #[test]
    fn ln_gamma_recurrence_holds(x in 0.05f64..200.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }

    #[test]
    fn inc_beta_bounded_and_monotone(a in 0.1f64..50.0, b in 0.1f64..50.0, x in 0.0f64..1.0) {
        let v = inc_beta(a, b, x);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
        let v2 = inc_beta(a, b, (x + 0.01).min(1.0));
        prop_assert!(v2 >= v - 1e-9);
    }

    #[test]
    fn beta_posterior_moments_valid(pos in 0u64..500, extra in 0u64..500) {
        let n = pos + extra;
        let beta = Beta::posterior(pos, n);
        prop_assert!((0.0..=1.0).contains(&beta.mean()));
        prop_assert!(beta.variance() > 0.0);
        prop_assert!(beta.variance() <= 0.25);
    }

    #[test]
    fn beta_samples_in_support(alpha in 0.2f64..20.0, b in 0.2f64..20.0, seed in any::<u64>()) {
        let dist = Beta::new(alpha, b);
        let mut rng = Prng::seeded(seed);
        for _ in 0..16 {
            let x = dist.sample(&mut rng);
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn binomial_pmf_normalized(n in 0u64..120, p in 0.0f64..=1.0) {
        let b = Binomial::new(n, p);
        let total: f64 = (0..=n).map(|k| b.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
    }

    #[test]
    fn binomial_sample_in_range(n in 0u64..5_000, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let b = Binomial::new(n, p);
        let mut rng = Prng::seeded(seed);
        for _ in 0..8 {
            prop_assert!(b.sample(&mut rng) <= n);
        }
    }

    #[test]
    fn hoeffding_threshold_monotone_in_rho(w in 0.0f64..1e6, r1 in 0.0f64..0.99, r2 in 0.0f64..0.99) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(hoeffding_threshold(w, lo) <= hoeffding_threshold(w, hi) + 1e-12);
    }

    #[test]
    fn chebyshev_scale_at_least_one(rho in 0.0f64..0.999) {
        prop_assert!(chebyshev_scale(rho) >= 1.0);
    }

    #[test]
    fn accumulator_merge_equals_single_pass(xs in prop::collection::vec(-1e3f64..1e3, 0..200), split in 0usize..200) {
        let split = split.min(xs.len());
        let full = Accumulator::from_slice(&xs);
        let mut left = Accumulator::from_slice(&xs[..split]);
        let right = Accumulator::from_slice(&xs[split..]);
        left.merge(&right);
        prop_assert_eq!(left.count(), full.count());
        prop_assert!((left.mean() - full.mean()).abs() < 1e-7);
        prop_assert!((left.variance() - full.variance()).abs() < 1e-5 * (1.0 + full.variance()));
    }

    #[test]
    fn pearson_bounded(xs in prop::collection::vec(-1e3f64..1e3, 2..50), ys in prop::collection::vec(-1e3f64..1e3, 2..50)) {
        let n = xs.len().min(ys.len());
        let r = pearson(&xs[..n], &ys[..n]);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
    }

    #[test]
    fn quantile_within_min_max(xs in prop::collection::vec(-1e3f64..1e3, 1..100), q in 0.0f64..=1.0) {
        let v = quantile(&xs, q);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn bucketize_ids_bounded(xs in prop::collection::vec(0.0f64..1.0, 1..300), k in 1usize..12) {
        let ids = bucketize(&xs, k);
        prop_assert_eq!(ids.len(), xs.len());
        for id in ids {
            prop_assert!(id < k);
        }
    }

    #[test]
    fn boundaries_sorted_and_within_range(xs in prop::collection::vec(0.0f64..1.0, 2..300), k in 1usize..12) {
        let bounds = equi_depth_boundaries(&xs, k);
        for w in bounds.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // Every bucket produced must be nonempty.
        let ids = assign_buckets(&xs, &bounds);
        let max_id = ids.iter().copied().max().unwrap_or(0);
        for want in 0..=max_id {
            prop_assert!(ids.contains(&want), "bucket {} empty", want);
        }
    }

    #[test]
    fn bucketize_tolerates_nan_scores(
        xs in prop::collection::vec(0.0f64..1.0, 1..200),
        nan_every in 1usize..6,
        k in 1usize..12,
    ) {
        // Poison a deterministic subset of scores with NaN: bucketing
        // must neither panic nor send NaN anywhere but the last bucket,
        // and the finite scores must bucket exactly as they do alone.
        let poisoned: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| if i % nan_every == 0 { f64::NAN } else { x })
            .collect();
        let bounds = equi_depth_boundaries(&poisoned, k);
        let finite: Vec<f64> = poisoned.iter().copied().filter(|s| !s.is_nan()).collect();
        if !finite.is_empty() {
            prop_assert_eq!(&bounds, &equi_depth_boundaries(&finite, k));
        } else {
            prop_assert!(bounds.is_empty());
        }
        let ids = assign_buckets(&poisoned, &bounds);
        prop_assert_eq!(ids.len(), poisoned.len());
        for (score, id) in poisoned.iter().zip(&ids) {
            prop_assert!(*id < k);
            if score.is_nan() {
                prop_assert_eq!(*id, bounds.len(), "NaN belongs to the last bucket");
            }
        }
    }

    #[test]
    fn selectivity_estimate_absorb_matches_fresh(p1 in 0u64..100, n1x in 0u64..100, p2 in 0u64..100, n2x in 0u64..100) {
        let (n1, n2) = (p1 + n1x, p2 + n2x);
        let mut e = SelectivityEstimate::from_sample(p1, n1);
        e.absorb(p2, n2);
        let fresh = SelectivityEstimate::from_sample(p1 + p2, n1 + n2);
        prop_assert!((e.mean() - fresh.mean()).abs() < 1e-12);
        prop_assert!((e.variance() - fresh.variance()).abs() < 1e-12);
    }
}
