//! Special functions used by the distributions: `ln Γ(x)` and the
//! regularized incomplete beta function `I_x(a, b)`.
//!
//! Both are textbook numerical-recipes implementations, accurate to well
//! beyond the tolerances the paper's algorithms need (the incomplete beta
//! is only used for Binomial/Beta CDFs in tests and diagnostics).

/// Natural log of the gamma function, via the Lanczos approximation.
///
/// Accurate to ~1e-13 for `x > 0`. Panics on non-positive input.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g = 7, n = 9).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps precision for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of the beta function `B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Binomial coefficient `C(n, k)` computed in log-space (exact enough for
/// pmf evaluation at the scales we use).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose requires k <= n");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Numerical Recipes `betai`).
///
/// Domain: `a, b > 0`, `x ∈ [0, 1]`.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "inc_beta requires a,b > 0");
    assert!((0.0..=1.0).contains(&x), "inc_beta requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // The prefactor x^a (1-x)^b / B(a,b) is symmetric under (a,b,x) ->
    // (b,a,1-x), so it can be shared by both continued-fraction branches.
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)).exp();
    // Evaluate the continued fraction on whichever side converges fast.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz's continued-fraction evaluation for the incomplete beta.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [(f64, f64); 5] = [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (5.0, 24.0),
            (10.0, 362_880.0),
        ];
        for (x, f) in facts {
            close(ln_gamma(x), f.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.3, 1.7, 4.2, 25.0, 1000.0] {
            close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn ln_choose_small_cases() {
        close(ln_choose(5, 2), 10f64.ln(), 1e-12);
        close(ln_choose(10, 5), 252f64.ln(), 1e-10);
        close(ln_choose(4, 0), 0.0, 1e-12);
        close(ln_choose(4, 4), 0.0, 1e-12);
    }

    #[test]
    fn inc_beta_uniform_case() {
        // I_x(1, 1) = x (the uniform CDF).
        for &x in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            close(inc_beta(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn inc_beta_symmetry() {
        // I_x(a, b) = 1 - I_{1-x}(b, a)
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.25), (7.0, 1.5, 0.8)] {
            close(inc_beta(a, b, x), 1.0 - inc_beta(b, a, 1.0 - x), 1e-11);
        }
    }

    #[test]
    fn inc_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry of Beta(2,2).
        close(inc_beta(2.0, 2.0, 0.5), 0.5, 1e-12);
        // Beta(2,1) has CDF x^2.
        close(inc_beta(2.0, 1.0, 0.3), 0.09, 1e-12);
    }

    #[test]
    fn inc_beta_monotone_in_x() {
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let v = inc_beta(3.0, 5.0, x);
            assert!(v >= prev - 1e-13);
            prev = v;
        }
    }
}
