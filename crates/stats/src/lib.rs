//! Statistical substrate for the `expred` workspace.
//!
//! This crate provides the probabilistic machinery that the paper's
//! algorithms are built on:
//!
//! * [`rng`] — deterministic, forkable random number generation. Every
//!   experiment in the workspace is seeded, so results are reproducible
//!   run-to-run.
//! * [`special`] — special functions (`ln Γ`, regularized incomplete beta)
//!   needed by the distributions.
//! * [`beta`] — the Beta distribution; the posterior over a group's
//!   selectivity after observing UDF outcomes (paper §4.1).
//! * [`binomial`] — the Binomial distribution; the number of correct tuples
//!   in a group under the perfect-selectivity model (paper §3.2).
//! * [`bounds`] — Hoeffding and Chebyshev concentration thresholds used to
//!   turn probabilistic precision/recall constraints into deterministic
//!   ones (paper §3.2.1 and §3.3.1).
//! * [`estimator`] — selectivity estimates (mean + variance) derived either
//!   from samples or from exact knowledge.
//! * [`descriptive`] — streaming descriptive statistics (Welford), Pearson
//!   correlation, quantiles; used to calibrate and verify the synthetic
//!   dataset generators against the paper's Table 3.
//! * [`histogram`] — equi-depth bucketing of probability scores, used to
//!   turn a classifier's output into a *virtual* correlated column
//!   (paper §4.4, §6.3.2).
//! * [`hash`] — deterministic FNV-1a fingerprinting shared by the
//!   table/UDF/engine cache-key layers.
//! * [`json`] — the workspace's one no-serde JSON parser/writer, shared
//!   by the serving tier's request/response bodies, the `/metrics`
//!   endpoint, and the `BENCH_<name>.json` perf artifacts.

pub mod beta;
pub mod binomial;
pub mod bounds;
pub mod descriptive;
pub mod estimator;
pub mod hash;
pub mod histogram;
pub mod json;
pub mod rng;
pub mod special;

pub use beta::Beta;
pub use binomial::Binomial;
pub use bounds::{chebyshev_scale, hoeffding_threshold};
pub use descriptive::{pearson, Accumulator};
pub use estimator::SelectivityEstimate;
pub use rng::Prng;
