//! Deterministic, forkable random number generation.
//!
//! All randomness in the workspace flows through [`Prng`], a from-scratch
//! xoshiro256++ generator seeded through SplitMix64. Owning the generator
//! (rather than wrapping an external crate) guarantees bit-for-bit
//! reproducibility across toolchain upgrades — every experiment in the
//! paper reproduction is identified by a single `u64` seed — and gives us
//! `Clone` + forkable streams for parallel experiment iterations.

/// SplitMix64 step: used for seeding and for deriving fork seeds.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256++ pseudo-random number generator.
///
/// `Prng` is deliberately minimal: it exposes only the primitives the
/// paper's algorithms need (uniform floats, bounded integers, Bernoulli
/// draws, Gaussians, Fisher–Yates sampling) plus [`Prng::fork`], which
/// derives an independent child generator so that parallel experiment
/// iterations do not share a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: [u64; 4],
    seed: u64,
}

impl Prng {
    /// Creates a generator from a seed. Equal seeds produce equal streams.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { state, seed }
    }

    /// The seed this generator was created from (forks get derived seeds).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for a labelled sub-task.
    ///
    /// The child seed mixes the parent seed with `label` through SplitMix64,
    /// so distinct labels yield decorrelated streams and the derivation does
    /// not consume parent state.
    pub fn fork(&self, label: u64) -> Self {
        let mut sm = self
            .seed
            .wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(label.wrapping_add(1)));
        Self::seeded(splitmix64(&mut sm))
    }

    /// The raw xoshiro256++ 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased bounded sampling.
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is an empty range");
        let n = n as u64;
        // Lemire's multiply-shift rejection method (unbiased).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0,1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// A standard normal draw (Box–Muller; one value per call).
    pub fn gaussian(&mut self) -> f64 {
        // Avoid ln(0) by shifting the first uniform away from zero.
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` without replacement.
    ///
    /// Uses a partial Fisher–Yates over an index vector; `O(n)` space but
    /// exact and unbiased, which matters for the sampling experiments.
    /// If `k >= n`, returns all indices (shuffled).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        let k = k.min(n);
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = Prng::seeded(7);
        let mut b = Prng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::seeded(1);
        let mut b = Prng::seeded(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn fork_is_decorrelated_and_deterministic() {
        let parent = Prng::seeded(42);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        let mut c1_again = parent.fork(0);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        let mut c1 = parent.fork(0);
        let matches = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(matches < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Prng::seeded(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = Prng::seeded(33);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_respects_bound_and_is_roughly_uniform() {
        let mut rng = Prng::seeded(4);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            let v = rng.below(7);
            assert!(v < 7);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts={counts:?}");
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Prng::seeded(5);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-1.0));
        assert!(rng.bernoulli(2.0));
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let mut rng = Prng::seeded(6);
        let hits = (0..20_000).filter(|_| rng.bernoulli(0.3)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Prng::seeded(8);
        let n = 50_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.gaussian();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = Prng::seeded(9);
        let sample = rng.sample_indices(100, 30);
        assert_eq!(sample.len(), 30);
        let mut seen = std::collections::HashSet::new();
        for &i in &sample {
            assert!(i < 100);
            assert!(seen.insert(i), "duplicate index {i}");
        }
    }

    #[test]
    fn sample_indices_k_exceeds_n() {
        let mut rng = Prng::seeded(10);
        let mut sample = rng.sample_indices(5, 50);
        sample.sort_unstable();
        assert_eq!(sample, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Prng::seeded(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = Prng::seeded(12);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
