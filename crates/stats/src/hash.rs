//! Deterministic, process-independent hashing (FNV-1a).
//!
//! The session layer fingerprints tables, UDFs, and whole query requests
//! so cache keys stay stable across processes — a promise `std`'s
//! `DefaultHasher` explicitly does not make. One implementation lives
//! here so the table, UDF, and engine layers cannot drift apart.

/// FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

/// Incremental FNV-1a accumulator.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh accumulator at the offset basis.
    pub fn new() -> Self {
        Self(OFFSET)
    }

    /// Folds raw bytes in.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Folds a `u64` in (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a string in, length-prefixed so `("ab","c")` and
    /// `("a","bc")` stay distinct.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv64::new();
        h.write_bytes(b"foo");
        h.write_bytes(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn length_prefix_separates_strings() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
