//! The Beta distribution.
//!
//! The paper (§4.1) models the posterior over a group's selectivity after
//! evaluating `F_a` tuples and observing `F⁺_a` positives as
//! `Beta(F⁺_a + 1, F⁻_a + 1)`, and feeds its mean and variance into the
//! convex optimization of §3.3. This module provides that distribution with
//! exact moments, density, CDF, and sampling (via Marsaglia–Tsang gamma
//! generation).

use crate::rng::Prng;
use crate::special::{inc_beta, ln_beta};

/// A `Beta(α, β)` distribution with `α, β > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// Creates `Beta(alpha, beta)`. Panics unless both parameters are
    /// positive and finite.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha.is_finite() && beta > 0.0 && beta.is_finite(),
            "Beta parameters must be positive and finite, got ({alpha}, {beta})"
        );
        Self { alpha, beta }
    }

    /// The Laplace-smoothed posterior over a selectivity after observing
    /// `positives` successes in `trials` Bernoulli draws:
    /// `Beta(F⁺ + 1, F⁻ + 1)` with a uniform prior (paper §4.1).
    pub fn posterior(positives: u64, trials: u64) -> Self {
        assert!(positives <= trials, "positives cannot exceed trials");
        Self::new(positives as f64 + 1.0, (trials - positives) as f64 + 1.0)
    }

    /// First shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Second shape parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// `E[X] = α / (α + β)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// `Var[X] = αβ / ((α+β)² (α+β+1))`.
    pub fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Density at `x ∈ [0, 1]` (0 outside the support).
    pub fn pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        // Handle boundary densities that would hit ln(0).
        if (x == 0.0 && self.alpha < 1.0) || (x == 1.0 && self.beta < 1.0) {
            return f64::INFINITY;
        }
        if (x == 0.0 && self.alpha > 1.0) || (x == 1.0 && self.beta > 1.0) {
            return 0.0;
        }
        let ln_pdf = (self.alpha - 1.0) * x.ln() + (self.beta - 1.0) * (1.0 - x).ln()
            - ln_beta(self.alpha, self.beta);
        ln_pdf.exp()
    }

    /// CDF `P(X ≤ x)` via the regularized incomplete beta function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x >= 1.0 {
            1.0
        } else {
            inc_beta(self.alpha, self.beta, x)
        }
    }

    /// Draws one sample, as `G_α / (G_α + G_β)` for independent gamma draws.
    pub fn sample(&self, rng: &mut Prng) -> f64 {
        let x = sample_gamma(self.alpha, rng);
        let y = sample_gamma(self.beta, rng);
        if x + y == 0.0 {
            // Numerically possible only for tiny shapes; fall back to mean.
            self.mean()
        } else {
            x / (x + y)
        }
    }
}

/// Samples `Gamma(shape, 1)` via Marsaglia–Tsang (2000), with the standard
/// boosting trick for `shape < 1`.
pub fn sample_gamma(shape: f64, rng: &mut Prng) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: X ~ Gamma(a+1), U^(1/a) * X ~ Gamma(a).
        let x = sample_gamma(shape + 1.0, rng);
        let u = rng.f64().max(f64::MIN_POSITIVE);
        return x * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let mut x;
        let mut v;
        loop {
            x = rng.gaussian();
            v = 1.0 + c * x;
            if v > 0.0 {
                break;
            }
        }
        let v3 = v * v * v;
        let u = rng.f64().max(f64::MIN_POSITIVE);
        // Squeeze then full acceptance test.
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v3;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn posterior_moments_match_paper_formulas() {
        // Paper §4.1: s_a = (F⁺+1)/(F+2), v_a = s_a(1-s_a)/(F+3).
        let cases = [(0u64, 0u64), (5, 10), (90, 100), (0, 7), (7, 7)];
        for (pos, n) in cases {
            let b = Beta::posterior(pos, n);
            let s = (pos as f64 + 1.0) / (n as f64 + 2.0);
            let v = s * (1.0 - s) / (n as f64 + 3.0);
            assert!((b.mean() - s).abs() < 1e-12, "mean for ({pos},{n})");
            assert!((b.variance() - v).abs() < 1e-12, "var for ({pos},{n})");
        }
    }

    #[test]
    fn uniform_special_case() {
        let b = Beta::new(1.0, 1.0);
        assert!((b.mean() - 0.5).abs() < 1e-12);
        assert!((b.variance() - 1.0 / 12.0).abs() < 1e-12);
        assert!((b.pdf(0.3) - 1.0).abs() < 1e-10);
        assert!((b.cdf(0.3) - 0.3).abs() < 1e-10);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let b = Beta::new(2.5, 4.0);
        let n = 20_000;
        let mut acc = 0.0;
        for i in 0..n {
            let x = (i as f64 + 0.5) / n as f64;
            acc += b.pdf(x) / n as f64;
        }
        assert!((acc - 1.0).abs() < 1e-4, "integral={acc}");
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let b = Beta::new(3.0, 1.5);
        let mut prev = -1.0;
        for i in 0..=50 {
            let x = i as f64 / 50.0;
            let c = b.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(b.cdf(-0.5), 0.0);
        assert_eq!(b.cdf(1.5), 1.0);
    }

    #[test]
    fn sample_moments_match_analytic() {
        let b = Beta::new(6.0, 2.0);
        let mut rng = Prng::seeded(123);
        let n = 40_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = b.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x));
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(
            (mean - b.mean()).abs() < 0.005,
            "mean {mean} vs {}",
            b.mean()
        );
        assert!(
            (var - b.variance()).abs() < 0.002,
            "var {var} vs {}",
            b.variance()
        );
    }

    #[test]
    fn gamma_sampler_moments() {
        let mut rng = Prng::seeded(77);
        for &shape in &[0.5, 1.0, 2.0, 9.0] {
            let n = 30_000;
            let mut sum = 0.0;
            for _ in 0..n {
                sum += sample_gamma(shape, &mut rng);
            }
            let mean = sum / n as f64;
            // Gamma(shape, 1) has mean = shape.
            assert!(
                (mean - shape).abs() < 0.06 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn rejects_bad_params() {
        Beta::new(0.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn posterior_rejects_excess_positives() {
        Beta::posterior(4, 3);
    }
}
