//! Equi-depth bucketing of scores.
//!
//! The virtual-column technique (paper §4.4 second method, §6.3.2) trains a
//! classifier, scores every tuple, and splits tuples into `k` buckets
//! "chosen so as to get equal sized buckets". The bucket id then acts as the
//! correlated column. This module computes those equi-depth boundaries and
//! assigns bucket ids.

/// Equi-depth bucket boundaries for `scores`, producing at most `buckets`
/// buckets.
///
/// Returns the interior cut points `c_1 < c_2 < … < c_{m-1}` (m ≤ buckets);
/// bucket `i` holds scores in `[c_i, c_{i+1})` with the conventional
/// half-open intervals and the last bucket closed above. Duplicate cut
/// points arising from heavy ties are collapsed, so fewer than `buckets`
/// buckets may result (matching how equal-sized bucketing behaves on
/// discrete score distributions).
///
/// NaN scores (a degenerate classifier can emit them) never panic: they
/// are excluded from boundary estimation, and [`assign_buckets`] routes
/// them deterministically to the last bucket. All-NaN scores produce no
/// cut points (one bucket).
///
/// Panics if `buckets == 0` or `scores` is empty.
pub fn equi_depth_boundaries(scores: &[f64], buckets: usize) -> Vec<f64> {
    assert!(buckets > 0, "need at least one bucket");
    assert!(!scores.is_empty(), "cannot bucketize an empty score set");
    let mut sorted: Vec<f64> = scores.iter().copied().filter(|s| !s.is_nan()).collect();
    sorted.sort_by(f64::total_cmp);
    if sorted.is_empty() {
        return Vec::new();
    }
    let n = sorted.len();
    let mut cuts = Vec::with_capacity(buckets.saturating_sub(1));
    for i in 1..buckets {
        let idx = (i * n) / buckets;
        let cut = sorted[idx.min(n - 1)];
        // A cut is only useful if some score falls strictly below it
        // (otherwise bucket 0 would be empty); duplicates collapse.
        if cut > sorted[0] && cuts.last().is_none_or(|&last| cut > last) {
            cuts.push(cut);
        }
    }
    cuts
}

/// Assigns each score to its bucket id given interior `boundaries`
/// (as produced by [`equi_depth_boundaries`]).
///
/// Scores below the first boundary get bucket 0; scores ≥ the last boundary
/// get the final bucket. NaN scores go to the final bucket too — a fixed,
/// deterministic home ("no usable score" sorts with "highest"), never a
/// panic or an unspecified comparison.
pub fn assign_buckets(scores: &[f64], boundaries: &[f64]) -> Vec<usize> {
    scores
        .iter()
        .map(|&s| {
            if s.is_nan() {
                return boundaries.len();
            }
            // partition_point gives the count of boundaries <= s, which is
            // exactly the bucket index for half-open intervals.
            boundaries.partition_point(|&b| b <= s)
        })
        .collect()
}

/// One-call convenience: equi-depth bucket ids for `scores`.
pub fn bucketize(scores: &[f64], buckets: usize) -> Vec<usize> {
    let bounds = equi_depth_boundaries(scores, buckets);
    assign_buckets(scores, &bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_scores_get_balanced_buckets() {
        let scores: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let ids = bucketize(&scores, 10);
        let mut counts = vec![0usize; 10];
        for id in ids {
            counts[id] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 100, "counts={counts:?}");
        }
    }

    #[test]
    fn boundaries_are_strictly_increasing() {
        let scores: Vec<f64> = (0..500).map(|i| ((i * 7919) % 500) as f64).collect();
        let bounds = equi_depth_boundaries(&scores, 8);
        for w in bounds.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn ties_collapse_buckets() {
        // All-equal scores can only form one bucket.
        let scores = vec![0.5; 100];
        let bounds = equi_depth_boundaries(&scores, 10);
        assert!(bounds.is_empty());
        let ids = assign_buckets(&scores, &bounds);
        assert!(ids.iter().all(|&i| i == 0));
    }

    #[test]
    fn assignment_respects_boundaries() {
        let boundaries = vec![0.25, 0.5, 0.75];
        let scores = [0.0, 0.25, 0.3, 0.5, 0.74, 0.75, 1.0];
        let ids = assign_buckets(&scores, &boundaries);
        assert_eq!(ids, vec![0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn bucket_ids_are_monotone_in_score() {
        let scores: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37).sin()).collect();
        let ids = bucketize(&scores, 5);
        let mut pairs: Vec<(f64, usize)> = scores.iter().copied().zip(ids).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1, "bucket ids must be monotone in score");
        }
    }

    #[test]
    fn nan_scores_never_panic_and_land_in_the_last_bucket() {
        // Regression: a degenerate classifier emitting NaN scores used to
        // kill the whole query via `.expect("NaN score")` in the sort.
        let scores = [0.1, f64::NAN, 0.9, 0.4, f64::NAN, 0.6];
        let bounds = equi_depth_boundaries(&scores, 2);
        // Boundaries come from the finite scores only.
        assert_eq!(bounds, vec![0.6]);
        let ids = assign_buckets(&scores, &bounds);
        assert_eq!(ids, vec![0, 1, 1, 0, 1, 1], "NaN goes to the last bucket");
        // NaN placement is deterministic regardless of input order.
        let flipped = [f64::NAN, 0.9, 0.1, 0.6, f64::NAN, 0.4];
        assert_eq!(equi_depth_boundaries(&flipped, 2), bounds);
        assert_eq!(assign_buckets(&[f64::NAN], &bounds), vec![1]);
    }

    #[test]
    fn all_nan_scores_form_one_bucket() {
        let scores = [f64::NAN, f64::NAN, f64::NAN];
        let bounds = equi_depth_boundaries(&scores, 4);
        assert!(bounds.is_empty(), "no finite scores, no cut points");
        assert_eq!(assign_buckets(&scores, &bounds), vec![0, 0, 0]);
        assert_eq!(bucketize(&scores, 4), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_buckets() {
        bucketize(&[0.1], 0);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_scores() {
        bucketize(&[], 3);
    }
}
