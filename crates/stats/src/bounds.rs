//! Concentration-bound thresholds.
//!
//! The paper converts probabilistic precision/recall constraints into
//! deterministic slack terms in two ways:
//!
//! * **Hoeffding** (§3.2.1, perfect selectivities): the constraint LHS is a
//!   sum of independent bounded per-tuple variables, so it stays within
//!   `h = sqrt(ln(1/(1-ρ)) · Σ width_i² / 2)` of its expectation with
//!   probability ≥ ρ. The paper's printed formulas
//!   (`h^p_ρ = sqrt(log(1-ρ)Σt_a/2)`) have a sign garble (log of a value
//!   < 1 is negative) and an unsquared `(1-β)` factor; we implement the
//!   rigorous form derived in the paper's own appendix (10.1), where the
//!   per-tuple ranges are width 1 (precision) and width `1-β` (recall).
//! * **Chebyshev** (§3.3.1, estimated selectivities): a constraint
//!   `Q ≥ 0` holds with probability ≥ ρ whenever
//!   `E[Q] ≥ Dev(Q)/sqrt(1-ρ)`; the multiplier `e_ρ = 1/sqrt(1-ρ)` is
//!   [`chebyshev_scale`].

/// Hoeffding threshold for a sum of independent variables with the given
/// total squared range width: with probability ≥ `rho` the sum is within
/// `hoeffding_threshold(sum_sq_widths, rho)` of its expectation (one-sided).
///
/// `sum_sq_widths` is `Σ_i (b_i - a_i)²` where variable `i` is supported on
/// `[a_i, b_i]`.
///
/// Panics unless `rho ∈ [0, 1)` and `sum_sq_widths ≥ 0`.
pub fn hoeffding_threshold(sum_sq_widths: f64, rho: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&rho),
        "satisfaction probability must be in [0,1), got {rho}"
    );
    assert!(sum_sq_widths >= 0.0, "squared widths must be nonnegative");
    // P(S - E[S] <= -t) <= exp(-2 t^2 / sum_sq_widths)  =>
    // t = sqrt( ln(1/(1-rho)) * sum_sq_widths / 2 ).
    (((1.0 - rho).recip()).ln() * sum_sq_widths / 2.0).sqrt()
}

/// Hoeffding slack for the **precision** constraint of LinearProg 3.4:
/// per-tuple indicator `I^p ∈ [-α, 1-α]` has width 1, so the squared width
/// total is just the number of tuples `n`.
pub fn precision_slack(total_tuples: f64, rho: f64) -> f64 {
    hoeffding_threshold(total_tuples.max(0.0), rho)
}

/// Hoeffding slack for the **recall** constraint of LinearProg 3.4:
/// per-tuple indicator `I^r ∈ [0, 1-β]` has width `1-β`, so the squared
/// width total is `n (1-β)²`.
pub fn recall_slack(total_tuples: f64, beta: f64, rho: f64) -> f64 {
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
    let w = 1.0 - beta;
    hoeffding_threshold((total_tuples * w * w).max(0.0), rho)
}

/// Chebyshev multiplier `e_ρ = 1/sqrt(1-ρ)` (paper §3.3.1): a one-sided
/// constraint `Q ≥ 0` holds with probability ≥ ρ if
/// `E[Q] ≥ e_ρ · Dev(Q)`.
///
/// Panics unless `rho ∈ [0, 1)`.
pub fn chebyshev_scale(rho: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&rho),
        "satisfaction probability must be in [0,1), got {rho}"
    );
    (1.0 - rho).sqrt().recip()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hoeffding_zero_when_certain_of_nothing() {
        // rho = 0 demands nothing, so no slack is needed.
        assert_eq!(hoeffding_threshold(100.0, 0.0), 0.0);
    }

    #[test]
    fn hoeffding_grows_with_rho_and_n() {
        let a = hoeffding_threshold(1000.0, 0.8);
        let b = hoeffding_threshold(1000.0, 0.95);
        let c = hoeffding_threshold(4000.0, 0.8);
        assert!(b > a, "more confidence needs more slack");
        assert!((c - 2.0 * a).abs() < 1e-9, "slack scales as sqrt(n)");
    }

    #[test]
    fn hoeffding_known_value() {
        // n = 2, rho = 1 - e^{-2}: t = sqrt(2 * 2 / 2) ... compute directly:
        let rho = 1.0 - (-2.0f64).exp();
        let t = hoeffding_threshold(2.0, rho);
        assert!((t - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn recall_slack_shrinks_as_beta_tightens() {
        // Counterintuitive but correct: the recall indicator range is
        // [0, 1-beta], so larger beta means tighter indicators and a
        // smaller required slack.
        let loose = recall_slack(10_000.0, 0.2, 0.8);
        let tight = recall_slack(10_000.0, 0.9, 0.8);
        assert!(tight < loose);
        assert_eq!(recall_slack(10_000.0, 1.0, 0.8), 0.0);
    }

    #[test]
    fn precision_slack_matches_raw_threshold() {
        assert_eq!(
            precision_slack(5000.0, 0.9),
            hoeffding_threshold(5000.0, 0.9)
        );
    }

    #[test]
    fn chebyshev_scale_known_values() {
        assert!((chebyshev_scale(0.0) - 1.0).abs() < 1e-12);
        assert!((chebyshev_scale(0.75) - 2.0).abs() < 1e-12);
        assert!((chebyshev_scale(0.96) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn chebyshev_rejects_rho_one() {
        chebyshev_scale(1.0);
    }

    #[test]
    #[should_panic]
    fn hoeffding_rejects_negative_widths() {
        hoeffding_threshold(-1.0, 0.5);
    }
}
