//! The Binomial distribution.
//!
//! Under the paper's *perfect selectivity* model (§3.2), the number of
//! correct tuples in a group of size `t_a` with selectivity `s_a` is
//! `Binomial(t_a, s_a)`. This module provides exact pmf/cdf evaluation and
//! sampling; it is used by the synthetic data generators and by tests that
//! verify the execution engine's concentration behaviour.

use crate::rng::Prng;
use crate::special::{inc_beta, ln_choose};

/// A `Binomial(n, p)` distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates `Binomial(n, p)`. Panics unless `p ∈ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        Self { n, p }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// `E[X] = n p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// `Var[X] = n p (1-p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Probability mass at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        let ln_pmf = ln_choose(self.n, k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln();
        ln_pmf.exp()
    }

    /// CDF `P(X ≤ k)` via the incomplete-beta identity
    /// `P(X ≤ k) = I_{1-p}(n-k, k+1)`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0; // k < n here
        }
        inc_beta((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p)
    }

    /// Draws one sample.
    ///
    /// Strategy: exact per-trial Bernoulli for small `n`; otherwise exact
    /// inversion starting from the mode using the pmf recurrence, which is
    /// `O(σ)` expected and still exact. No approximate fallback exists, so
    /// sampled counts are always correctly distributed.
    pub fn sample(&self, rng: &mut Prng) -> u64 {
        if self.p == 0.0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        if self.n <= 64 {
            return (0..self.n).filter(|_| rng.bernoulli(self.p)).count() as u64;
        }
        self.sample_inversion(rng)
    }

    /// Exact inversion around the mode: walk outward accumulating pmf mass
    /// until the uniform draw is covered.
    fn sample_inversion(&self, rng: &mut Prng) -> u64 {
        let u = rng.f64();
        let mode = ((self.n as f64 + 1.0) * self.p).floor().min(self.n as f64) as u64;
        let pmf_mode = self.pmf(mode);
        // CDF strictly below the mode; walking outward from the mode
        // terminates in expected O(sigma) steps since the mode carries the
        // largest mass.
        let below = self.cdf(mode) - pmf_mode;
        if u < below {
            // Walk downward from mode - 1.
            let mut k = mode;
            let mut target = below;
            let mut pmf = pmf_mode;
            while k > 0 {
                // pmf(k-1) = pmf(k) * k * (1-p) / ((n-k+1) * p)
                pmf = pmf * k as f64 * (1.0 - self.p) / ((self.n - k + 1) as f64 * self.p);
                k -= 1;
                target -= pmf;
                if u >= target {
                    return k;
                }
            }
            0
        } else {
            // Walk upward from the mode.
            let mut k = mode;
            let mut cum = below + pmf_mode;
            let mut pmf = pmf_mode;
            while k < self.n {
                if u < cum {
                    return k;
                }
                // pmf(k+1) = pmf(k) * (n-k) * p / ((k+1) * (1-p))
                pmf = pmf * (self.n - k) as f64 * self.p / ((k + 1) as f64 * (1.0 - self.p));
                k += 1;
                cum += pmf;
            }
            self.n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(30, 0.37);
        let total: f64 = (0..=30).map(|k| b.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10, "sum={total}");
    }

    #[test]
    fn pmf_known_values() {
        let b = Binomial::new(4, 0.5);
        assert!((b.pmf(0) - 0.0625).abs() < 1e-12);
        assert!((b.pmf(2) - 0.375).abs() < 1e-12);
        assert!((b.pmf(5) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let b = Binomial::new(25, 0.21);
        let mut acc = 0.0;
        for k in 0..=25 {
            acc += b.pmf(k);
            assert!(
                (b.cdf(k) - acc).abs() < 1e-9,
                "k={k}: {} vs {acc}",
                b.cdf(k)
            );
        }
    }

    #[test]
    fn degenerate_p() {
        let b0 = Binomial::new(10, 0.0);
        assert_eq!(b0.pmf(0), 1.0);
        assert_eq!(b0.cdf(0), 1.0);
        let b1 = Binomial::new(10, 1.0);
        assert_eq!(b1.pmf(10), 1.0);
        assert_eq!(b1.cdf(9), 0.0);
        let mut rng = Prng::seeded(1);
        assert_eq!(b0.sample(&mut rng), 0);
        assert_eq!(b1.sample(&mut rng), 10);
    }

    #[test]
    fn small_n_sampling_moments() {
        let b = Binomial::new(20, 0.3);
        let mut rng = Prng::seeded(2);
        let n = 30_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += b.sample(&mut rng) as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - b.mean()).abs() < 0.06, "mean={mean}");
    }

    #[test]
    fn large_n_sampling_moments() {
        let b = Binomial::new(5000, 0.72);
        let mut rng = Prng::seeded(3);
        let n = 3_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = b.sample(&mut rng) as f64;
            assert!(x <= 5000.0);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - b.mean()).abs() < 3.0, "mean={mean} vs {}", b.mean());
        assert!(
            (var - b.variance()).abs() < 0.15 * b.variance(),
            "var={var} vs {}",
            b.variance()
        );
    }

    #[test]
    fn inversion_matches_cdf_distribution() {
        // Kolmogorov-style check: empirical CDF at several points is close
        // to analytic CDF for the inversion sampler.
        let b = Binomial::new(300, 0.11);
        let mut rng = Prng::seeded(4);
        let n = 20_000;
        let samples: Vec<u64> = (0..n).map(|_| b.sample(&mut rng)).collect();
        for &k in &[20u64, 30, 33, 40, 50] {
            let emp = samples.iter().filter(|&&x| x <= k).count() as f64 / n as f64;
            let ana = b.cdf(k);
            assert!((emp - ana).abs() < 0.02, "k={k}: emp={emp} ana={ana}");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_bad_p() {
        Binomial::new(10, 1.5);
    }
}
