//! A minimal no-serde JSON layer shared across the workspace.
//!
//! The build environment is offline, so the workspace cannot pull serde;
//! everything that speaks JSON — the serving tier's request/response
//! bodies, the `/metrics` endpoint, and the `BENCH_<name>.json` perf
//! artifacts — goes through this one module instead of hand-rolling a
//! parser per call site. It lives in `expred-stats` because that is the
//! workspace's leaf utility crate (it already hosts the shared
//! [`crate::hash`]): every other crate can depend on it without cycles.
//!
//! [`JsonValue::parse`] accepts the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null); [`JsonValue::render`]
//! produces compact output with a stable field order (objects preserve
//! insertion order — no hashing, so output is reproducible byte for
//! byte). [`escape`] and [`fmt_f64`] are the shared string/number
//! formatting primitives for callers that emit JSON fragments directly.

use std::fmt::Write as _;

/// One parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in insertion order (duplicate keys keep the last).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser::new(text);
        let value = p.parse_value()?;
        p.skip_ws();
        if p.pos < p.chars.len() {
            return Err(p.fail("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's field names, in order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            JsonValue::Object(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects fractions, negatives, and overflow).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Renders compact JSON (no whitespace, stable field order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => out.push_str(&fmt_number(*n)),
            JsonValue::String(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\":");
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Why a document failed to parse: a message plus the character offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Character offset of the failure.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Deepest container nesting [`JsonValue::parse`] accepts. The parser
/// recurses once per level, so this bound is what keeps an adversarial
/// body of nested `[` from overflowing the calling thread's stack (a
/// stack overflow aborts the process — `catch_unwind` cannot contain
/// it). 64 is far beyond any legitimate workspace document.
const MAX_DEPTH: usize = 64;

struct Parser {
    chars: Vec<char>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn new(text: &str) -> Self {
        Self {
            chars: text.chars().collect(),
            pos: 0,
            depth: 0,
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.fail(&format!("nesting deeper than {MAX_DEPTH} levels")))
        } else {
            Ok(())
        }
    }

    fn fail(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.chars.get(self.pos).is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, want: char) -> Result<(), JsonError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected {want:?}")))
        }
    }

    fn try_consume(&mut self, want: char) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        let chars: Vec<char> = literal.chars().collect();
        if self.chars.get(self.pos..self.pos + chars.len()) == Some(&chars[..]) {
            self.pos += chars.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some('{') => self.parse_object(),
            Some('[') => self.parse_array(),
            Some('"') => Ok(JsonValue::String(self.parse_string()?)),
            Some('t') if self.consume_literal("true") => Ok(JsonValue::Bool(true)),
            Some('f') if self.consume_literal("false") => Ok(JsonValue::Bool(false)),
            Some('n') if self.consume_literal("null") => Ok(JsonValue::Null),
            Some(c) if c.is_ascii_digit() || c == '-' => self.parse_number(),
            Some(_) => Err(self.fail("expected a JSON value")),
            None => Err(self.fail("unexpected end of document")),
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect('{')?;
        self.enter()?;
        let mut fields = Vec::new();
        if !self.try_consume('}') {
            loop {
                let key = self.parse_string()?;
                self.expect(':')?;
                let value = self.parse_value()?;
                fields.push((key, value));
                if self.try_consume('}') {
                    break;
                }
                self.expect(',')?;
            }
        }
        self.depth -= 1;
        Ok(JsonValue::Object(fields))
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect('[')?;
        self.enter()?;
        let mut items = Vec::new();
        if !self.try_consume(']') {
            loop {
                items.push(self.parse_value()?);
                if self.try_consume(']') {
                    break;
                }
                self.expect(',')?;
            }
        }
        self.depth -= 1;
        Ok(JsonValue::Array(items))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .chars
                .get(self.pos)
                .ok_or_else(|| self.fail("unterminated string"))?;
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let escape = *self
                        .chars
                        .get(self.pos)
                        .ok_or_else(|| self.fail("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        '"' | '\\' | '/' => out.push(escape),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'b' => out.push('\u{0008}'),
                        'f' => out.push('\u{000c}'),
                        'u' => {
                            let code = self.parse_hex4()?;
                            // Non-BMP characters arrive as a UTF-16
                            // surrogate pair of \u escapes; combine the
                            // high unit with the mandatory low unit.
                            let code = if (0xd800..0xdc00).contains(&code) {
                                if !(self.consume_literal("\\u")) {
                                    return Err(self.fail("unpaired high surrogate \\u escape"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.fail("expected a low surrogate \\u escape"));
                                }
                                0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("non-scalar \\u escape"))?,
                            );
                        }
                        other => return Err(self.fail(&format!("bad escape \\{other}"))),
                    }
                }
                other => out.push(other),
            }
        }
    }

    /// The four hex digits of a `\u` escape (the `\u` itself already
    /// consumed).
    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let hex: String = self
            .chars
            .get(self.pos..self.pos + 4)
            .map(|w| w.iter().collect())
            .ok_or_else(|| self.fail("truncated \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(&hex, 16).map_err(|_| self.fail("bad \\u escape"))
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse()
            .map(JsonValue::Number)
            .map_err(|_| self.fail("expected a number"))
    }
}

/// Escapes a string for embedding between JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One decimal place, or `null` for non-finite values (JSON has no
/// NaN/Inf; by workspace convention a failed measurement is `null`).
pub fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.1}")
    } else {
        "null".to_owned()
    }
}

/// General-purpose number rendering for [`JsonValue::render`]: integers
/// print without a fraction, other finite values with full `f64`
/// round-trip precision, non-finite as `null`.
fn fmt_number(value: f64) -> String {
    if !value.is_finite() {
        "null".to_owned()
    } else if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// Renders named `u64` counters as one compact JSON object — the shared
/// serializer behind stats snapshots ([`EngineStats`], `CacheStats`, the
/// serving counters) so the `/metrics` endpoint and the bench artifacts
/// agree on shape.
///
/// [`EngineStats`]: https://docs.rs/expred-core
pub fn counters_to_json(pairs: &[(&str, u64)]) -> String {
    JsonValue::Object(
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), JsonValue::Number(*v as f64)))
            .collect(),
    )
    .render()
}

/// Renders named `u64` counters as exposition-format text lines:
/// `prefix_name{label="value",...} 123`, one per counter — the shared
/// text serializer behind `GET /metrics`.
pub fn counters_to_text(prefix: &str, labels: &[(&str, &str)], pairs: &[(&str, u64)]) -> String {
    let mut out = String::new();
    let rendered_labels = if labels.is_empty() {
        String::new()
    } else {
        let inner: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
            .collect();
        format!("{{{}}}", inner.join(","))
    };
    for (name, value) in pairs {
        let _ = writeln!(out, "{prefix}_{name}{rendered_labels} {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let doc = r#"{
            "s": "a\"b\\c\ndA",
            "n": -12.5e1,
            "i": 42,
            "t": true, "f": false, "z": null,
            "arr": [1, "two", {"three": 3}],
            "nested": {"empty_obj": {}, "empty_arr": []}
        }"#;
        let v = JsonValue::parse(doc).expect("parses");
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-125.0));
        assert_eq!(v.get("i").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("t").unwrap().as_bool(), Some(true));
        assert!(v.get("z").unwrap().is_null());
        let arr = v.get("arr").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("three").unwrap().as_u64(), Some(3));
        assert_eq!(
            v.get("nested").unwrap().get("empty_obj").unwrap(),
            &JsonValue::Object(vec![])
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "{\"a\": oops}",
            "nul",
            "+5",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // One past the bound fails cleanly…
        let too_deep = format!("{}{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        let err = JsonValue::parse(&too_deep).expect_err("depth bound");
        assert!(err.message.contains("nesting"), "{err}");
        // …including a half-megabyte adversarial body, which must not
        // overflow the stack (an abort no test harness would survive).
        assert!(JsonValue::parse(&"[".repeat(500_000)).is_err());
        let mixed = "{\"a\":[".repeat(MAX_DEPTH);
        assert!(JsonValue::parse(&mixed).is_err());
        // …while the bound itself still parses.
        let at_bound = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(JsonValue::parse(&at_bound).is_ok());
        // Depth is nesting, not total container count: many shallow
        // siblings are fine.
        let wide = format!("[{}]", vec!["[]"; 1000].join(","));
        assert!(JsonValue::parse(&wide).is_ok());
    }

    #[test]
    fn surrogate_pairs_decode_to_supplementary_characters() {
        let v = JsonValue::parse("\"\\ud83d\\ude00\"").expect("surrogate pair");
        assert_eq!(v.as_str(), Some("\u{1f600}"));
        // Lone or malformed surrogates are rejected, not mangled.
        for bad in [
            r#""\ud83d""#,
            r#""\ud83dx""#,
            r#""\ud83d\n""#,
            r#""\ud83dA""#,
            r#""\ude00""#,
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn render_round_trips() {
        let doc = r#"{"a": [1, 2.5, "x\ny"], "b": {"c": null, "d": false}}"#;
        let v = JsonValue::parse(doc).unwrap();
        let compact = v.render();
        assert_eq!(JsonValue::parse(&compact).unwrap(), v);
        // Field order is preserved: rendering is deterministic.
        assert_eq!(compact, v.render());
        // Control characters render in \u form (matching the artifact
        // convention), and round-trip back to the raw character.
        assert!(compact.starts_with("{\"a\":[1,2.5,\"x\\u000ay\"]"));
    }

    #[test]
    fn numbers_render_cleanly() {
        assert_eq!(JsonValue::Number(3.0).render(), "3");
        assert_eq!(JsonValue::Number(3.25).render(), "3.25");
        assert_eq!(JsonValue::Number(f64::NAN).render(), "null");
        assert_eq!(fmt_f64(1.25), "1.2");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(JsonValue::Number(7.0).as_u64(), Some(7));
        assert_eq!(JsonValue::Number(7.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
    }

    #[test]
    fn counters_serialize_both_ways() {
        let pairs = [("queries", 5u64), ("result_hits", 2)];
        assert_eq!(
            counters_to_json(&pairs),
            "{\"queries\":5,\"result_hits\":2}"
        );
        let text = counters_to_text("engine", &[("tenant", "a\"b")], &pairs);
        assert_eq!(
            text,
            "engine_queries{tenant=\"a\\\"b\"} 5\nengine_result_hits{tenant=\"a\\\"b\"} 2\n"
        );
        let bare = counters_to_text("serve", &[], &[("shed", 1)]);
        assert_eq!(bare, "serve_shed 1\n");
    }
}
