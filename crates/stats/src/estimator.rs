//! Selectivity estimates.
//!
//! Every optimizer in `expred-core` consumes selectivity information in the
//! same shape: a mean and a variance per group. This module defines that
//! shape, [`SelectivityEstimate`], and the three ways the paper obtains it:
//!
//! * **exact** knowledge (Problem 2, the `Optimal` baseline): variance 0;
//! * a **Beta posterior over samples** (paper §4.1): mean
//!   `(F⁺+1)/(F+2)`, variance `s(1-s)/(F+3)`;
//! * an externally supplied **(mean, variance)** pair (e.g. from a
//!   logistic-regression bucket, §6.3.2).

use crate::beta::Beta;

/// A (possibly uncertain) estimate of one group's selectivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectivityEstimate {
    mean: f64,
    variance: f64,
    /// Number of tuples evaluated to form the estimate (0 if exact/external).
    samples: u64,
    /// Number of sampled tuples that satisfied the predicate.
    positives: u64,
}

impl SelectivityEstimate {
    /// An exact selectivity (no uncertainty); used by the perfect-
    /// selectivities setting of §3.2.
    pub fn exact(selectivity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&selectivity),
            "selectivity must be in [0,1], got {selectivity}"
        );
        Self {
            mean: selectivity,
            variance: 0.0,
            samples: 0,
            positives: 0,
        }
    }

    /// The Beta-posterior estimate after observing `positives` of `samples`
    /// evaluated tuples satisfy the predicate (paper §4.1).
    pub fn from_sample(positives: u64, samples: u64) -> Self {
        let post = Beta::posterior(positives, samples);
        Self {
            mean: post.mean(),
            variance: post.variance(),
            samples,
            positives,
        }
    }

    /// An externally supplied estimate with explicit uncertainty.
    pub fn with_variance(mean: f64, variance: f64) -> Self {
        assert!((0.0..=1.0).contains(&mean), "mean must be in [0,1]");
        assert!(variance >= 0.0, "variance must be nonnegative");
        // A [0,1]-supported variable's variance is at most 1/4.
        assert!(variance <= 0.25 + 1e-12, "variance exceeds 1/4");
        Self {
            mean,
            variance,
            samples: 0,
            positives: 0,
        }
    }

    /// Estimated selectivity mean `s_a`.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Estimate variance `v_a`.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Estimate standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Number of evaluated sample tuples behind the estimate.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Number of those samples that satisfied the predicate (`F⁺_a`).
    pub fn positives(&self) -> u64 {
        self.positives
    }

    /// Whether the estimate carries no uncertainty.
    pub fn is_exact(&self) -> bool {
        self.variance == 0.0 && self.samples == 0
    }

    /// The Beta posterior this estimate corresponds to, when sample-based.
    pub fn posterior(&self) -> Option<Beta> {
        if self.samples > 0 || self.positives > 0 {
            Some(Beta::posterior(self.positives, self.samples))
        } else {
            None
        }
    }

    /// Folds additional sample evidence into the estimate.
    ///
    /// Only valid for sample-based estimates; exact/external estimates are
    /// replaced wholesale instead. Used by the adaptive sampling loop of
    /// §4.2/§4.3 which alternates estimation and exploitation.
    pub fn absorb(&mut self, extra_positives: u64, extra_samples: u64) {
        assert!(extra_positives <= extra_samples);
        *self = Self::from_sample(
            self.positives + extra_positives,
            self.samples + extra_samples,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimate_has_no_variance() {
        let e = SelectivityEstimate::exact(0.72);
        assert_eq!(e.mean(), 0.72);
        assert_eq!(e.variance(), 0.0);
        assert!(e.is_exact());
        assert!(e.posterior().is_none());
    }

    #[test]
    fn sample_estimate_matches_paper_formulas() {
        let e = SelectivityEstimate::from_sample(90, 100);
        assert!((e.mean() - 91.0 / 102.0).abs() < 1e-12);
        let s = e.mean();
        assert!((e.variance() - s * (1.0 - s) / 103.0).abs() < 1e-12);
        assert!(!e.is_exact());
        assert_eq!(e.samples(), 100);
        assert_eq!(e.positives(), 90);
    }

    #[test]
    fn no_samples_gives_uniform_prior() {
        let e = SelectivityEstimate::from_sample(0, 0);
        assert!((e.mean() - 0.5).abs() < 1e-12);
        assert!((e.variance() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_accumulates_counts() {
        let mut e = SelectivityEstimate::from_sample(3, 10);
        e.absorb(7, 10);
        let fresh = SelectivityEstimate::from_sample(10, 20);
        assert_eq!(e, fresh);
    }

    #[test]
    fn more_samples_shrink_variance() {
        let small = SelectivityEstimate::from_sample(5, 10);
        let large = SelectivityEstimate::from_sample(500, 1000);
        assert!(large.variance() < small.variance());
    }

    #[test]
    fn with_variance_validates() {
        let e = SelectivityEstimate::with_variance(0.4, 0.01);
        assert_eq!(e.mean(), 0.4);
        assert_eq!(e.variance(), 0.01);
    }

    #[test]
    #[should_panic]
    fn with_variance_rejects_impossible_variance() {
        SelectivityEstimate::with_variance(0.5, 0.3);
    }

    #[test]
    #[should_panic]
    fn exact_rejects_out_of_range() {
        SelectivityEstimate::exact(1.2);
    }
}
