//! Streaming descriptive statistics.
//!
//! Used throughout the workspace: the dataset generators are calibrated
//! against the paper's Table 3 (group-size deviation, group-selectivity
//! deviation, and the Pearson correlation between size and selectivity),
//! and the experiment harness aggregates costs across iterations.

/// Welford's online mean/variance accumulator.
///
/// Numerically stable single-pass computation; `variance()` returns the
/// *population* variance (divide by `n`) and `sample_variance()` the
/// unbiased estimator (divide by `n-1`), matching how the paper reports
/// deviations of a fixed finite set of groups.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a slice in one pass.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut acc = Self::new();
        for &v in values {
            acc.push(v);
        }
        acc
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 1 observation).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (0 if fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel-friendly).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns 0 when either slice has zero variance (the paper's Table 3
/// correlation is undefined there; 0 is the conventional neutral report).
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson requires equal-length inputs");
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let mean_x = xs.iter().sum::<f64>() / n as f64;
    let mean_y = ys.iter().sum::<f64>() / n as f64;
    let (mut cov, mut var_x, mut var_y) = (0.0, 0.0, 0.0);
    for i in 0..n {
        let dx = xs[i] - mean_x;
        let dy = ys[i] - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

/// Linear-interpolated quantile of an *unsorted* slice (`q ∈ [0, 1]`).
///
/// Panics on empty input or out-of-range `q`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let acc = Accumulator::from_slice(&xs);
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.variance() - 4.0).abs() < 1e-12);
        assert!((acc.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.sample_variance(), 0.0);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let acc = Accumulator::from_slice(&[1.0, 3.0]);
        assert!((acc.sample_variance() - 2.0).abs() < 1e-12);
        assert!((acc.variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let full = Accumulator::from_slice(&xs);
        let mut left = Accumulator::from_slice(&xs[..37]);
        let right = Accumulator::from_slice(&xs[37..]);
        left.merge(&right);
        assert_eq!(left.count(), full.count());
        assert!((left.mean() - full.mean()).abs() < 1e-10);
        assert!((left.variance() - full.variance()).abs() < 1e-10);
        assert_eq!(left.min(), full.min());
        assert_eq!(left.max(), full.max());
    }

    #[test]
    fn pearson_perfect_correlations() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn pearson_known_value() {
        // Hand-computed small example.
        let xs = [1.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0];
        let r = pearson(&xs, &ys);
        assert!((r - 0.866_025_403_784_438_6).abs() < 1e-12, "r={r}");
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_empty() {
        quantile(&[], 0.5);
    }
}
