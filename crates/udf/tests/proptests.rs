//! Property tests for the session-cache accounting contract.
//!
//! The ledger invariant: for *any* sequence of queries (each an arbitrary
//! mix of single and batched evaluation requests over arbitrary rows),
//! per query,
//!
//! * `fresh_evals + reuse_hits` equals the fresh evaluations a cache-less
//!   run of the same request stream would perform (cross-query reuse
//!   substitutes for fresh calls one-for-one, never changes demand);
//! * `cache_hits` (within-query memo hits) match the cache-less run
//!   exactly;
//! * every answer matches the cache-less run bit for bit;
//!
//! and a table-version bump fully invalidates the table's namespace: the
//! next query pays full freight again with zero reuse.

use expred_exec::{CacheStore, ExecContext, Sequential};
use expred_table::{DataType, Field, Schema, Table, Value};
use expred_udf::{OracleUdf, UdfInvoker};
use proptest::prelude::*;

const ROWS: usize = 48;

fn labelled_table(rows: usize) -> Table {
    let schema = Schema::new(vec![Field::new("good", DataType::Bool)]);
    let data = (0..rows).map(|i| vec![Value::Bool(i % 3 == 0)]).collect();
    Table::from_rows(schema, data).unwrap()
}

/// One query: a request stream of (row, batched?) pairs. Consecutive
/// batched requests are dispatched together through `evaluate_batch`;
/// unbatched ones go through `evaluate`.
fn drive(invoker: &UdfInvoker<'_>, requests: &[(usize, bool)]) -> Vec<bool> {
    let mut answers = Vec::with_capacity(requests.len());
    let mut batch: Vec<usize> = Vec::new();
    let flush = |batch: &mut Vec<usize>, answers: &mut Vec<bool>| {
        if !batch.is_empty() {
            answers.extend(invoker.evaluate_batch(&Sequential, batch));
            batch.clear();
        }
    };
    for &(row, batched) in requests {
        if batched {
            batch.push(row);
        } else {
            flush(&mut batch, &mut answers);
            answers.push(invoker.evaluate(row));
        }
    }
    flush(&mut batch, &mut answers);
    answers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn session_ledger_matches_cacheless_runs(
        queries in prop::collection::vec(
            prop::collection::vec((0usize..ROWS, any::<bool>()), 1..60),
            1..8,
        )
    ) {
        let table = labelled_table(ROWS);
        let udf = OracleUdf::new("good");
        let store = CacheStore::new();
        let ctx = ExecContext::sequential().with_cache(&store);

        for requests in &queries {
            let warm = UdfInvoker::with_context(&udf, &table, &ctx);
            let warm_answers = drive(&warm, requests);

            let cold = UdfInvoker::new(&udf, &table);
            let cold_answers = drive(&cold, requests);

            prop_assert_eq!(&warm_answers, &cold_answers);
            let w = warm.counts();
            let c = cold.counts();
            prop_assert_eq!(
                w.evaluated + w.reuse_hits,
                c.evaluated,
                "fresh + reused must equal the cache-less fresh count \
                 (warm {:?} vs cold {:?})",
                w,
                c
            );
            prop_assert_eq!(w.cache_hits, c.cache_hits);
            prop_assert_eq!(w.demanded(), c.demanded());
            prop_assert_eq!(c.reuse_hits, 0, "cache-less runs never reuse");
        }
    }

    #[test]
    fn version_bump_fully_invalidates_the_namespace(
        first in prop::collection::vec((0usize..ROWS, any::<bool>()), 1..60),
        second in prop::collection::vec((0usize..ROWS, any::<bool>()), 1..60),
    ) {
        let mut table = labelled_table(ROWS);
        let udf = OracleUdf::new("good");
        let store = CacheStore::new();

        {
            let ctx = ExecContext::sequential().with_cache(&store);
            let q1 = UdfInvoker::with_context(&udf, &table, &ctx);
            drive(&q1, &first);
            prop_assert_eq!(q1.counts().reuse_hits, 0);
        }

        // Mutate: the namespace the next query borrows is brand new.
        table.push_row(vec![Value::Bool(true)]).unwrap();
        let ctx = ExecContext::sequential().with_cache(&store);
        let q2 = UdfInvoker::with_context(&udf, &table, &ctx);
        let warm_answers = drive(&q2, &second);
        let cold = UdfInvoker::new(&udf, &table);
        let cold_answers = drive(&cold, &second);

        prop_assert_eq!(warm_answers, cold_answers);
        let w = q2.counts();
        prop_assert_eq!(w.reuse_hits, 0, "stale answers must not be served");
        prop_assert_eq!(w.evaluated, cold.counts().evaluated, "full freight again");
        // Old + new versions are live (bounded by the recency window).
        prop_assert!(store.num_namespaces() <= expred_exec::MAX_LIVE_VERSIONS);
    }

    #[test]
    fn eviction_preserves_answers_and_the_ledger(
        queries in prop::collection::vec(
            prop::collection::vec((0usize..ROWS, any::<bool>()), 1..60),
            2..6,
        )
    ) {
        // A pathologically small store: constant eviction pressure. Reuse
        // may shrink, but correctness and the ledger must survive.
        let table = labelled_table(ROWS);
        let udf = OracleUdf::new("good");
        let store = CacheStore::with_capacity(1);
        let ctx = ExecContext::sequential().with_cache(&store);

        for requests in &queries {
            let warm = UdfInvoker::with_context(&udf, &table, &ctx);
            let warm_answers = drive(&warm, requests);
            let cold = UdfInvoker::new(&udf, &table);
            let cold_answers = drive(&cold, requests);
            prop_assert_eq!(warm_answers, cold_answers);
            let (w, c) = (warm.counts(), cold.counts());
            prop_assert_eq!(w.evaluated + w.reuse_hits, c.evaluated);
            prop_assert_eq!(w.cache_hits, c.cache_hits);
        }
    }
}
