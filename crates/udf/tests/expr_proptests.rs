//! Property tests for the predicate DSL and the expression optimizer.
//!
//! Three contracts, each over randomly generated expressions:
//!
//! * **Round trip**: `parse(render(e))` under the same registry preserves
//!   the expression's fingerprint, its static cost, and its answers —
//!   the DSL is a faithful wire format for every expression it can name.
//! * **Equivalence**: `optimize_expr` never changes answers, cold (no
//!   observations, 0.5 prior) or warm (exact observed pass rates).
//! * **Bill**: on columns that are *exactly independent by construction*
//!   (mixed-radix digits), the learned ordering of a flat `AND`/`OR`
//!   with equal leaf costs never bills more fresh evaluations than the
//!   static written order — ascending rank is provably optimal there.

use expred_exec::{ExecContext, SelectivityTracker};
use expred_table::{DataType, Field, Schema, Table, Value};
use expred_udf::{
    evaluate_expr_batch_ctx, optimize_expr, parse_predicate, CostTracker, OracleRegistry,
    PredicateExpr,
};
use proptest::prelude::*;

/// Deterministic xorshift64* generator: the shim has no recursive
/// strategy combinators, so expression shapes derive from one seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const COLS: [&str; 4] = ["d0", "d1", "d2", "d3"];

/// 256 rows over four bool columns where column `j` is a function of
/// base-4 digit `j` of the row index: alive-set counts factor *exactly*
/// (true independence in realized counts, not just expectation), with
/// skew set by per-column thresholds in `1..=3` (pass rates 25/50/75%).
fn mixed_radix_table(thresh: &[u64; 4]) -> Table {
    let schema = Schema::new(
        COLS.iter()
            .map(|c| Field::new(*c, DataType::Bool))
            .collect(),
    );
    let rows = (0..256u64)
        .map(|i| {
            (0..4)
                .map(|j| Value::Bool((i >> (2 * j)) & 3 < thresh[j]))
                .collect()
        })
        .collect();
    Table::from_rows(schema, rows).unwrap()
}

fn random_thresholds(rng: &mut Rng) -> [u64; 4] {
    [0; 4].map(|_| 1 + rng.below(3))
}

fn leaf(name: &str, reg: &OracleRegistry) -> PredicateExpr {
    parse_predicate(name, reg).expect("a bare name parses to a named leaf")
}

/// A registry giving each column a distinct finite cost, so round trips
/// must preserve costs too, not just structure.
fn costed_registry(rng: &mut Rng) -> OracleRegistry {
    let mut reg = OracleRegistry::new();
    for col in COLS {
        reg = reg.with_cost(col, [0.5, 1.0, 2.0, 4.0][rng.below(4) as usize]);
    }
    reg
}

/// Random expression over the registry's leaves. `Pred::not` cancels
/// double negation itself, so any generated shape renders to a string
/// that parses back to the identical structure.
fn gen_expr(rng: &mut Rng, reg: &OracleRegistry, depth: u32) -> PredicateExpr {
    let choice = if depth == 0 { 0 } else { rng.below(4) };
    match choice {
        0 => leaf(COLS[rng.below(4) as usize], reg),
        1 => gen_expr(rng, reg, depth - 1).not(),
        op => {
            let mut e = gen_expr(rng, reg, depth - 1);
            for _ in 0..1 + rng.below(2) {
                let child = gen_expr(rng, reg, depth - 1);
                e = if op == 2 { e.and(child) } else { e.or(child) };
            }
            e
        }
    }
}

/// Teaches `tracker` every column's exact pass rate.
fn observe(tracker: &SelectivityTracker, t: &Table, reg: &OracleRegistry) {
    let ctx = ExecContext::sequential().with_selectivity(tracker);
    let rows: Vec<usize> = (0..t.num_rows()).collect();
    for col in COLS {
        evaluate_expr_batch_ctx(&leaf(col, reg), t, &rows, &CostTracker::new(), &ctx).unwrap();
    }
}

fn answers(expr: &PredicateExpr, t: &Table) -> (Vec<bool>, u64) {
    let rows: Vec<usize> = (0..t.num_rows()).collect();
    let costs = CostTracker::new();
    let got = evaluate_expr_batch_ctx(expr, t, &rows, &costs, &ExecContext::sequential()).unwrap();
    (got, costs.snapshot().evaluated)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parse_render_round_trip_preserves_identity_and_answers(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let reg = costed_registry(&mut rng);
        let expr = gen_expr(&mut rng, &reg, 3);

        let rendered = expr.render().expect("registry leaves are all named");
        let reparsed = match parse_predicate(&rendered, &reg) {
            Ok(e) => e,
            Err(e) => panic!("render produced an unparseable string {rendered:?}: {e}"),
        };
        prop_assert_eq!(
            expr.fingerprint(), reparsed.fingerprint(),
            "fingerprint drifted through {:?}", rendered
        );
        prop_assert_eq!(expr.cost(), reparsed.cost(), "costs drifted through {:?}", rendered);
        // Rendering is a fixed point: the reparsed tree prints the same.
        let rerendered = reparsed.render();
        prop_assert_eq!(rerendered.as_deref(), Some(rendered.as_str()));

        let t = mixed_radix_table(&random_thresholds(&mut rng));
        prop_assert_eq!(answers(&expr, &t).0, answers(&reparsed, &t).0);
    }

    #[test]
    fn optimizer_preserves_answers_on_arbitrary_expressions(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let reg = costed_registry(&mut rng);
        let expr = gen_expr(&mut rng, &reg, 3);
        let t = mixed_radix_table(&random_thresholds(&mut rng));
        let baseline = answers(&expr, &t).0;

        // Cold: dedup + factoring + prior-ranked reordering.
        let cold = optimize_expr(&expr, &t, None);
        prop_assert!(cold.is_pinned());
        prop_assert_eq!(&answers(&cold, &t).0, &baseline, "cold rewrite changed answers");

        // Warm: exact observed pass rates drive the ordering.
        let tracker = SelectivityTracker::new();
        observe(&tracker, &t, &reg);
        let warm = optimize_expr(&expr, &t, Some(&tracker));
        prop_assert_eq!(&answers(&warm, &t).0, &baseline, "warm rewrite changed answers");
    }

    #[test]
    fn learned_ordering_never_loses_on_independent_columns(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        // Equal declared costs: the static stage order is the written
        // order, so the learned ordering competes on selectivity alone.
        let reg = OracleRegistry::new();
        let thresh = random_thresholds(&mut rng);
        let t = mixed_radix_table(&thresh);

        // A flat AND (or OR) over a random permutation of 2..=4
        // distinct columns.
        let mut order: Vec<&str> = COLS.to_vec();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i as u64 + 1) as usize);
        }
        order.truncate(2 + rng.below(3) as usize);
        let is_and = rng.below(2) == 0;
        let mut expr = leaf(order[0], &reg);
        for col in &order[1..] {
            let child = leaf(col, &reg);
            expr = if is_and { expr.and(child) } else { expr.or(child) };
        }

        let tracker = SelectivityTracker::new();
        observe(&tracker, &t, &reg);
        let optimized = optimize_expr(&expr, &t, Some(&tracker));

        let (static_answers, static_bill) = answers(&expr, &t);
        let (learned_answers, learned_bill) = answers(&optimized, &t);
        prop_assert_eq!(static_answers, learned_answers);
        prop_assert!(
            learned_bill <= static_bill,
            "learned order billed {} > static {} on {:?} (thresholds {:?}, and={})",
            learned_bill, static_bill, order, thresh, is_and
        );
    }
}
