//! The audited UDF gateway.
//!
//! All algorithm code reaches the UDF through [`UdfInvoker`], never through
//! [`crate::udf::BooleanUdf`] directly. The invoker
//!
//! * charges every retrieval and evaluation to a shared
//!   [`crate::cost::CostTracker`] (so experiment costs include
//!   sampling, exactly as the paper requires: "The cost of sampling tuples
//!   to estimate the selectivity is included in the cost of the
//!   algorithms", §6.2), and
//! * memoizes evaluations per row, implementing the paper's observation
//!   that already-sampled tuples "can be simply returned as part of the
//!   query result without re-evaluating them" (§4.2).

use crate::cost::{CostCounts, CostModel, CostTracker};
use crate::udf::BooleanUdf;
use expred_table::Table;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Counted, memoized access to a UDF over one table.
pub struct UdfInvoker<'a> {
    udf: &'a dyn BooleanUdf,
    table: &'a Table,
    tracker: CostTracker,
    memo: Mutex<HashMap<usize, bool>>,
}

impl<'a> UdfInvoker<'a> {
    /// Creates an invoker with a fresh cost tracker.
    pub fn new(udf: &'a dyn BooleanUdf, table: &'a Table) -> Self {
        Self::with_tracker(udf, table, CostTracker::new())
    }

    /// Creates an invoker charging to an existing tracker (lets a pipeline
    /// aggregate sampling and execution costs in one place).
    pub fn with_tracker(udf: &'a dyn BooleanUdf, table: &'a Table, tracker: CostTracker) -> Self {
        Self {
            udf,
            table,
            tracker,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// The table this invoker answers over.
    pub fn table(&self) -> &Table {
        self.table
    }

    /// Charges `n` tuple retrievals.
    pub fn charge_retrievals(&self, n: u64) {
        self.tracker.add_retrievals(n);
    }

    /// Evaluates the UDF on `row`, charging `o_e` unless this row was
    /// already evaluated (then the memoized answer is returned free).
    ///
    /// Retrieval is charged separately by the caller — the executor decides
    /// whether an evaluation happens on a freshly retrieved tuple.
    pub fn evaluate(&self, row: usize) -> bool {
        if let Some(&answer) = self.memo.lock().get(&row) {
            self.tracker.add_cache_hit();
            return answer;
        }
        let answer = self.udf.evaluate(self.table, row);
        self.tracker.add_evaluation();
        self.memo.lock().insert(row, answer);
        answer
    }

    /// Whether `row` has already been evaluated (a free lookup).
    pub fn is_evaluated(&self, row: usize) -> bool {
        self.memo.lock().contains_key(&row)
    }

    /// The memoized answer for `row`, if it has been evaluated.
    pub fn memoized(&self, row: usize) -> Option<bool> {
        self.memo.lock().get(&row).copied()
    }

    /// Retrieves and evaluates `row` in one step (charges both actions).
    pub fn retrieve_and_evaluate(&self, row: usize) -> bool {
        self.charge_retrievals(1);
        self.evaluate(row)
    }

    /// Current action counts.
    pub fn counts(&self) -> CostCounts {
        self.tracker.snapshot()
    }

    /// Total cost so far under `model`.
    pub fn cost(&self, model: &CostModel) -> f64 {
        self.counts().cost(model)
    }

    /// The shared tracker (for pipelines that stack invokers).
    pub fn tracker(&self) -> &CostTracker {
        &self.tracker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udf::OracleUdf;
    use expred_table::{DataType, Field, Schema, Table, Value};

    fn table_with_labels(labels: &[bool]) -> Table {
        let schema = Schema::new(vec![Field::new("good", DataType::Bool)]);
        let rows = labels.iter().map(|&l| vec![Value::Bool(l)]).collect();
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn evaluations_are_charged_once_per_row() {
        let t = table_with_labels(&[true, false, true]);
        let udf = OracleUdf::new("good");
        let inv = UdfInvoker::new(&udf, &t);
        assert!(inv.evaluate(0));
        assert!(inv.evaluate(0));
        assert!(!inv.evaluate(1));
        let c = inv.counts();
        assert_eq!(c.evaluated, 2, "second call to row 0 must be memoized");
        assert_eq!(c.cache_hits, 1);
    }

    #[test]
    fn retrieve_and_evaluate_charges_both() {
        let t = table_with_labels(&[true]);
        let udf = OracleUdf::new("good");
        let inv = UdfInvoker::new(&udf, &t);
        assert!(inv.retrieve_and_evaluate(0));
        let c = inv.counts();
        assert_eq!(c.retrieved, 1);
        assert_eq!(c.evaluated, 1);
        assert_eq!(inv.cost(&CostModel::PAPER_DEFAULT), 4.0);
    }

    #[test]
    fn memo_queries_are_free() {
        let t = table_with_labels(&[true, false]);
        let udf = OracleUdf::new("good");
        let inv = UdfInvoker::new(&udf, &t);
        assert!(!inv.is_evaluated(0));
        assert_eq!(inv.memoized(0), None);
        inv.evaluate(0);
        assert!(inv.is_evaluated(0));
        assert_eq!(inv.memoized(0), Some(true));
        assert_eq!(inv.counts().evaluated, 1);
    }

    #[test]
    fn shared_tracker_aggregates_across_invokers() {
        let t = table_with_labels(&[true, false]);
        let udf = OracleUdf::new("good");
        let tracker = CostTracker::new();
        let a = UdfInvoker::with_tracker(&udf, &t, tracker.clone());
        let b = UdfInvoker::with_tracker(&udf, &t, tracker.clone());
        a.evaluate(0);
        b.evaluate(1);
        assert_eq!(tracker.snapshot().evaluated, 2);
    }

    #[test]
    fn charge_retrievals_accumulates() {
        let t = table_with_labels(&[true]);
        let udf = OracleUdf::new("good");
        let inv = UdfInvoker::new(&udf, &t);
        inv.charge_retrievals(10);
        inv.charge_retrievals(5);
        assert_eq!(inv.counts().retrieved, 15);
    }
}
