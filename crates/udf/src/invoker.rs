//! The audited UDF gateway.
//!
//! All algorithm code reaches the UDF through [`UdfInvoker`], never through
//! [`crate::udf::BooleanUdf`] directly. The invoker
//!
//! * charges every retrieval and evaluation to a shared
//!   [`crate::cost::CostTracker`] (so experiment costs include
//!   sampling, exactly as the paper requires: "The cost of sampling tuples
//!   to estimate the selectivity is included in the cost of the
//!   algorithms", §6.2), and
//! * memoizes evaluations per row, implementing the paper's observation
//!   that already-sampled tuples "can be simply returned as part of the
//!   query result without re-evaluating them" (§4.2).

use crate::cost::{CostCounts, CostModel, CostTracker};
use crate::udf::BooleanUdf;
use expred_exec::{
    CacheHandle, CacheNamespace, ExecContext, Executor, SelectivityHandle, ShardedMemo,
};
use expred_table::Table;
use std::collections::{HashMap, HashSet};

/// The cross-query cache namespace for `udf` over `table`'s current
/// state, or `None` when the UDF opted out of identity
/// ([`BooleanUdf::fingerprint`]).
pub fn cache_namespace(udf: &dyn BooleanUdf, table: &Table) -> Option<CacheNamespace> {
    udf.fingerprint().map(|id| CacheNamespace {
        udf: id.as_u64(),
        table: table.id().as_u64(),
        version: table.version(),
    })
}

/// Counted, memoized access to a UDF over one table.
///
/// The per-query memo is a lock-striped [`ShardedMemo`], so concurrent
/// executor workers sharing one invoker do not serialize on a single
/// lock, and the cost tracker is atomic, so charges stay exact under
/// parallelism.
///
/// # Cross-query reuse
///
/// Built via [`UdfInvoker::with_context`] against a session's
/// [`expred_exec::CacheStore`], the invoker additionally *borrows* a
/// [`CacheHandle`] scoped to `(udf fingerprint, table id, table
/// version)`. Lookups layer local-memo-first, then the shared store: a
/// shared hit is *promoted* into the local memo (so this query keeps a
/// stable view even if the store later evicts the entry) and charged
/// exactly once as a [`CostCounts::reuse_hits`] — the row's `o_e` was
/// paid by an earlier query, not this one. Fresh evaluations are written
/// through to both layers. Without a context (or for UDFs with no
/// fingerprint) behavior is bit-identical to the pre-session invoker.
///
/// # Cost exactness under concurrent sessions
///
/// Many invokers on many threads may borrow the same store namespace at
/// once (a `Sync` query engine does exactly this). Each invoker still
/// charges every row it demands exactly once — as a fresh `evaluated`, a
/// local `cache_hit`, or a promoted `reuse_hit` — because the local memo
/// is consulted first and is private to the query. Interleavings only
/// shift *which* bucket a row lands in (two queries racing on a
/// session-cold row may both pay `o_e` fresh where a serial ordering
/// would have let the second reuse), never the per-query total
/// [`CostCounts::demanded`]. Answers are unaffected either way: the
/// store is keyed by table version and UDFs are row-deterministic.
pub struct UdfInvoker<'a> {
    udf: &'a dyn BooleanUdf,
    table: &'a Table,
    tracker: CostTracker,
    memo: ShardedMemo<bool>,
    shared: Option<CacheHandle>,
    /// The session's selectivity counters for this namespace, fed with
    /// every *fresh* answer (memo/reuse hits were observed when first
    /// computed). Statistics only — never read on the answer path.
    selectivity: Option<SelectivityHandle>,
}

impl<'a> UdfInvoker<'a> {
    /// Creates an invoker with a fresh cost tracker.
    pub fn new(udf: &'a dyn BooleanUdf, table: &'a Table) -> Self {
        Self::with_tracker(udf, table, CostTracker::new())
    }

    /// Creates an invoker charging to an existing tracker (lets a pipeline
    /// aggregate sampling and execution costs in one place).
    pub fn with_tracker(udf: &'a dyn BooleanUdf, table: &'a Table, tracker: CostTracker) -> Self {
        Self {
            udf,
            table,
            tracker,
            memo: ShardedMemo::new(),
            shared: None,
            selectivity: None,
        }
    }

    /// Creates an invoker for one query of a session: if the context
    /// carries a cache store and the UDF has a stable fingerprint, a
    /// [`CacheHandle`] is borrowed so answers outlive this query.
    pub fn with_context(udf: &'a dyn BooleanUdf, table: &'a Table, ctx: &ExecContext<'_>) -> Self {
        Self::with_tracker_and_context(udf, table, CostTracker::new(), ctx)
    }

    /// [`UdfInvoker::with_context`] charging to an existing tracker.
    pub fn with_tracker_and_context(
        udf: &'a dyn BooleanUdf,
        table: &'a Table,
        tracker: CostTracker,
        ctx: &ExecContext<'_>,
    ) -> Self {
        let ns = cache_namespace(udf, table);
        let shared = ctx.cache.zip(ns).map(|(store, ns)| store.handle(ns));
        let selectivity = ctx
            .selectivity
            .zip(ns)
            .map(|(tracker, ns)| tracker.handle(ns));
        Self {
            udf,
            table,
            tracker,
            memo: ShardedMemo::new(),
            shared,
            selectivity,
        }
    }

    /// The table this invoker answers over.
    pub fn table(&self) -> &Table {
        self.table
    }

    /// Whether this invoker shares a cross-query cache namespace.
    pub fn is_session_cached(&self) -> bool {
        self.shared.is_some()
    }

    /// Shared-store lookup with promotion: copies a hit into the local
    /// memo and charges it (once per row) as a cross-query reuse.
    fn reuse_from_shared(&self, row: usize) -> Option<bool> {
        let answer = self.shared.as_ref()?.get(row)?;
        self.memo.insert(row, answer);
        self.tracker.add_reuse_hit();
        Some(answer)
    }

    /// Writes a freshly evaluated answer through both cache layers.
    fn commit(&self, row: usize, answer: bool) {
        self.memo.insert(row, answer);
        if let Some(shared) = &self.shared {
            shared.insert(row, answer);
        }
    }

    /// Charges `n` tuple retrievals.
    pub fn charge_retrievals(&self, n: u64) {
        self.tracker.add_retrievals(n);
    }

    /// Evaluates the UDF on `row`, charging `o_e` unless this row was
    /// already evaluated (then the memoized answer is returned free).
    ///
    /// Retrieval is charged separately by the caller — the executor decides
    /// whether an evaluation happens on a freshly retrieved tuple.
    pub fn evaluate(&self, row: usize) -> bool {
        if let Some(answer) = self.memo.get(row) {
            self.tracker.add_cache_hit();
            return answer;
        }
        if let Some(answer) = self.reuse_from_shared(row) {
            return answer;
        }
        let answer = self.udf.evaluate(self.table, row);
        self.tracker.add_evaluation();
        if let Some(sel) = &self.selectivity {
            sel.record(answer);
        }
        self.commit(row, answer);
        answer
    }

    /// Evaluates the UDF on every row of `rows` through `executor`,
    /// returning answers in input order.
    ///
    /// Memoized rows are answered from the cache (charged as hits); the
    /// remaining rows are deduplicated, evaluated in one batch (charging
    /// exactly one `o_e` each — duplicates beyond the first occurrence
    /// count as cache hits, matching a sequential evaluation loop), and
    /// memoized. With the [`expred_exec::Sequential`] backend this is
    /// action-for-action identical to calling [`UdfInvoker::evaluate`] in
    /// a loop.
    ///
    /// Session-cached invokers probe the shared store *batched*: every
    /// distinct not-yet-memoized row goes through one
    /// [`CacheHandle::get_many`] call — one read-lock acquisition per
    /// touched store shard — instead of a per-row lock round-trip. The
    /// prefetch touches exactly the keys a per-row walk would have (each
    /// distinct memo-miss row is probed once; duplicates resolve against
    /// the promoted memo or the fresh-slot table), so reuse accounting
    /// and store hit/miss statistics are unchanged to the action.
    pub fn evaluate_batch(&self, executor: &dyn Executor, rows: &[usize]) -> Vec<bool> {
        let mut answers = vec![false; rows.len()];
        let mut fresh: Vec<usize> = Vec::new();
        // Slot index in `fresh` for every distinct fresh row.
        let mut fresh_slot: HashMap<usize, usize> = HashMap::new();
        // (position in `answers`, slot in `fresh`) to fill after the batch.
        let mut fills: Vec<(usize, usize)> = Vec::new();
        let mut hits = 0u64;
        // Batched shared-store probe: collect each distinct row the local
        // memo cannot answer, look them all up in one call, and serve the
        // main walk from the prefetched map. The walk below then promotes
        // a prefetched hit the first time it is used, exactly where the
        // per-row path would have probed the store.
        let prefetched: HashMap<usize, bool> = match &self.shared {
            Some(shared) => {
                let mut candidates: Vec<usize> = Vec::new();
                let mut seen: HashSet<usize> = HashSet::new();
                for &row in rows {
                    if self.memo.get(row).is_none() && seen.insert(row) {
                        candidates.push(row);
                    }
                }
                candidates
                    .iter()
                    .zip(shared.get_many(&candidates))
                    .filter_map(|(&row, answer)| answer.map(|a| (row, a)))
                    .collect()
            }
            None => HashMap::new(),
        };
        for (i, &row) in rows.iter().enumerate() {
            if let Some(answer) = self.memo.get(row) {
                answers[i] = answer;
                hits += 1;
            } else if let Some(&answer) = prefetched.get(&row) {
                // Paid for by an earlier query; promote into the local
                // memo (charged once as a reuse) so any later occurrence
                // in this batch is a plain memo hit.
                self.memo.insert(row, answer);
                self.tracker.add_reuse_hit();
                answers[i] = answer;
            } else if let Some(&slot) = fresh_slot.get(&row) {
                // Duplicate within the batch: evaluated once, re-read free.
                fills.push((i, slot));
                hits += 1;
            } else {
                let slot = fresh.len();
                fresh.push(row);
                fresh_slot.insert(row, slot);
                fills.push((i, slot));
            }
        }
        self.tracker.add_cache_hits(hits);
        if !fresh.is_empty() {
            let probe = |row: usize| self.udf.evaluate(self.table, row);
            let fresh_answers = executor.evaluate_batch(&probe, &fresh);
            self.tracker.add_evaluations(fresh.len() as u64);
            if let Some(sel) = &self.selectivity {
                let passes = fresh_answers.iter().filter(|&&a| a).count() as u64;
                sel.record_many(passes, fresh.len() as u64);
            }
            for (&row, &answer) in fresh.iter().zip(&fresh_answers) {
                self.commit(row, answer);
            }
            for (position, slot) in fills {
                answers[position] = fresh_answers[slot];
            }
        }
        answers
    }

    /// Whether `row`'s answer is already known — to this query's memo or
    /// to the session cache. A free lookup cost-wise; a session-cache hit
    /// is promoted (and counted once as a reuse) so the answer stays
    /// available for the rest of the query even under store eviction.
    pub fn is_evaluated(&self, row: usize) -> bool {
        self.memoized(row).is_some()
    }

    /// The known answer for `row`, if this query or an earlier one in the
    /// session evaluated it (session hits promote, as above).
    pub fn memoized(&self, row: usize) -> Option<bool> {
        self.memo.get(row).or_else(|| self.reuse_from_shared(row))
    }

    /// Retrieves and evaluates `row` in one step (charges both actions).
    pub fn retrieve_and_evaluate(&self, row: usize) -> bool {
        self.charge_retrievals(1);
        self.evaluate(row)
    }

    /// Retrieves and evaluates every row of `rows` through `executor`
    /// (charges one retrieval per row plus the batch's evaluations).
    pub fn retrieve_and_evaluate_batch(
        &self,
        executor: &dyn Executor,
        rows: &[usize],
    ) -> Vec<bool> {
        self.charge_retrievals(rows.len() as u64);
        self.evaluate_batch(executor, rows)
    }

    /// Current action counts.
    pub fn counts(&self) -> CostCounts {
        self.tracker.snapshot()
    }

    /// Total cost so far under `model`.
    pub fn cost(&self, model: &CostModel) -> f64 {
        self.counts().cost(model)
    }

    /// The shared tracker (for pipelines that stack invokers).
    pub fn tracker(&self) -> &CostTracker {
        &self.tracker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udf::OracleUdf;
    use expred_table::{DataType, Field, Schema, Table, Value};

    fn table_with_labels(labels: &[bool]) -> Table {
        let schema = Schema::new(vec![Field::new("good", DataType::Bool)]);
        let rows = labels.iter().map(|&l| vec![Value::Bool(l)]).collect();
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn evaluations_are_charged_once_per_row() {
        let t = table_with_labels(&[true, false, true]);
        let udf = OracleUdf::new("good");
        let inv = UdfInvoker::new(&udf, &t);
        assert!(inv.evaluate(0));
        assert!(inv.evaluate(0));
        assert!(!inv.evaluate(1));
        let c = inv.counts();
        assert_eq!(c.evaluated, 2, "second call to row 0 must be memoized");
        assert_eq!(c.cache_hits, 1);
    }

    #[test]
    fn retrieve_and_evaluate_charges_both() {
        let t = table_with_labels(&[true]);
        let udf = OracleUdf::new("good");
        let inv = UdfInvoker::new(&udf, &t);
        assert!(inv.retrieve_and_evaluate(0));
        let c = inv.counts();
        assert_eq!(c.retrieved, 1);
        assert_eq!(c.evaluated, 1);
        assert_eq!(inv.cost(&CostModel::PAPER_DEFAULT), 4.0);
    }

    #[test]
    fn memo_queries_are_free() {
        let t = table_with_labels(&[true, false]);
        let udf = OracleUdf::new("good");
        let inv = UdfInvoker::new(&udf, &t);
        assert!(!inv.is_evaluated(0));
        assert_eq!(inv.memoized(0), None);
        inv.evaluate(0);
        assert!(inv.is_evaluated(0));
        assert_eq!(inv.memoized(0), Some(true));
        assert_eq!(inv.counts().evaluated, 1);
    }

    #[test]
    fn shared_tracker_aggregates_across_invokers() {
        let t = table_with_labels(&[true, false]);
        let udf = OracleUdf::new("good");
        let tracker = CostTracker::new();
        let a = UdfInvoker::with_tracker(&udf, &t, tracker.clone());
        let b = UdfInvoker::with_tracker(&udf, &t, tracker.clone());
        a.evaluate(0);
        b.evaluate(1);
        assert_eq!(tracker.snapshot().evaluated, 2);
    }

    #[test]
    fn batch_matches_sequential_loop_action_for_action() {
        let labels: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let t = table_with_labels(&labels);
        let udf = OracleUdf::new("good");
        let rows: Vec<usize> = (0..64).rev().collect();

        let loop_inv = UdfInvoker::new(&udf, &t);
        let loop_answers: Vec<bool> = rows.iter().map(|&r| loop_inv.evaluate(r)).collect();

        for executor in [
            &expred_exec::Sequential as &dyn Executor,
            &expred_exec::Parallel::with_threads(4),
        ] {
            let batch_inv = UdfInvoker::new(&udf, &t);
            let batch_answers = batch_inv.evaluate_batch(executor, &rows);
            assert_eq!(batch_answers, loop_answers);
            assert_eq!(batch_inv.counts(), loop_inv.counts());
        }
    }

    #[test]
    fn batch_reuses_memo_and_charges_hits() {
        let t = table_with_labels(&[true, false, true, false]);
        let udf = OracleUdf::new("good");
        let inv = UdfInvoker::new(&udf, &t);
        inv.evaluate(0);
        inv.evaluate(1);
        let answers = inv.evaluate_batch(&expred_exec::Sequential, &[0, 1, 2, 3]);
        assert_eq!(answers, vec![true, false, true, false]);
        let c = inv.counts();
        assert_eq!(c.evaluated, 4, "rows 2 and 3 are the only new calls");
        assert_eq!(c.cache_hits, 2);
    }

    #[test]
    fn batch_duplicates_charge_once() {
        let t = table_with_labels(&[true, false]);
        let udf = OracleUdf::new("good");
        let inv = UdfInvoker::new(&udf, &t);
        let answers = inv.evaluate_batch(&expred_exec::Sequential, &[1, 0, 1, 1]);
        assert_eq!(answers, vec![false, true, false, false]);
        let c = inv.counts();
        assert_eq!(c.evaluated, 2);
        assert_eq!(c.cache_hits, 2, "repeat occurrences are free re-reads");
    }

    #[test]
    fn retrieve_and_evaluate_batch_charges_both() {
        let t = table_with_labels(&[true, false, true]);
        let udf = OracleUdf::new("good");
        let inv = UdfInvoker::new(&udf, &t);
        let answers = inv.retrieve_and_evaluate_batch(&expred_exec::Sequential, &[0, 1, 2]);
        assert_eq!(answers, vec![true, false, true]);
        let c = inv.counts();
        assert_eq!(c.retrieved, 3);
        assert_eq!(c.evaluated, 3);
        assert_eq!(inv.cost(&CostModel::PAPER_DEFAULT), 3.0 + 9.0);
    }

    #[test]
    fn context_without_store_matches_plain_invoker() {
        let t = table_with_labels(&[true, false, true]);
        let udf = OracleUdf::new("good");
        let ctx = expred_exec::ExecContext::sequential();
        let inv = UdfInvoker::with_context(&udf, &t, &ctx);
        assert!(!inv.is_session_cached());
        inv.evaluate(0);
        inv.evaluate(0);
        let c = inv.counts();
        assert_eq!((c.evaluated, c.cache_hits, c.reuse_hits), (1, 1, 0));
    }

    #[test]
    fn second_query_reuses_the_sessions_answers() {
        let t = table_with_labels(&[true, false, true, false]);
        let udf = OracleUdf::new("good");
        let store = expred_exec::CacheStore::new();
        let ctx = expred_exec::ExecContext::sequential().with_cache(&store);

        let q1 = UdfInvoker::with_context(&udf, &t, &ctx);
        assert!(q1.is_session_cached());
        q1.evaluate_batch(&expred_exec::Sequential, &[0, 1, 2]);
        assert_eq!(q1.counts().evaluated, 3);
        assert_eq!(q1.counts().reuse_hits, 0, "a cold session has no reuse");

        let q2 = UdfInvoker::with_context(&udf, &t, &ctx);
        let answers = q2.evaluate_batch(&expred_exec::Sequential, &[0, 1, 2, 3, 0]);
        assert_eq!(answers, vec![true, false, true, false, true]);
        let c = q2.counts();
        assert_eq!(c.evaluated, 1, "only row 3 is new to the session");
        assert_eq!(c.reuse_hits, 3, "rows 0-2 were paid for by query 1");
        assert_eq!(c.cache_hits, 1, "the repeated row 0 is a plain memo hit");
        assert_eq!(c.demanded(), 5);
    }

    #[test]
    fn batched_store_probe_matches_per_row_path_action_for_action() {
        // The batch path prefetches the shared store via get_many; the
        // per-row path (`evaluate` in a loop) takes a lock per row. Both
        // must produce identical answers, identical invoker bills, and
        // identical store hit/miss statistics.
        let labels: Vec<bool> = (0..96).map(|i| i % 5 < 2).collect();
        let t = table_with_labels(&labels);
        let udf = OracleUdf::new("good");
        // Duplicate-heavy request over a half-warmed session.
        let warm: Vec<usize> = (0..48).collect();
        let request: Vec<usize> = (0..96).chain(24..72).chain(0..8).rev().collect();

        let run = |batched: bool| {
            let store = expred_exec::CacheStore::new();
            let ctx = expred_exec::ExecContext::sequential().with_cache(&store);
            UdfInvoker::with_context(&udf, &t, &ctx)
                .evaluate_batch(&expred_exec::Sequential, &warm);
            let warm_stats = store.stats();
            let inv = UdfInvoker::with_context(&udf, &t, &ctx);
            let answers = if batched {
                inv.evaluate_batch(&expred_exec::Sequential, &request)
            } else {
                request.iter().map(|&r| inv.evaluate(r)).collect()
            };
            let stats = store.stats();
            (
                answers,
                inv.counts(),
                stats.hits - warm_stats.hits,
                stats.misses - warm_stats.misses,
            )
        };
        let (batch_answers, batch_counts, batch_hits, batch_misses) = run(true);
        let (loop_answers, loop_counts, loop_hits, loop_misses) = run(false);
        assert_eq!(batch_answers, loop_answers);
        assert_eq!(batch_counts, loop_counts, "invoker bills must match");
        assert_eq!(batch_hits, loop_hits, "store hits must match");
        assert_eq!(batch_misses, loop_misses, "store misses must match");
        assert!(batch_counts.reuse_hits > 0, "the warm rows must be reused");
    }

    #[test]
    fn memoized_promotes_session_answers_once() {
        let t = table_with_labels(&[true, false]);
        let udf = OracleUdf::new("good");
        let store = expred_exec::CacheStore::new();
        let ctx = expred_exec::ExecContext::sequential().with_cache(&store);
        UdfInvoker::with_context(&udf, &t, &ctx).evaluate(0);

        let q2 = UdfInvoker::with_context(&udf, &t, &ctx);
        assert!(q2.is_evaluated(0));
        assert_eq!(q2.memoized(0), Some(true));
        assert!(q2.evaluate(0));
        let c = q2.counts();
        assert_eq!(c.reuse_hits, 1, "promotion charges exactly once");
        assert_eq!(c.evaluated, 0);
        assert_eq!(c.cache_hits, 1, "post-promotion reads are memo hits");
        assert!(!q2.is_evaluated(1), "unknown rows stay unknown");
    }

    #[test]
    fn distinct_udfs_and_tables_do_not_share() {
        let t = table_with_labels(&[true, false]);
        let other_table = table_with_labels(&[true, false]);
        let udf = OracleUdf::new("good");
        let store = expred_exec::CacheStore::new();
        let ctx = expred_exec::ExecContext::sequential().with_cache(&store);
        UdfInvoker::with_context(&udf, &t, &ctx).evaluate(0);

        // Same content, different table instance: no sharing.
        let cross = UdfInvoker::with_context(&udf, &other_table, &ctx);
        cross.evaluate(0);
        assert_eq!(cross.counts().evaluated, 1);
        assert_eq!(cross.counts().reuse_hits, 0);
    }

    #[test]
    fn table_mutation_invalidates_session_answers() {
        let mut t = table_with_labels(&[true, false]);
        let udf = OracleUdf::new("good");
        let store = expred_exec::CacheStore::new();
        {
            let ctx = expred_exec::ExecContext::sequential().with_cache(&store);
            let q1 = UdfInvoker::with_context(&udf, &t, &ctx);
            q1.evaluate(0);
            q1.evaluate(1);
        }
        t.push_row(vec![Value::Bool(true)]).unwrap();
        let ctx = expred_exec::ExecContext::sequential().with_cache(&store);
        let q2 = UdfInvoker::with_context(&udf, &t, &ctx);
        q2.evaluate(0);
        let c = q2.counts();
        assert_eq!(c.evaluated, 1, "stale version must not serve answers");
        assert_eq!(c.reuse_hits, 0);
        // The old version stays live until MAX_LIVE_VERSIONS newer ones
        // supersede it (diverged clones may still be using it).
        assert_eq!(store.num_namespaces(), 2);
    }

    #[test]
    fn concurrent_session_invokers_charge_each_demanded_row_exactly_once() {
        // 8 threads, one store, one invoker per thread over the same
        // namespace: whatever the interleaving, every thread's bill must
        // satisfy evaluated + cache_hits + reuse_hits == demands, and
        // answers must match the oracle.
        let labels: Vec<bool> = (0..256).map(|i| i % 3 == 0).collect();
        let t = table_with_labels(&labels);
        let udf = OracleUdf::new("good");
        let store = expred_exec::CacheStore::new();
        let rows: Vec<usize> = (0..256).collect();
        std::thread::scope(|scope| {
            for worker in 0..8usize {
                let (store, udf, t, rows, labels) = (&store, &udf, &t, &rows, &labels);
                scope.spawn(move || {
                    let ctx = expred_exec::ExecContext::sequential().with_cache(store);
                    let inv = UdfInvoker::with_context(udf, t, &ctx);
                    // Offset start so threads race on different fronts.
                    let mut order = rows.clone();
                    order.rotate_left(worker * 32);
                    let answers = inv.evaluate_batch(&expred_exec::Sequential, &order);
                    for (&row, &answer) in order.iter().zip(&answers) {
                        assert_eq!(answer, labels[row], "wrong answer for row {row}");
                    }
                    assert_eq!(inv.counts().demanded(), order.len() as u64);
                });
            }
        });
    }

    #[test]
    fn selectivity_observes_fresh_evaluations_only() {
        let t = table_with_labels(&[true, true, true, false]);
        let udf = OracleUdf::new("good");
        let store = expred_exec::CacheStore::new();
        let sel = expred_exec::SelectivityTracker::new();
        let ns = cache_namespace(&udf, &t).expect("oracle has identity");
        let ctx = expred_exec::ExecContext::sequential()
            .with_cache(&store)
            .with_selectivity(&sel);

        let q1 = UdfInvoker::with_context(&udf, &t, &ctx);
        q1.evaluate_batch(&expred_exec::Sequential, &[0, 1, 2, 3]);
        assert_eq!(sel.pass_rate(ns), Some(0.75));

        // A second query reuses every answer: nothing fresh, nothing
        // recorded — reuse would double-count the same rows.
        let q2 = UdfInvoker::with_context(&udf, &t, &ctx);
        q2.evaluate_batch(&expred_exec::Sequential, &[0, 1, 2, 3]);
        assert_eq!(q2.counts().evaluated, 0);
        assert_eq!(sel.handle(ns).observations(), 4);
        assert_eq!(sel.pass_rate(ns), Some(0.75));

        // The per-row path records fresh answers too.
        let sel2 = expred_exec::SelectivityTracker::new();
        let ctx2 = expred_exec::ExecContext::sequential().with_selectivity(&sel2);
        let inv = UdfInvoker::with_context(&udf, &t, &ctx2);
        inv.evaluate(3);
        inv.evaluate(3); // memo hit: not re-observed
        assert_eq!(sel2.pass_rate(ns), Some(0.0));
        assert_eq!(sel2.handle(ns).observations(), 1);
    }

    #[test]
    fn charge_retrievals_accumulates() {
        let t = table_with_labels(&[true]);
        let udf = OracleUdf::new("good");
        let inv = UdfInvoker::new(&udf, &t);
        inv.charge_retrievals(10);
        inv.charge_retrievals(5);
        assert_eq!(inv.counts().retrieved, 15);
    }
}
