//! The paper's cost model and the audited cost tracker.
//!
//! Every tuple *retrieved* costs `o_r` and every tuple *evaluated* (a UDF
//! invocation) costs `o_e`; discards are free (paper §2). The experiments
//! use `o_e = 3, o_r = 1` ("evaluating the UDF is a factor of three more
//! expensive than retrieving the tuple", §6.1).

use parking_lot::Mutex;
use std::sync::Arc;

/// Per-action costs `(o_r, o_e)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost `o_r` of retrieving one tuple from storage.
    pub retrieve: f64,
    /// Cost `o_e` of one UDF evaluation.
    pub evaluate: f64,
}

impl CostModel {
    /// The paper's default experimental cost model: `o_r = 1, o_e = 3`.
    pub const PAPER_DEFAULT: CostModel = CostModel {
        retrieve: 1.0,
        evaluate: 3.0,
    };

    /// Creates a cost model; both costs must be nonnegative.
    pub fn new(retrieve: f64, evaluate: f64) -> Self {
        assert!(retrieve >= 0.0 && evaluate >= 0.0, "costs must be >= 0");
        Self { retrieve, evaluate }
    }

    /// Total cost for the given action counts.
    pub fn total(&self, retrieved: u64, evaluated: u64) -> f64 {
        self.retrieve * retrieved as f64 + self.evaluate * evaluated as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::PAPER_DEFAULT
    }
}

/// A snapshot of accumulated action counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostCounts {
    /// Tuples retrieved from storage.
    pub retrieved: u64,
    /// UDF evaluations actually performed (cache misses).
    pub evaluated: u64,
    /// Evaluations answered from the memo without invoking the UDF.
    pub cache_hits: u64,
}

impl CostCounts {
    /// Total monetary/latency cost under `model`. Cache hits are free: a
    /// memoized answer does not re-invoke the external service.
    pub fn cost(&self, model: &CostModel) -> f64 {
        model.total(self.retrieved, self.evaluated)
    }
}

/// Thread-safe accumulator of retrieval/evaluation counts.
///
/// Cloning shares the underlying counters, so a tracker can be handed to
/// several pipeline stages and still report one total.
#[derive(Debug, Clone, Default)]
pub struct CostTracker {
    counts: Arc<Mutex<CostCounts>>,
}

impl CostTracker {
    /// A fresh tracker with zero counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` tuple retrievals.
    pub fn add_retrievals(&self, n: u64) {
        self.counts.lock().retrieved += n;
    }

    /// Records one UDF evaluation.
    pub fn add_evaluation(&self) {
        self.counts.lock().evaluated += 1;
    }

    /// Records one memoized evaluation (no external call).
    pub fn add_cache_hit(&self) {
        self.counts.lock().cache_hits += 1;
    }

    /// Current counts.
    pub fn snapshot(&self) -> CostCounts {
        *self.counts.lock()
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        *self.counts.lock() = CostCounts::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_costs() {
        let m = CostModel::default();
        assert_eq!(m.retrieve, 1.0);
        assert_eq!(m.evaluate, 3.0);
        assert_eq!(m.total(10, 5), 25.0);
    }

    #[test]
    fn tracker_accumulates() {
        let t = CostTracker::new();
        t.add_retrievals(4);
        t.add_evaluation();
        t.add_evaluation();
        t.add_cache_hit();
        let c = t.snapshot();
        assert_eq!(c.retrieved, 4);
        assert_eq!(c.evaluated, 2);
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.cost(&CostModel::PAPER_DEFAULT), 4.0 + 6.0);
    }

    #[test]
    fn clones_share_counters() {
        let t = CostTracker::new();
        let t2 = t.clone();
        t2.add_retrievals(3);
        assert_eq!(t.snapshot().retrieved, 3);
    }

    #[test]
    fn reset_zeroes() {
        let t = CostTracker::new();
        t.add_retrievals(9);
        t.reset();
        assert_eq!(t.snapshot(), CostCounts::default());
    }

    #[test]
    fn cache_hits_are_free() {
        let c = CostCounts {
            retrieved: 0,
            evaluated: 0,
            cache_hits: 100,
        };
        assert_eq!(c.cost(&CostModel::PAPER_DEFAULT), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_costs_rejected() {
        CostModel::new(-1.0, 1.0);
    }
}
