//! The paper's cost model and the audited cost tracker.
//!
//! Every tuple *retrieved* costs `o_r` and every tuple *evaluated* (a UDF
//! invocation) costs `o_e`; discards are free (paper §2). The experiments
//! use `o_e = 3, o_r = 1` ("evaluating the UDF is a factor of three more
//! expensive than retrieving the tuple", §6.1).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-action costs `(o_r, o_e)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost `o_r` of retrieving one tuple from storage.
    pub retrieve: f64,
    /// Cost `o_e` of one UDF evaluation.
    pub evaluate: f64,
}

impl CostModel {
    /// The paper's default experimental cost model: `o_r = 1, o_e = 3`.
    pub const PAPER_DEFAULT: CostModel = CostModel {
        retrieve: 1.0,
        evaluate: 3.0,
    };

    /// Creates a cost model; both costs must be nonnegative.
    pub fn new(retrieve: f64, evaluate: f64) -> Self {
        assert!(retrieve >= 0.0 && evaluate >= 0.0, "costs must be >= 0");
        Self { retrieve, evaluate }
    }

    /// Total cost for the given action counts.
    pub fn total(&self, retrieved: u64, evaluated: u64) -> f64 {
        self.retrieve * retrieved as f64 + self.evaluate * evaluated as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::PAPER_DEFAULT
    }
}

/// A snapshot of accumulated action counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostCounts {
    /// Tuples retrieved from storage.
    pub retrieved: u64,
    /// UDF evaluations actually performed (fresh external calls).
    pub evaluated: u64,
    /// Evaluations answered from this query's own memo without invoking
    /// the UDF.
    pub cache_hits: u64,
    /// Evaluations answered from the *cross-query* cache: rows some
    /// earlier query in the session already paid `o_e` for. Counted once
    /// per row and query (subsequent re-reads are `cache_hits`).
    pub reuse_hits: u64,
    /// Extra wire attempts a remote backend made after a timeout or
    /// transport failure. A ledger, not a bill: a retried probe still
    /// charges `o_e` exactly once (under `evaluated`) — this counts the
    /// re-sends so fault-handling overhead is auditable.
    pub retries: u64,
    /// Speculative duplicate requests a remote backend launched to cut
    /// tail latency (first answer wins). Like `retries`, a ledger only:
    /// a hedged probe bills `o_e` once no matter which copy answered.
    pub hedges: u64,
}

impl CostCounts {
    /// Total monetary/latency cost under `model`. Cache and reuse hits
    /// are free: a cached answer does not re-invoke the external service.
    pub fn cost(&self, model: &CostModel) -> f64 {
        model.total(self.retrieved, self.evaluated)
    }

    /// Evaluation *demand*: how many `o_e` charges a cache-less run of
    /// the same request stream would have paid. (Pipelines that *branch*
    /// on cached knowledge — e.g. sampling that counts session-known
    /// rows toward its target — reduce their stream itself, so their
    /// demand is not comparable across warm and cold runs.)
    pub fn demanded(&self) -> u64 {
        self.evaluated + self.cache_hits + self.reuse_hits
    }

    /// `(name, value)` pairs for metrics export, in stable order — the
    /// same `fields()` snapshot pattern the engine/cache/memo stats use.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("retrieved", self.retrieved),
            ("evaluated", self.evaluated),
            ("cache_hits", self.cache_hits),
            ("reuse_hits", self.reuse_hits),
            ("retries", self.retries),
            ("hedges", self.hedges),
        ]
    }
}

impl fmt::Display for CostCounts {
    /// Breaks the bill out so the reuse win is visible at a glance:
    /// `retrieved 120 | fresh evals 75 | memo hits 30 | cross-query reuse 15`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retrieved {} | fresh evals {} | memo hits {} | cross-query reuse {}",
            self.retrieved, self.evaluated, self.cache_hits, self.reuse_hits
        )?;
        // Wire-level fault handling is worth a line only when it
        // happened; local backends keep the familiar four-part bill.
        if self.retries != 0 || self.hedges != 0 {
            write!(
                f,
                " | wire retries {} | hedges {}",
                self.retries, self.hedges
            )?;
        }
        Ok(())
    }
}

/// Thread-safe accumulator of retrieval/evaluation counts.
///
/// Cloning shares the underlying counters, so a tracker can be handed to
/// several pipeline stages and still report one total. Counters are
/// individual atomics rather than one mutex-guarded struct, so parallel
/// executor workers charging concurrently never serialize on a lock and
/// every increment lands exactly once; a [`CostTracker::snapshot`] taken
/// while workers are mid-batch may mix counters from slightly different
/// instants, but quiescent totals are exact.
#[derive(Debug, Clone, Default)]
pub struct CostTracker {
    counts: Arc<AtomicCounts>,
}

#[derive(Debug, Default)]
struct AtomicCounts {
    retrieved: AtomicU64,
    evaluated: AtomicU64,
    cache_hits: AtomicU64,
    reuse_hits: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
}

impl CostTracker {
    /// A fresh tracker with zero counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` tuple retrievals.
    pub fn add_retrievals(&self, n: u64) {
        self.counts.retrieved.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one UDF evaluation.
    pub fn add_evaluation(&self) {
        self.add_evaluations(1);
    }

    /// Records `n` UDF evaluations (one batch charge for a drained batch).
    pub fn add_evaluations(&self, n: u64) {
        self.counts.evaluated.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one memoized evaluation (no external call).
    pub fn add_cache_hit(&self) {
        self.add_cache_hits(1);
    }

    /// Records `n` memoized evaluations.
    pub fn add_cache_hits(&self, n: u64) {
        self.counts.cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one evaluation answered from the cross-query cache.
    pub fn add_reuse_hit(&self) {
        self.add_reuse_hits(1);
    }

    /// Records `n` evaluations answered from the cross-query cache.
    pub fn add_reuse_hits(&self, n: u64) {
        self.counts.reuse_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` wire-level retry attempts (ledger only — the retried
    /// probes' `o_e` is still charged exactly once via `add_evaluations`).
    pub fn add_retries(&self, n: u64) {
        self.counts.retries.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` hedged (speculative duplicate) wire requests (ledger
    /// only — a hedged probe bills once no matter which copy answered).
    pub fn add_hedges(&self, n: u64) {
        self.counts.hedges.fetch_add(n, Ordering::Relaxed);
    }

    /// Current counts.
    pub fn snapshot(&self) -> CostCounts {
        CostCounts {
            retrieved: self.counts.retrieved.load(Ordering::Relaxed),
            evaluated: self.counts.evaluated.load(Ordering::Relaxed),
            cache_hits: self.counts.cache_hits.load(Ordering::Relaxed),
            reuse_hits: self.counts.reuse_hits.load(Ordering::Relaxed),
            retries: self.counts.retries.load(Ordering::Relaxed),
            hedges: self.counts.hedges.load(Ordering::Relaxed),
        }
    }

    /// Adds another snapshot's counts onto this tracker (session-level
    /// aggregation over per-query trackers).
    pub fn absorb(&self, counts: &CostCounts) {
        self.add_retrievals(counts.retrieved);
        self.add_evaluations(counts.evaluated);
        self.add_cache_hits(counts.cache_hits);
        self.add_reuse_hits(counts.reuse_hits);
        self.add_retries(counts.retries);
        self.add_hedges(counts.hedges);
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.counts.retrieved.store(0, Ordering::Relaxed);
        self.counts.evaluated.store(0, Ordering::Relaxed);
        self.counts.cache_hits.store(0, Ordering::Relaxed);
        self.counts.reuse_hits.store(0, Ordering::Relaxed);
        self.counts.retries.store(0, Ordering::Relaxed);
        self.counts.hedges.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_costs() {
        let m = CostModel::default();
        assert_eq!(m.retrieve, 1.0);
        assert_eq!(m.evaluate, 3.0);
        assert_eq!(m.total(10, 5), 25.0);
    }

    #[test]
    fn tracker_accumulates() {
        let t = CostTracker::new();
        t.add_retrievals(4);
        t.add_evaluation();
        t.add_evaluation();
        t.add_cache_hit();
        let c = t.snapshot();
        assert_eq!(c.retrieved, 4);
        assert_eq!(c.evaluated, 2);
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.cost(&CostModel::PAPER_DEFAULT), 4.0 + 6.0);
    }

    #[test]
    fn clones_share_counters() {
        let t = CostTracker::new();
        let t2 = t.clone();
        t2.add_retrievals(3);
        assert_eq!(t.snapshot().retrieved, 3);
    }

    #[test]
    fn reset_zeroes() {
        let t = CostTracker::new();
        t.add_retrievals(9);
        t.reset();
        assert_eq!(t.snapshot(), CostCounts::default());
    }

    #[test]
    fn cache_hits_are_free() {
        let c = CostCounts {
            retrieved: 0,
            evaluated: 0,
            cache_hits: 100,
            reuse_hits: 40,
            ..CostCounts::default()
        };
        assert_eq!(c.cost(&CostModel::PAPER_DEFAULT), 0.0);
        assert_eq!(c.demanded(), 140);
    }

    #[test]
    fn display_breaks_out_the_bill() {
        let c = CostCounts {
            retrieved: 120,
            evaluated: 75,
            cache_hits: 30,
            reuse_hits: 15,
            ..CostCounts::default()
        };
        assert_eq!(
            c.to_string(),
            "retrieved 120 | fresh evals 75 | memo hits 30 | cross-query reuse 15"
        );
        let remote = CostCounts {
            retries: 4,
            hedges: 2,
            ..c
        };
        assert_eq!(
            remote.to_string(),
            "retrieved 120 | fresh evals 75 | memo hits 30 | cross-query reuse 15 \
             | wire retries 4 | hedges 2"
        );
    }

    #[test]
    fn absorb_aggregates_snapshots() {
        let session = CostTracker::new();
        let q1 = CostCounts {
            retrieved: 10,
            evaluated: 5,
            cache_hits: 2,
            reuse_hits: 0,
            retries: 3,
            hedges: 1,
        };
        let q2 = CostCounts {
            retrieved: 4,
            evaluated: 0,
            cache_hits: 1,
            reuse_hits: 5,
            retries: 0,
            hedges: 2,
        };
        session.absorb(&q1);
        session.absorb(&q2);
        let total = session.snapshot();
        assert_eq!(total.retrieved, 14);
        assert_eq!(total.evaluated, 5);
        assert_eq!(total.cache_hits, 3);
        assert_eq!(total.reuse_hits, 5);
        assert_eq!(total.retries, 3);
        assert_eq!(total.hedges, 3);
    }

    #[test]
    fn retries_and_hedges_are_a_ledger_not_a_bill() {
        let t = CostTracker::new();
        t.add_evaluations(10);
        t.add_retries(7);
        t.add_hedges(3);
        let c = t.snapshot();
        assert_eq!(c.retries, 7);
        assert_eq!(c.hedges, 3);
        // The bill only counts evaluations: re-sends are free.
        assert_eq!(c.cost(&CostModel::PAPER_DEFAULT), 30.0);
        assert_eq!(c.demanded(), 10);
        t.reset();
        assert_eq!(t.snapshot(), CostCounts::default());
    }

    #[test]
    fn fields_export_stable_names() {
        let c = CostCounts {
            retrieved: 1,
            evaluated: 2,
            cache_hits: 3,
            reuse_hits: 4,
            retries: 5,
            hedges: 6,
        };
        assert_eq!(
            c.fields(),
            vec![
                ("retrieved", 1),
                ("evaluated", 2),
                ("cache_hits", 3),
                ("reuse_hits", 4),
                ("retries", 5),
                ("hedges", 6),
            ]
        );
    }

    #[test]
    #[should_panic]
    fn negative_costs_rejected() {
        CostModel::new(-1.0, 1.0);
    }

    #[test]
    fn batch_charges_accumulate() {
        let t = CostTracker::new();
        t.add_evaluations(10);
        t.add_cache_hits(4);
        let c = t.snapshot();
        assert_eq!(c.evaluated, 10);
        assert_eq!(c.cache_hits, 4);
    }

    #[test]
    fn concurrent_charges_are_exact() {
        let t = CostTracker::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let t = t.clone();
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        t.add_retrievals(1);
                        t.add_evaluation();
                    }
                });
            }
        });
        let c = t.snapshot();
        assert_eq!(c.retrieved, 8_000);
        assert_eq!(c.evaluated, 8_000);
    }
}
