//! The boolean UDF abstraction and its concrete implementations.
//!
//! The paper's `f(ID)` is an arbitrary expensive black box — a credit
//! bureau call, an image classifier, a crowd task. For reproduction, the
//! evaluation protocol (§6.1) designates a hidden label attribute as the
//! UDF's answer: "we assume that the UDF f on each tuple returns the
//! value … of this attribute for that tuple". [`OracleUdf`] implements
//! exactly that; wrappers add timing or noise for robustness experiments.

use expred_table::Table;
use std::time::Duration;

/// A stable identity for one UDF *semantics*: two UDFs with the same id
/// must answer identically on every `(table, row)`.
///
/// Cross-query caching keys entries by `(UdfId, table id, table version)`
/// — a wrong id silently serves one predicate's answers to another, so
/// implementors must fold every answer-affecting parameter into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdfId(u64);

impl UdfId {
    /// Builds an id by hashing a kind tag and the answer-affecting
    /// parameters (FNV-1a, via the workspace's shared deterministic
    /// hasher).
    pub fn from_parts(kind: &str, parts: &[u64]) -> Self {
        let mut h = expred_stats::hash::Fnv64::new();
        h.write_str(kind);
        for &p in parts {
            h.write_u64(p);
        }
        Self(h.finish())
    }

    /// Hashes a string parameter into a part suitable for
    /// [`UdfId::from_parts`].
    pub fn str_part(s: &str) -> u64 {
        expred_stats::hash::fnv1a(s.as_bytes())
    }

    /// The raw id, for embedding into cache namespace keys.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// A boolean predicate over rows of a table — the expensive `f(ID) = 1`.
///
/// Implementations must be deterministic per `(table, row)` within one
/// query execution (the paper's model: re-evaluating a tuple returns the
/// same answer, which is why sampled tuples need not be re-evaluated).
pub trait BooleanUdf: Send + Sync {
    /// Evaluates the UDF on one row. This is the *expensive* call.
    fn evaluate(&self, table: &Table, row: usize) -> bool;

    /// Short human-readable name for diagnostics.
    fn name(&self) -> &str {
        "udf"
    }

    /// Stable identity for cross-query caching, or `None` to opt out.
    ///
    /// The default opts out: an anonymous UDF never shares cached answers
    /// across queries (its per-query memo still works). Implementations
    /// whose answers are a pure function of declared parameters should
    /// return a [`UdfId`] folding in *all* of those parameters.
    fn fingerprint(&self) -> Option<UdfId> {
        None
    }

    /// Table columns this UDF reads, if it can declare them — lets a
    /// fallible surface reject a mistyped column as a typed error before
    /// any money is spent, instead of panicking mid-evaluation. The
    /// default declares nothing (no pre-validation possible).
    fn required_columns(&self) -> Vec<String> {
        Vec::new()
    }
}

/// The evaluation-protocol UDF: answers from a hidden boolean column.
#[derive(Debug, Clone)]
pub struct OracleUdf {
    column: String,
}

impl OracleUdf {
    /// Answers from `column`, which must be a boolean column.
    pub fn new(column: impl Into<String>) -> Self {
        Self {
            column: column.into(),
        }
    }

    /// The backing column name.
    pub fn column(&self) -> &str {
        &self.column
    }
}

impl BooleanUdf for OracleUdf {
    fn evaluate(&self, table: &Table, row: usize) -> bool {
        table
            .column(&self.column)
            .unwrap_or_else(|| panic!("oracle column {:?} missing", self.column))
            .bool_at(row)
            .unwrap_or_else(|| panic!("oracle column {:?} NULL/non-bool at row {row}", self.column))
    }

    fn name(&self) -> &str {
        "oracle"
    }

    fn fingerprint(&self) -> Option<UdfId> {
        Some(UdfId::from_parts(
            "oracle",
            &[UdfId::str_part(&self.column)],
        ))
    }

    fn required_columns(&self) -> Vec<String> {
        vec![self.column.clone()]
    }
}

/// Wraps a UDF with simulated per-call latency, for wall-clock experiments
/// where `o_e` models time rather than money.
pub struct SlowUdf<U> {
    inner: U,
    delay: Duration,
}

impl<U: BooleanUdf> SlowUdf<U> {
    /// Sleeps `delay` on every evaluation of `inner`.
    pub fn new(inner: U, delay: Duration) -> Self {
        Self { inner, delay }
    }
}

impl<U: BooleanUdf> BooleanUdf for SlowUdf<U> {
    fn evaluate(&self, table: &Table, row: usize) -> bool {
        std::thread::sleep(self.delay);
        self.inner.evaluate(table, row)
    }

    fn name(&self) -> &str {
        "slow"
    }

    /// Latency does not change answers, so a slow UDF shares its inner
    /// UDF's cache namespace — a warmed cache even absorbs the delay.
    fn fingerprint(&self) -> Option<UdfId> {
        self.inner.fingerprint()
    }

    fn required_columns(&self) -> Vec<String> {
        self.inner.required_columns()
    }
}

/// Wraps a UDF so a deterministic pseudo-random subset of rows gets a
/// flipped answer. Models subjective/approximate UDFs ("the output of the
/// UDF itself is subjective or approximate", §1); flips are a function of
/// `(seed, row)` so repeated evaluation stays consistent.
pub struct NoisyUdf<U> {
    inner: U,
    flip_probability: f64,
    seed: u64,
}

impl<U: BooleanUdf> NoisyUdf<U> {
    /// Flips `inner`'s answer on roughly `flip_probability` of rows.
    pub fn new(inner: U, flip_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&flip_probability),
            "flip probability must be in [0,1]"
        );
        Self {
            inner,
            flip_probability,
            seed,
        }
    }

    fn flips(&self, row: usize) -> bool {
        // SplitMix64 of (seed, row) -> uniform in [0,1).
        let mut z = self.seed ^ (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        u < self.flip_probability
    }
}

impl<U: BooleanUdf> BooleanUdf for NoisyUdf<U> {
    fn evaluate(&self, table: &Table, row: usize) -> bool {
        let truth = self.inner.evaluate(table, row);
        if self.flips(row) {
            !truth
        } else {
            truth
        }
    }

    fn name(&self) -> &str {
        "noisy"
    }

    /// Flips are a deterministic function of `(seed, row)`, so the noisy
    /// view is cacheable — under an id folding in both noise parameters,
    /// keeping it distinct from the clean UDF and from other noise seeds.
    fn fingerprint(&self) -> Option<UdfId> {
        let inner = self.inner.fingerprint()?;
        Some(UdfId::from_parts(
            "noisy",
            &[inner.as_u64(), self.flip_probability.to_bits(), self.seed],
        ))
    }

    fn required_columns(&self) -> Vec<String> {
        self.inner.required_columns()
    }
}

/// Conjunction of several UDFs — the "multiple predicates" extension
/// (paper §5) evaluates tuples against `f1 AND f2 AND …`.
pub struct ConjunctionUdf {
    parts: Vec<Box<dyn BooleanUdf>>,
}

impl ConjunctionUdf {
    /// Builds the conjunction of the given predicates (at least one).
    pub fn new(parts: Vec<Box<dyn BooleanUdf>>) -> Self {
        assert!(!parts.is_empty(), "conjunction needs at least one UDF");
        Self { parts }
    }

    /// Number of conjuncts.
    pub fn arity(&self) -> usize {
        self.parts.len()
    }

    /// Evaluates only the `i`-th conjunct.
    pub fn evaluate_part(&self, i: usize, table: &Table, row: usize) -> bool {
        self.parts[i].evaluate(table, row)
    }
}

impl BooleanUdf for ConjunctionUdf {
    fn evaluate(&self, table: &Table, row: usize) -> bool {
        self.parts.iter().all(|p| p.evaluate(table, row))
    }

    fn name(&self) -> &str {
        "conjunction"
    }

    /// Identified iff every conjunct is; order matters for identity (it
    /// does not change answers, but keeping it avoids claiming an
    /// equivalence the ids cannot prove).
    fn fingerprint(&self) -> Option<UdfId> {
        let mut parts = Vec::with_capacity(self.parts.len());
        for p in &self.parts {
            parts.push(p.fingerprint()?.as_u64());
        }
        Some(UdfId::from_parts("conjunction", &parts))
    }

    fn required_columns(&self) -> Vec<String> {
        self.parts
            .iter()
            .flat_map(|p| p.required_columns())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expred_table::{DataType, Field, Schema, Value};

    fn table_with_labels(labels: &[bool]) -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("good", DataType::Bool),
        ]);
        let rows = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| vec![Value::Int(i as i64), Value::Bool(l)])
            .collect();
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn oracle_reads_hidden_column() {
        let t = table_with_labels(&[true, false, true]);
        let udf = OracleUdf::new("good");
        assert!(udf.evaluate(&t, 0));
        assert!(!udf.evaluate(&t, 1));
        assert!(udf.evaluate(&t, 2));
        assert_eq!(udf.name(), "oracle");
        assert_eq!(udf.column(), "good");
    }

    #[test]
    #[should_panic]
    fn oracle_panics_on_missing_column() {
        let t = table_with_labels(&[true]);
        OracleUdf::new("nope").evaluate(&t, 0);
    }

    #[test]
    fn noisy_udf_is_deterministic_per_row() {
        let t = table_with_labels(&[true; 64]);
        let udf = NoisyUdf::new(OracleUdf::new("good"), 0.5, 99);
        for row in 0..64 {
            assert_eq!(udf.evaluate(&t, row), udf.evaluate(&t, row));
        }
    }

    #[test]
    fn noisy_udf_flip_rate_tracks_probability() {
        let labels = vec![true; 4000];
        let t = table_with_labels(&labels);
        let udf = NoisyUdf::new(OracleUdf::new("good"), 0.25, 7);
        let flipped = (0..4000).filter(|&r| !udf.evaluate(&t, r)).count();
        let rate = flipped as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate={rate}");
    }

    #[test]
    fn noisy_udf_zero_probability_is_transparent() {
        let t = table_with_labels(&[true, false, true, false]);
        let udf = NoisyUdf::new(OracleUdf::new("good"), 0.0, 1);
        for r in 0..4 {
            assert_eq!(udf.evaluate(&t, r), OracleUdf::new("good").evaluate(&t, r));
        }
    }

    #[test]
    fn conjunction_ands_parts() {
        let t = table_with_labels(&[true, false]);
        let udf = ConjunctionUdf::new(vec![
            Box::new(OracleUdf::new("good")),
            Box::new(OracleUdf::new("good")),
        ]);
        assert!(udf.evaluate(&t, 0));
        assert!(!udf.evaluate(&t, 1));
        assert_eq!(udf.arity(), 2);
        assert!(udf.evaluate_part(0, &t, 0));
    }

    #[test]
    fn fingerprints_separate_semantics_not_latency() {
        let clean = OracleUdf::new("good");
        let other = OracleUdf::new("bad");
        assert_ne!(clean.fingerprint(), other.fingerprint());
        assert_eq!(
            OracleUdf::new("good").fingerprint(),
            clean.fingerprint(),
            "same column, same identity"
        );
        // Latency wrapping keeps the identity; noise changes it.
        let slow = SlowUdf::new(OracleUdf::new("good"), Duration::from_millis(1));
        assert_eq!(slow.fingerprint(), clean.fingerprint());
        let noisy_a = NoisyUdf::new(OracleUdf::new("good"), 0.1, 1);
        let noisy_b = NoisyUdf::new(OracleUdf::new("good"), 0.1, 2);
        assert_ne!(noisy_a.fingerprint(), clean.fingerprint());
        assert_ne!(noisy_a.fingerprint(), noisy_b.fingerprint());
        // Conjunctions identify iff all parts do; order is significant.
        let ab = ConjunctionUdf::new(vec![
            Box::new(OracleUdf::new("good")),
            Box::new(OracleUdf::new("bad")),
        ]);
        let ba = ConjunctionUdf::new(vec![
            Box::new(OracleUdf::new("bad")),
            Box::new(OracleUdf::new("good")),
        ]);
        assert!(ab.fingerprint().is_some());
        assert_ne!(ab.fingerprint(), ba.fingerprint());
        // An anonymous UDF opts out, and poisons any conjunction.
        struct Anon;
        impl BooleanUdf for Anon {
            fn evaluate(&self, _: &Table, _: usize) -> bool {
                true
            }
        }
        assert_eq!(Anon.fingerprint(), None);
        let poisoned = ConjunctionUdf::new(vec![Box::new(Anon), Box::new(OracleUdf::new("good"))]);
        assert_eq!(poisoned.fingerprint(), None);
    }

    #[test]
    fn slow_udf_delegates() {
        let t = table_with_labels(&[true]);
        let udf = SlowUdf::new(OracleUdf::new("good"), Duration::from_millis(1));
        let start = std::time::Instant::now();
        assert!(udf.evaluate(&t, 0));
        assert!(start.elapsed() >= Duration::from_millis(1));
    }
}
