//! [`PredicateExpr`]: boolean expressions over expensive UDFs.
//!
//! The paper's §5 "multiple predicates" extension — and the natural
//! serving workload behind it (Kim et al., *Optimizing Query Predicates
//! with Disjunctions for Column-Oriented Engines*) — is a query whose
//! `WHERE` clause combines several expensive predicates:
//! `f1(...) = 1 AND (f2(...) = 1 OR NOT f3(...) = 1)`. This module makes
//! that a first-class value:
//!
//! ```
//! use expred_udf::{OracleUdf, Pred};
//!
//! let expr = Pred::udf(OracleUdf::new("fraud_free"))
//!     .and(Pred::udf(OracleUdf::new("image_ok")).or(Pred::udf(OracleUdf::new("vip"))));
//! assert_eq!(expr.leaf_count(), 3);
//! assert!(expr.fingerprint().is_some(), "oracle leaves are identifiable");
//! ```
//!
//! Three properties make expressions serving-grade:
//!
//! * **Derived identity** — [`PredicateExpr::fingerprint`] folds the
//!   operator tree and every leaf's [`UdfId`] into one id, so a whole
//!   expression is cacheable/memoizable exactly like a single UDF (it
//!   even implements [`BooleanUdf`] itself).
//! * **Session-cached evaluation** — [`evaluate_expr_batch_ctx`] gives
//!   every *leaf* its own audited [`UdfInvoker`] over the shared
//!   [`expred_exec::CacheStore`] namespace, so a leaf some earlier query
//!   already paid for arrives as a free
//!   [`crate::CostCounts::reuse_hits`], whatever expression it appeared
//!   in back then.
//! * **Cost-ordered short-circuiting** — inside each `AND`/`OR`, child
//!   subtrees are evaluated cheapest-first ([`PredicateExpr::cost`]) in
//!   staged batches: survivors of one stage form the next stage's batch,
//!   exactly like the column-store disjunction evaluation strategy.
//!   Answers are independent of the order (the predicates are
//!   deterministic); only the bill changes.
//!
//! Expressions also round-trip through the predicate DSL
//! ([`crate::parse_predicate`]): a parsed expression remembers its leaf
//! names and [`PredicateExpr::render`]s back to an equivalent string.
//! The session optimizer ([`crate::optimize_expr`]) rewrites a tree into
//! an answer-equivalent one whose sibling order is *pinned* — the staged
//! evaluator then honors that order instead of re-sorting by declared
//! cost.

use crate::cost::CostTracker;
use crate::invoker::UdfInvoker;
use crate::udf::{BooleanUdf, UdfId};
use expred_exec::{ExecContext, Executor};
use expred_table::Table;
use std::collections::HashSet;
use std::sync::Arc;

/// Short alias so expressions read as predicates:
/// `Pred::udf(...).and(...).not()`.
pub type Pred = PredicateExpr;

/// Default per-evaluation cost of a leaf, when none is declared.
pub const DEFAULT_LEAF_COST: f64 = 1.0;

/// The batch entry points reject an expression whose declared leaf costs
/// are malformed (NaN, infinite, or negative) — such a cost cannot order
/// short-circuit stages, and before this check a NaN cost silently fed a
/// non-total comparator into the stage sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidCostsError;

impl std::fmt::Display for InvalidCostsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "every leaf evaluation cost must be finite and >= 0")
    }
}

impl std::error::Error for InvalidCostsError {}

/// A boolean expression over expensive UDF predicates — see the module
/// docs. Opaque on purpose: the only way to build one is through the
/// combinators (or the DSL parser), which maintain the tree invariants
/// (`AND`/`OR` nodes always have at least one child).
#[derive(Clone)]
pub struct PredicateExpr {
    pub(crate) node: Node,
    /// Whether the stored sibling order is authoritative (set by the
    /// optimizer): the staged evaluator then runs children in stored
    /// order instead of re-sorting by declared cost. Never part of the
    /// fingerprint — order cannot change answers. Combinators reset it:
    /// composing onto an optimized tree yields a new, unoptimized one.
    pub(crate) pinned: bool,
}

#[derive(Clone)]
pub(crate) enum Node {
    Leaf {
        udf: Arc<dyn BooleanUdf>,
        cost: f64,
        /// The DSL name this leaf was parsed from, if any — what
        /// [`PredicateExpr::render`] prints. Excluded from the
        /// fingerprint: identity is the UDF's, not its spelling.
        name: Option<Arc<str>>,
    },
    Not(Box<Node>),
    And(Vec<Node>),
    Or(Vec<Node>),
}

impl PredicateExpr {
    /// A leaf predicate with the default evaluation cost.
    pub fn udf(udf: impl BooleanUdf + 'static) -> Self {
        Self::udf_with_cost(udf, DEFAULT_LEAF_COST)
    }

    /// A leaf predicate with a declared per-evaluation cost, used only to
    /// order short-circuit stages (cheap predicates run first). The cost
    /// does not enter the expression's identity: evaluation order cannot
    /// change answers.
    pub fn udf_with_cost(udf: impl BooleanUdf + 'static, cost: f64) -> Self {
        Self::shared_with_cost(Arc::new(udf), cost)
    }

    /// A leaf over an already-shared UDF.
    pub fn shared_with_cost(udf: Arc<dyn BooleanUdf>, cost: f64) -> Self {
        Self {
            node: Node::Leaf {
                udf,
                cost,
                name: None,
            },
            pinned: false,
        }
    }

    /// Wraps `node` in an unpinned expression (crate-internal: the
    /// parser and optimizer build trees directly).
    pub(crate) fn from_node(node: Node) -> Self {
        Self {
            node,
            pinned: false,
        }
    }

    /// Names this expression's root leaf (crate-internal: the parser
    /// tags resolved leaves with their DSL spelling). Non-leaf roots are
    /// left unchanged — a registry that expands a name into a compound
    /// expression has no single leaf to name.
    pub(crate) fn with_leaf_name(mut self, leaf_name: &str) -> Self {
        if let Node::Leaf { name, .. } = &mut self.node {
            *name = Some(Arc::from(leaf_name));
        }
        self
    }

    /// `self AND other` (flattens nested conjunctions).
    pub fn and(self, other: PredicateExpr) -> Self {
        let mut parts = match self.node {
            Node::And(parts) => parts,
            node => vec![node],
        };
        match other.node {
            Node::And(mut more) => parts.append(&mut more),
            node => parts.push(node),
        }
        Self::from_node(Node::And(parts))
    }

    /// `self OR other` (flattens nested disjunctions).
    pub fn or(self, other: PredicateExpr) -> Self {
        let mut parts = match self.node {
            Node::Or(parts) => parts,
            node => vec![node],
        };
        match other.node {
            Node::Or(mut more) => parts.append(&mut more),
            node => parts.push(node),
        }
        Self::from_node(Node::Or(parts))
    }

    /// `NOT self` (double negation cancels). Also available as the `!`
    /// operator via the `std::ops::Not` impl.
    #[allow(clippy::should_implement_trait)] // it does — this is the no-import combinator spelling
    pub fn not(self) -> Self {
        !self
    }

    /// Number of leaf predicates in the tree.
    pub fn leaf_count(&self) -> usize {
        fn walk(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Not(inner) => walk(inner),
                Node::And(parts) | Node::Or(parts) => parts.iter().map(walk).sum(),
            }
        }
        walk(&self.node)
    }

    /// Static per-row cost estimate: a leaf's declared cost; a
    /// negation's inner cost; a conjunction/disjunction's *sum* of child
    /// costs (the worst case, before short-circuiting). Used to order
    /// siblings cheapest-first.
    pub fn cost(&self) -> f64 {
        node_cost(&self.node)
    }

    /// Whether every leaf cost is finite and nonnegative.
    pub fn costs_valid(&self) -> bool {
        fn walk(node: &Node) -> bool {
            match node {
                Node::Leaf { cost, .. } => cost.is_finite() && *cost >= 0.0,
                Node::Not(inner) => walk(inner),
                Node::And(parts) | Node::Or(parts) => parts.iter().all(walk),
            }
        }
        walk(&self.node)
    }

    /// Whether the sibling order was pinned by the optimizer
    /// ([`crate::optimize_expr`]): pinned trees evaluate children in
    /// stored order; unpinned trees re-sort by declared cost.
    pub fn is_pinned(&self) -> bool {
        self.pinned
    }

    /// The derived identity of the whole expression, or `None` if any
    /// leaf UDF opted out of identity ([`BooleanUdf::fingerprint`]).
    ///
    /// Sibling order is significant (as for [`crate::ConjunctionUdf`]):
    /// `a.and(b)` and `b.and(a)` answer identically but carry distinct
    /// ids — the id never claims an equivalence it cannot prove. Leaf
    /// costs, DSL names, and the pinned flag are excluded: ordering and
    /// spelling cannot change answers.
    pub fn fingerprint(&self) -> Option<UdfId> {
        fn walk(node: &Node) -> Option<UdfId> {
            match node {
                Node::Leaf { udf, .. } => udf.fingerprint(),
                Node::Not(inner) => Some(UdfId::from_parts("expr.not", &[walk(inner)?.as_u64()])),
                Node::And(parts) => {
                    let ids = part_ids(parts)?;
                    Some(UdfId::from_parts("expr.and", &ids))
                }
                Node::Or(parts) => {
                    let ids = part_ids(parts)?;
                    Some(UdfId::from_parts("expr.or", &ids))
                }
            }
        }
        fn part_ids(parts: &[Node]) -> Option<Vec<u64>> {
            parts
                .iter()
                .map(|p| walk(p).map(|id| id.as_u64()))
                .collect()
        }
        walk(&self.node)
    }

    /// Renders the expression back to predicate-DSL text
    /// ([`crate::parse_predicate`] accepts the result), or `None` if any
    /// leaf has no DSL name (only parsed leaves carry one).
    ///
    /// Parentheses are minimal under the grammar's precedence
    /// (`not` > `and` > `or`), so
    /// `parse(expr.render()?)` rebuilds a tree with the same
    /// [`PredicateExpr::fingerprint`] and the same answers.
    pub fn render(&self) -> Option<String> {
        // Precedence levels: Or = 0, And = 1, Not = 2, Leaf = 3. A child
        // needs parentheses when it binds no tighter than its parent.
        fn level(node: &Node) -> u8 {
            match node {
                Node::Or(_) => 0,
                Node::And(_) => 1,
                Node::Not(_) => 2,
                Node::Leaf { .. } => 3,
            }
        }
        fn child(node: &Node, min_level: u8, out: &mut String) -> Option<()> {
            if level(node) < min_level {
                out.push('(');
                walk(node, out)?;
                out.push(')');
                Some(())
            } else {
                walk(node, out)
            }
        }
        fn walk(node: &Node, out: &mut String) -> Option<()> {
            match node {
                Node::Leaf { name, .. } => {
                    out.push_str(name.as_deref()?);
                    Some(())
                }
                Node::Not(inner) => {
                    out.push_str("not ");
                    child(inner, 2, out)
                }
                // A nested same-op child still gets parentheses (min
                // level one above its own), keeping re-parsing faithful
                // even for trees the optimizer built unflattened.
                Node::And(parts) => {
                    for (i, part) in parts.iter().enumerate() {
                        if i > 0 {
                            out.push_str(" and ");
                        }
                        child(part, 2, out)?;
                    }
                    Some(())
                }
                Node::Or(parts) => {
                    for (i, part) in parts.iter().enumerate() {
                        if i > 0 {
                            out.push_str(" or ");
                        }
                        child(part, 1, out)?;
                    }
                    Some(())
                }
            }
        }
        let mut out = String::new();
        walk(&self.node, &mut out)?;
        Some(out)
    }
}

/// `NOT expr` (double negation cancels). `std::ops::Not` is in the
/// prelude, so this is both `!expr` and the combinator `expr.not()`.
impl std::ops::Not for PredicateExpr {
    type Output = PredicateExpr;

    fn not(self) -> PredicateExpr {
        Self::from_node(match self.node {
            Node::Not(inner) => *inner,
            node => Node::Not(Box::new(node)),
        })
    }
}

fn node_cost(node: &Node) -> f64 {
    match node {
        Node::Leaf { cost, .. } => *cost,
        Node::Not(inner) => node_cost(inner),
        Node::And(parts) | Node::Or(parts) => parts.iter().map(node_cost).sum(),
    }
}

/// Child evaluation order: cheapest subtree first, original order on
/// ties (stable sort), so evaluation is deterministic. The sort key is
/// total (`f64::total_cmp`, non-finite costs clamped to `+inf`): a NaN
/// leaf cost must never feed a non-total comparator into the sort —
/// validated entry points reject it, and any other path degrades to
/// "last", not to unspecified (or panicking) behavior.
pub(crate) fn cost_order(parts: &[Node]) -> Vec<usize> {
    let key = |node: &Node| {
        let cost = node_cost(node);
        if cost.is_finite() {
            cost
        } else {
            f64::INFINITY
        }
    };
    let mut order: Vec<usize> = (0..parts.len()).collect();
    order.sort_by(|&a, &b| key(&parts[a]).total_cmp(&key(&parts[b])));
    order
}

impl BooleanUdf for PredicateExpr {
    /// Per-row evaluation with short-circuiting in *stored* sibling
    /// order (no caching, no auditing — the expression acts as one
    /// opaque UDF, and this path is a hot loop, so it skips the
    /// cost-ordering bookkeeping, which cannot change answers anyway).
    /// Batched, audited, session-cached, cost-ordered evaluation is
    /// [`evaluate_expr_batch_ctx`].
    fn evaluate(&self, table: &Table, row: usize) -> bool {
        fn walk(node: &Node, table: &Table, row: usize) -> bool {
            match node {
                Node::Leaf { udf, .. } => udf.evaluate(table, row),
                Node::Not(inner) => !walk(inner, table, row),
                Node::And(parts) => parts.iter().all(|p| walk(p, table, row)),
                Node::Or(parts) => parts.iter().any(|p| walk(p, table, row)),
            }
        }
        walk(&self.node, table, row)
    }

    fn name(&self) -> &str {
        "expr"
    }

    fn fingerprint(&self) -> Option<UdfId> {
        PredicateExpr::fingerprint(self)
    }

    /// Columns any leaf declares, deduplicated in first-seen order — an
    /// expression whose leaves share a column must not report (or make a
    /// validator re-check) that column once per leaf.
    fn required_columns(&self) -> Vec<String> {
        fn walk(node: &Node, out: &mut Vec<String>, seen: &mut HashSet<String>) {
            match node {
                Node::Leaf { udf, .. } => {
                    for column in udf.required_columns() {
                        if seen.insert(column.clone()) {
                            out.push(column);
                        }
                    }
                }
                Node::Not(inner) => walk(inner, out, seen),
                Node::And(parts) | Node::Or(parts) => parts.iter().for_each(|p| walk(p, out, seen)),
            }
        }
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        walk(&self.node, &mut out, &mut seen);
        out
    }
}

impl std::fmt::Debug for PredicateExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn walk(node: &Node, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match node {
                Node::Leaf { udf, cost, name } => match name {
                    Some(name) => write!(f, "{name}@{cost}"),
                    None => write!(f, "{}@{cost}", udf.name()),
                },
                Node::Not(inner) => {
                    write!(f, "not(")?;
                    walk(inner, f)?;
                    write!(f, ")")
                }
                Node::And(parts) | Node::Or(parts) => {
                    let op = if matches!(node, Node::And(_)) {
                        "and"
                    } else {
                        "or"
                    };
                    write!(f, "{op}(")?;
                    for (i, p) in parts.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        walk(p, f)?;
                    }
                    write!(f, ")")
                }
            }
        }
        walk(&self.node, f)?;
        if self.pinned {
            write!(f, " [pinned]")?;
        }
        Ok(())
    }
}

/// Evaluates `expr` over `rows` in staged, audited batches: every leaf
/// gets its own [`UdfInvoker`] charging to `tracker` (and borrowing the
/// context's session cache, when present); inside each `AND`/`OR`,
/// children run cheapest-first over the surviving/undecided rows only —
/// or in stored order when the optimizer pinned it
/// ([`PredicateExpr::is_pinned`]). Answers come back in input order and
/// are identical across executor backends and orderings.
///
/// Errors with [`InvalidCostsError`] if any declared leaf cost is NaN,
/// infinite, or negative (such a cost cannot order stages) — the same
/// rejection the engine's `ExprScan` validation performs.
///
/// Retrieval is *not* charged here — the caller decided to touch the
/// rows; each leaf invocation is charged one evaluation (or arrives as a
/// memo/reuse hit).
pub fn evaluate_expr_batch_ctx(
    expr: &PredicateExpr,
    table: &Table,
    rows: &[usize],
    tracker: &CostTracker,
    ctx: &ExecContext<'_>,
) -> Result<Vec<bool>, InvalidCostsError> {
    if !expr.costs_valid() {
        return Err(InvalidCostsError);
    }
    Ok(eval_node(
        &expr.node,
        expr.pinned,
        table,
        rows,
        tracker,
        ctx,
    ))
}

/// [`evaluate_expr_batch_ctx`] on a bare executor (no session cache).
pub fn evaluate_expr_batch(
    expr: &PredicateExpr,
    table: &Table,
    rows: &[usize],
    tracker: &CostTracker,
    executor: &dyn Executor,
) -> Result<Vec<bool>, InvalidCostsError> {
    evaluate_expr_batch_ctx(expr, table, rows, tracker, &ExecContext::new(executor))
}

fn eval_node(
    node: &Node,
    pinned: bool,
    table: &Table,
    rows: &[usize],
    tracker: &CostTracker,
    ctx: &ExecContext<'_>,
) -> Vec<bool> {
    // Pinned trees honor the optimizer's stored sibling order; unpinned
    // trees sort cheapest-first. Either way the order is deterministic
    // and cannot change answers.
    let stage_order = |parts: &[Node]| -> Vec<usize> {
        if pinned {
            (0..parts.len()).collect()
        } else {
            cost_order(parts)
        }
    };
    match node {
        Node::Leaf { udf, .. } => {
            let invoker =
                UdfInvoker::with_tracker_and_context(udf.as_ref(), table, tracker.clone(), ctx);
            invoker.evaluate_batch(ctx.executor, rows)
        }
        Node::Not(inner) => eval_node(inner, pinned, table, rows, tracker, ctx)
            .into_iter()
            .map(|v| !v)
            .collect(),
        Node::And(parts) => {
            // Positions (into `rows`) still alive after the stages so far.
            let mut alive: Vec<usize> = (0..rows.len()).collect();
            for part in stage_order(parts) {
                if alive.is_empty() {
                    break;
                }
                let batch: Vec<usize> = alive.iter().map(|&pos| rows[pos]).collect();
                let verdicts = eval_node(&parts[part], pinned, table, &batch, tracker, ctx);
                alive = alive
                    .into_iter()
                    .zip(verdicts)
                    .filter(|&(_, passed)| passed)
                    .map(|(pos, _)| pos)
                    .collect();
            }
            let mut answers = vec![false; rows.len()];
            for pos in alive {
                answers[pos] = true;
            }
            answers
        }
        Node::Or(parts) => {
            // Positions not yet accepted by any earlier (cheaper) child.
            let mut undecided: Vec<usize> = (0..rows.len()).collect();
            let mut answers = vec![false; rows.len()];
            for part in stage_order(parts) {
                if undecided.is_empty() {
                    break;
                }
                let batch: Vec<usize> = undecided.iter().map(|&pos| rows[pos]).collect();
                let verdicts = eval_node(&parts[part], pinned, table, &batch, tracker, ctx);
                let mut rest = Vec::with_capacity(undecided.len());
                for (pos, passed) in undecided.into_iter().zip(verdicts) {
                    if passed {
                        answers[pos] = true;
                    } else {
                        rest.push(pos);
                    }
                }
                undecided = rest;
            }
            answers
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udf::OracleUdf;
    use expred_table::{DataType, Field, Schema, Value};

    fn table(cols: &[(&str, &[bool])]) -> Table {
        let schema = Schema::new(
            cols.iter()
                .map(|(name, _)| Field::new(*name, DataType::Bool))
                .collect(),
        );
        let n = cols[0].1.len();
        let rows = (0..n)
            .map(|r| cols.iter().map(|(_, vals)| Value::Bool(vals[r])).collect())
            .collect();
        Table::from_rows(schema, rows).unwrap()
    }

    fn leaf(col: &str) -> PredicateExpr {
        Pred::udf(OracleUdf::new(col))
    }

    #[test]
    fn combinators_compute_boolean_semantics() {
        let a = [true, true, false, false];
        let b = [true, false, true, false];
        let t = table(&[("a", &a), ("b", &b)]);
        let rows: Vec<usize> = (0..4).collect();
        let tracker = CostTracker::new();
        type Semantics = Box<dyn Fn(bool, bool) -> bool>;
        let cases: Vec<(PredicateExpr, Semantics)> = vec![
            (leaf("a").and(leaf("b")), Box::new(|x, y| x && y)),
            (leaf("a").or(leaf("b")), Box::new(|x, y| x || y)),
            (leaf("a").not(), Box::new(|x, _| !x)),
            (leaf("a").and(leaf("b").not()), Box::new(|x, y| x && !y)),
            (leaf("a").or(leaf("b")).not(), Box::new(|x, y| !(x || y))),
        ];
        for (expr, want) in cases {
            let got = evaluate_expr_batch(&expr, &t, &rows, &tracker, &expred_exec::Sequential)
                .expect("valid costs");
            let expect: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| want(x, y)).collect();
            assert_eq!(got, expect, "{expr:?}");
            // Per-row evaluation (the BooleanUdf view) agrees.
            for (&row, &e) in rows.iter().zip(&expect) {
                assert_eq!(expr.evaluate(&t, row), e, "{expr:?} row {row}");
            }
        }
    }

    #[test]
    fn and_short_circuits_cheapest_first() {
        // `cheap` rejects half the rows; `pricey` must only be invoked on
        // the survivors, whichever side of the AND it was written on.
        let cheap_vals = [true, false, true, false, true, false];
        let pricey_vals = [true, true, false, false, true, true];
        let t = table(&[("cheap", &cheap_vals), ("pricey", &pricey_vals)]);
        let rows: Vec<usize> = (0..6).collect();
        for expr in [
            Pred::udf_with_cost(OracleUdf::new("pricey"), 10.0)
                .and(Pred::udf_with_cost(OracleUdf::new("cheap"), 1.0)),
            Pred::udf_with_cost(OracleUdf::new("cheap"), 1.0)
                .and(Pred::udf_with_cost(OracleUdf::new("pricey"), 10.0)),
        ] {
            let tracker = CostTracker::new();
            let answers = evaluate_expr_batch(&expr, &t, &rows, &tracker, &expred_exec::Sequential)
                .expect("valid costs");
            let want: Vec<bool> = cheap_vals
                .iter()
                .zip(&pricey_vals)
                .map(|(&c, &p)| c && p)
                .collect();
            assert_eq!(answers, want);
            // 6 cheap probes + 3 survivors' pricey probes.
            assert_eq!(tracker.snapshot().evaluated, 6 + 3, "{expr:?}");
        }
    }

    #[test]
    fn or_skips_rows_an_earlier_child_accepted() {
        let cheap_vals = [true, false, true, false];
        let pricey_vals = [false, true, true, false];
        let t = table(&[("cheap", &cheap_vals), ("pricey", &pricey_vals)]);
        let rows: Vec<usize> = (0..4).collect();
        let expr = Pred::udf_with_cost(OracleUdf::new("pricey"), 10.0)
            .or(Pred::udf_with_cost(OracleUdf::new("cheap"), 1.0));
        let tracker = CostTracker::new();
        let answers = evaluate_expr_batch(&expr, &t, &rows, &tracker, &expred_exec::Sequential)
            .expect("valid costs");
        assert_eq!(answers, vec![true, true, true, false]);
        // 4 cheap probes; only the 2 cheap-rejected rows reach pricey.
        assert_eq!(tracker.snapshot().evaluated, 4 + 2);
    }

    #[test]
    fn nan_cost_is_rejected_not_missorted() {
        // Regression: a NaN leaf cost used to feed a non-total comparator
        // into the stage sort (unspecified order; newer std sorts may
        // panic). The batch entry points now reject it up front…
        let vals = [true, false];
        let t = table(&[("a", &vals), ("b", &vals)]);
        let rows: Vec<usize> = (0..2).collect();
        let nan = Pred::udf_with_cost(OracleUdf::new("a"), f64::NAN).and(leaf("b"));
        let tracker = CostTracker::new();
        let err = evaluate_expr_batch(&nan, &t, &rows, &tracker, &expred_exec::Sequential)
            .expect_err("NaN cost must be rejected");
        assert_eq!(err, InvalidCostsError);
        assert_eq!(tracker.snapshot().evaluated, 0, "no money was spent");
        assert!(err.to_string().contains("finite"));
        // …and the sort itself is total: non-finite costs order last,
        // deterministically, instead of panicking or shuffling.
        let parts = vec![
            Node::Leaf {
                udf: Arc::new(OracleUdf::new("a")),
                cost: f64::NAN,
                name: None,
            },
            Node::Leaf {
                udf: Arc::new(OracleUdf::new("b")),
                cost: 2.0,
                name: None,
            },
            Node::Leaf {
                udf: Arc::new(OracleUdf::new("a")),
                cost: f64::INFINITY,
                name: None,
            },
            Node::Leaf {
                udf: Arc::new(OracleUdf::new("b")),
                cost: 1.0,
                name: None,
            },
        ];
        assert_eq!(
            cost_order(&parts),
            vec![3, 1, 0, 2],
            "finite ascending, then non-finite in original order"
        );
    }

    #[test]
    fn required_columns_deduplicate_in_first_seen_order() {
        // Regression: leaves sharing a column used to report it once per
        // leaf, so validators re-checked (and re-reported) duplicates.
        let expr = leaf("b").and(leaf("a")).and(leaf("b").not().or(leaf("c")));
        assert_eq!(BooleanUdf::required_columns(&expr), vec!["b", "a", "c"]);
        let single = leaf("x").and(leaf("x"));
        assert_eq!(BooleanUdf::required_columns(&single), vec!["x"]);
    }

    #[test]
    fn fingerprints_derive_and_poison() {
        let a = leaf("a");
        let b = leaf("b");
        let ab = a.clone().and(b.clone());
        let ba = b.clone().and(a.clone());
        assert!(ab.fingerprint().is_some());
        assert_ne!(ab.fingerprint(), ba.fingerprint(), "order is identity");
        assert_ne!(
            a.clone().and(b.clone()).fingerprint(),
            a.clone().or(b.clone()).fingerprint(),
            "operator is identity"
        );
        assert_ne!(a.clone().not().fingerprint(), a.fingerprint());
        assert_eq!(
            a.clone().not().not().fingerprint(),
            a.fingerprint(),
            "double negation cancels"
        );
        // Costs are not identity: reordering cannot change answers.
        assert_eq!(
            Pred::udf_with_cost(OracleUdf::new("a"), 5.0)
                .and(leaf("b"))
                .fingerprint(),
            ab.fingerprint()
        );
        struct Anon;
        impl BooleanUdf for Anon {
            fn evaluate(&self, _: &Table, _: usize) -> bool {
                true
            }
        }
        assert_eq!(leaf("a").and(Pred::udf(Anon)).fingerprint(), None);
    }

    #[test]
    fn flattening_and_counts() {
        let e = leaf("a").and(leaf("b")).and(leaf("c").or(leaf("d")));
        assert_eq!(e.leaf_count(), 4);
        assert_eq!(e.cost(), 4.0);
        assert!(e.costs_valid());
        assert!(!e.is_pinned());
        assert!(!Pred::udf_with_cost(OracleUdf::new("a"), f64::NAN).costs_valid());
        assert!(!Pred::udf_with_cost(OracleUdf::new("a"), -1.0).costs_valid());
        let debug = format!("{e:?}");
        assert!(debug.starts_with("and("), "{debug}");
        assert!(debug.contains("or("), "{debug}");
    }

    #[test]
    fn render_requires_names_and_round_trips_structure() {
        // Combinator-built leaves carry no DSL name: nothing to render.
        assert_eq!(leaf("a").and(leaf("b")).render(), None);
        // Named leaves render with minimal parentheses.
        let named = |n: &str| leaf(n).with_leaf_name(n);
        let e = named("a")
            .and(named("b").or(named("c")).not())
            .or(named("d"));
        assert_eq!(e.render().as_deref(), Some("a and not (b or c) or d"));
        let flat = named("a").and(named("b")).and(named("c"));
        assert_eq!(flat.render().as_deref(), Some("a and b and c"));
    }

    #[test]
    fn session_cache_reuses_leaves_across_expressions() {
        let a = [true, false, true, false];
        let b = [true, true, false, false];
        let t = table(&[("a", &a), ("b", &b)]);
        let rows: Vec<usize> = (0..4).collect();
        let store = expred_exec::CacheStore::new();
        let ctx = expred_exec::ExecContext::sequential().with_cache(&store);

        let first = CostTracker::new();
        evaluate_expr_batch_ctx(&leaf("a").and(leaf("b")), &t, &rows, &first, &ctx)
            .expect("valid costs");
        assert_eq!(first.snapshot().reuse_hits, 0, "cold session");

        // A *different* expression over the same leaves: every leaf probe
        // the conjunction already paid for arrives as reuse.
        let second = CostTracker::new();
        let answers =
            evaluate_expr_batch_ctx(&leaf("b").or(leaf("a").not()), &t, &rows, &second, &ctx)
                .expect("valid costs");
        let want: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| y || !x).collect();
        assert_eq!(answers, want);
        let counts = second.snapshot();
        assert!(counts.reuse_hits > 0, "leaves must be shared: {counts:?}");
        // The AND evaluated `a` on all 4 rows and `b` on the 2 survivors;
        // the second expression demands b on 4 and a on the b-rejected 2.
        assert_eq!(counts.evaluated + counts.reuse_hits, 4 + 2);
    }

    #[test]
    fn backends_agree() {
        let n = 200;
        let a: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
        let b: Vec<bool> = (0..n).map(|i| i % 5 != 0).collect();
        let c: Vec<bool> = (0..n).map(|i| i % 7 == 0).collect();
        let t = table(&[("a", &a), ("b", &b), ("c", &c)]);
        let rows: Vec<usize> = (0..n).rev().collect();
        let expr = leaf("a").and(leaf("b").or(leaf("c").not())).or(leaf("c"));
        let seq_tracker = CostTracker::new();
        let want = evaluate_expr_batch(&expr, &t, &rows, &seq_tracker, &expred_exec::Sequential)
            .expect("valid costs");
        let par_tracker = CostTracker::new();
        let got = evaluate_expr_batch(
            &expr,
            &t,
            &rows,
            &par_tracker,
            &expred_exec::Parallel::with_threads(4),
        )
        .expect("valid costs");
        assert_eq!(want, got);
        assert_eq!(seq_tracker.snapshot(), par_tracker.snapshot());
    }
}
