//! [`PredicateExpr`]: boolean expressions over expensive UDFs.
//!
//! The paper's §5 "multiple predicates" extension — and the natural
//! serving workload behind it (Kim et al., *Optimizing Query Predicates
//! with Disjunctions for Column-Oriented Engines*) — is a query whose
//! `WHERE` clause combines several expensive predicates:
//! `f1(...) = 1 AND (f2(...) = 1 OR NOT f3(...) = 1)`. This module makes
//! that a first-class value:
//!
//! ```
//! use expred_udf::{OracleUdf, Pred};
//!
//! let expr = Pred::udf(OracleUdf::new("fraud_free"))
//!     .and(Pred::udf(OracleUdf::new("image_ok")).or(Pred::udf(OracleUdf::new("vip"))));
//! assert_eq!(expr.leaf_count(), 3);
//! assert!(expr.fingerprint().is_some(), "oracle leaves are identifiable");
//! ```
//!
//! Three properties make expressions serving-grade:
//!
//! * **Derived identity** — [`PredicateExpr::fingerprint`] folds the
//!   operator tree and every leaf's [`UdfId`] into one id, so a whole
//!   expression is cacheable/memoizable exactly like a single UDF (it
//!   even implements [`BooleanUdf`] itself).
//! * **Session-cached evaluation** — [`evaluate_expr_batch_ctx`] gives
//!   every *leaf* its own audited [`UdfInvoker`] over the shared
//!   [`expred_exec::CacheStore`] namespace, so a leaf some earlier query
//!   already paid for arrives as a free
//!   [`crate::CostCounts::reuse_hits`], whatever expression it appeared
//!   in back then.
//! * **Cost-ordered short-circuiting** — inside each `AND`/`OR`, child
//!   subtrees are evaluated cheapest-first ([`PredicateExpr::cost`]) in
//!   staged batches: survivors of one stage form the next stage's batch,
//!   exactly like the column-store disjunction evaluation strategy.
//!   Answers are independent of the order (the predicates are
//!   deterministic); only the bill changes.

use crate::cost::CostTracker;
use crate::invoker::UdfInvoker;
use crate::udf::{BooleanUdf, UdfId};
use expred_exec::{ExecContext, Executor};
use expred_table::Table;
use std::sync::Arc;

/// Short alias so expressions read as predicates:
/// `Pred::udf(...).and(...).not()`.
pub type Pred = PredicateExpr;

/// Default per-evaluation cost of a leaf, when none is declared.
pub const DEFAULT_LEAF_COST: f64 = 1.0;

/// A boolean expression over expensive UDF predicates — see the module
/// docs. Opaque on purpose: the only way to build one is through the
/// combinators, which maintain the tree invariants (`AND`/`OR` nodes
/// always have at least one child).
#[derive(Clone)]
pub struct PredicateExpr {
    node: Node,
}

#[derive(Clone)]
enum Node {
    Leaf { udf: Arc<dyn BooleanUdf>, cost: f64 },
    Not(Box<Node>),
    And(Vec<Node>),
    Or(Vec<Node>),
}

impl PredicateExpr {
    /// A leaf predicate with the default evaluation cost.
    pub fn udf(udf: impl BooleanUdf + 'static) -> Self {
        Self::udf_with_cost(udf, DEFAULT_LEAF_COST)
    }

    /// A leaf predicate with a declared per-evaluation cost, used only to
    /// order short-circuit stages (cheap predicates run first). The cost
    /// does not enter the expression's identity: evaluation order cannot
    /// change answers.
    pub fn udf_with_cost(udf: impl BooleanUdf + 'static, cost: f64) -> Self {
        Self::shared_with_cost(Arc::new(udf), cost)
    }

    /// A leaf over an already-shared UDF.
    pub fn shared_with_cost(udf: Arc<dyn BooleanUdf>, cost: f64) -> Self {
        Self {
            node: Node::Leaf { udf, cost },
        }
    }

    /// `self AND other` (flattens nested conjunctions).
    pub fn and(self, other: PredicateExpr) -> Self {
        let mut parts = match self.node {
            Node::And(parts) => parts,
            node => vec![node],
        };
        match other.node {
            Node::And(mut more) => parts.append(&mut more),
            node => parts.push(node),
        }
        Self {
            node: Node::And(parts),
        }
    }

    /// `self OR other` (flattens nested disjunctions).
    pub fn or(self, other: PredicateExpr) -> Self {
        let mut parts = match self.node {
            Node::Or(parts) => parts,
            node => vec![node],
        };
        match other.node {
            Node::Or(mut more) => parts.append(&mut more),
            node => parts.push(node),
        }
        Self {
            node: Node::Or(parts),
        }
    }

    /// `NOT self` (double negation cancels). Also available as the `!`
    /// operator via the `std::ops::Not` impl.
    #[allow(clippy::should_implement_trait)] // it does — this is the no-import combinator spelling
    pub fn not(self) -> Self {
        !self
    }

    /// Number of leaf predicates in the tree.
    pub fn leaf_count(&self) -> usize {
        fn walk(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Not(inner) => walk(inner),
                Node::And(parts) | Node::Or(parts) => parts.iter().map(walk).sum(),
            }
        }
        walk(&self.node)
    }

    /// Static per-row cost estimate: a leaf's declared cost; a
    /// negation's inner cost; a conjunction/disjunction's *sum* of child
    /// costs (the worst case, before short-circuiting). Used to order
    /// siblings cheapest-first.
    pub fn cost(&self) -> f64 {
        node_cost(&self.node)
    }

    /// Whether every leaf cost is finite and nonnegative.
    pub fn costs_valid(&self) -> bool {
        fn walk(node: &Node) -> bool {
            match node {
                Node::Leaf { cost, .. } => cost.is_finite() && *cost >= 0.0,
                Node::Not(inner) => walk(inner),
                Node::And(parts) | Node::Or(parts) => parts.iter().all(walk),
            }
        }
        walk(&self.node)
    }

    /// The derived identity of the whole expression, or `None` if any
    /// leaf UDF opted out of identity ([`BooleanUdf::fingerprint`]).
    ///
    /// Sibling order is significant (as for [`crate::ConjunctionUdf`]):
    /// `a.and(b)` and `b.and(a)` answer identically but carry distinct
    /// ids — the id never claims an equivalence it cannot prove. Leaf
    /// costs are excluded: ordering cannot change answers.
    pub fn fingerprint(&self) -> Option<UdfId> {
        fn walk(node: &Node) -> Option<UdfId> {
            match node {
                Node::Leaf { udf, .. } => udf.fingerprint(),
                Node::Not(inner) => Some(UdfId::from_parts("expr.not", &[walk(inner)?.as_u64()])),
                Node::And(parts) => {
                    let ids = part_ids(parts)?;
                    Some(UdfId::from_parts("expr.and", &ids))
                }
                Node::Or(parts) => {
                    let ids = part_ids(parts)?;
                    Some(UdfId::from_parts("expr.or", &ids))
                }
            }
        }
        fn part_ids(parts: &[Node]) -> Option<Vec<u64>> {
            parts
                .iter()
                .map(|p| walk(p).map(|id| id.as_u64()))
                .collect()
        }
        walk(&self.node)
    }
}

/// `NOT expr` (double negation cancels). `std::ops::Not` is in the
/// prelude, so this is both `!expr` and the combinator `expr.not()`.
impl std::ops::Not for PredicateExpr {
    type Output = PredicateExpr;

    fn not(self) -> PredicateExpr {
        Self {
            node: match self.node {
                Node::Not(inner) => *inner,
                node => Node::Not(Box::new(node)),
            },
        }
    }
}

fn node_cost(node: &Node) -> f64 {
    match node {
        Node::Leaf { cost, .. } => *cost,
        Node::Not(inner) => node_cost(inner),
        Node::And(parts) | Node::Or(parts) => parts.iter().map(node_cost).sum(),
    }
}

/// Child evaluation order: cheapest subtree first, original order on
/// ties (stable sort), so evaluation is deterministic.
fn cost_order(parts: &[Node]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..parts.len()).collect();
    order.sort_by(|&a, &b| {
        node_cost(&parts[a])
            .partial_cmp(&node_cost(&parts[b]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

impl BooleanUdf for PredicateExpr {
    /// Per-row evaluation with short-circuiting in *stored* sibling
    /// order (no caching, no auditing — the expression acts as one
    /// opaque UDF, and this path is a hot loop, so it skips the
    /// cost-ordering bookkeeping, which cannot change answers anyway).
    /// Batched, audited, session-cached, cost-ordered evaluation is
    /// [`evaluate_expr_batch_ctx`].
    fn evaluate(&self, table: &Table, row: usize) -> bool {
        fn walk(node: &Node, table: &Table, row: usize) -> bool {
            match node {
                Node::Leaf { udf, .. } => udf.evaluate(table, row),
                Node::Not(inner) => !walk(inner, table, row),
                Node::And(parts) => parts.iter().all(|p| walk(p, table, row)),
                Node::Or(parts) => parts.iter().any(|p| walk(p, table, row)),
            }
        }
        walk(&self.node, table, row)
    }

    fn name(&self) -> &str {
        "expr"
    }

    fn fingerprint(&self) -> Option<UdfId> {
        PredicateExpr::fingerprint(self)
    }

    fn required_columns(&self) -> Vec<String> {
        fn walk(node: &Node, out: &mut Vec<String>) {
            match node {
                Node::Leaf { udf, .. } => out.extend(udf.required_columns()),
                Node::Not(inner) => walk(inner, out),
                Node::And(parts) | Node::Or(parts) => parts.iter().for_each(|p| walk(p, out)),
            }
        }
        let mut out = Vec::new();
        walk(&self.node, &mut out);
        out
    }
}

impl std::fmt::Debug for PredicateExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn walk(node: &Node, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match node {
                Node::Leaf { udf, cost } => write!(f, "{}@{cost}", udf.name()),
                Node::Not(inner) => {
                    write!(f, "not(")?;
                    walk(inner, f)?;
                    write!(f, ")")
                }
                Node::And(parts) | Node::Or(parts) => {
                    let op = if matches!(node, Node::And(_)) {
                        "and"
                    } else {
                        "or"
                    };
                    write!(f, "{op}(")?;
                    for (i, p) in parts.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        walk(p, f)?;
                    }
                    write!(f, ")")
                }
            }
        }
        walk(&self.node, f)
    }
}

/// Evaluates `expr` over `rows` in staged, audited batches: every leaf
/// gets its own [`UdfInvoker`] charging to `tracker` (and borrowing the
/// context's session cache, when present); inside each `AND`/`OR`,
/// children run cheapest-first over the surviving/undecided rows only.
/// Answers come back in input order and are identical across executor
/// backends and orderings.
///
/// Retrieval is *not* charged here — the caller decided to touch the
/// rows; each leaf invocation is charged one evaluation (or arrives as a
/// memo/reuse hit).
pub fn evaluate_expr_batch_ctx(
    expr: &PredicateExpr,
    table: &Table,
    rows: &[usize],
    tracker: &CostTracker,
    ctx: &ExecContext<'_>,
) -> Vec<bool> {
    eval_node(&expr.node, table, rows, tracker, ctx)
}

/// [`evaluate_expr_batch_ctx`] on a bare executor (no session cache).
pub fn evaluate_expr_batch(
    expr: &PredicateExpr,
    table: &Table,
    rows: &[usize],
    tracker: &CostTracker,
    executor: &dyn Executor,
) -> Vec<bool> {
    evaluate_expr_batch_ctx(expr, table, rows, tracker, &ExecContext::new(executor))
}

fn eval_node(
    node: &Node,
    table: &Table,
    rows: &[usize],
    tracker: &CostTracker,
    ctx: &ExecContext<'_>,
) -> Vec<bool> {
    match node {
        Node::Leaf { udf, .. } => {
            let invoker =
                UdfInvoker::with_tracker_and_context(udf.as_ref(), table, tracker.clone(), ctx);
            invoker.evaluate_batch(ctx.executor, rows)
        }
        Node::Not(inner) => eval_node(inner, table, rows, tracker, ctx)
            .into_iter()
            .map(|v| !v)
            .collect(),
        Node::And(parts) => {
            // Positions (into `rows`) still alive after the stages so far.
            let mut alive: Vec<usize> = (0..rows.len()).collect();
            for part in cost_order(parts) {
                if alive.is_empty() {
                    break;
                }
                let batch: Vec<usize> = alive.iter().map(|&pos| rows[pos]).collect();
                let verdicts = eval_node(&parts[part], table, &batch, tracker, ctx);
                alive = alive
                    .into_iter()
                    .zip(verdicts)
                    .filter(|&(_, passed)| passed)
                    .map(|(pos, _)| pos)
                    .collect();
            }
            let mut answers = vec![false; rows.len()];
            for pos in alive {
                answers[pos] = true;
            }
            answers
        }
        Node::Or(parts) => {
            // Positions not yet accepted by any earlier (cheaper) child.
            let mut undecided: Vec<usize> = (0..rows.len()).collect();
            let mut answers = vec![false; rows.len()];
            for part in cost_order(parts) {
                if undecided.is_empty() {
                    break;
                }
                let batch: Vec<usize> = undecided.iter().map(|&pos| rows[pos]).collect();
                let verdicts = eval_node(&parts[part], table, &batch, tracker, ctx);
                let mut rest = Vec::with_capacity(undecided.len());
                for (pos, passed) in undecided.into_iter().zip(verdicts) {
                    if passed {
                        answers[pos] = true;
                    } else {
                        rest.push(pos);
                    }
                }
                undecided = rest;
            }
            answers
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udf::OracleUdf;
    use expred_table::{DataType, Field, Schema, Value};

    fn table(cols: &[(&str, &[bool])]) -> Table {
        let schema = Schema::new(
            cols.iter()
                .map(|(name, _)| Field::new(*name, DataType::Bool))
                .collect(),
        );
        let n = cols[0].1.len();
        let rows = (0..n)
            .map(|r| cols.iter().map(|(_, vals)| Value::Bool(vals[r])).collect())
            .collect();
        Table::from_rows(schema, rows).unwrap()
    }

    fn leaf(col: &str) -> PredicateExpr {
        Pred::udf(OracleUdf::new(col))
    }

    #[test]
    fn combinators_compute_boolean_semantics() {
        let a = [true, true, false, false];
        let b = [true, false, true, false];
        let t = table(&[("a", &a), ("b", &b)]);
        let rows: Vec<usize> = (0..4).collect();
        let tracker = CostTracker::new();
        type Semantics = Box<dyn Fn(bool, bool) -> bool>;
        let cases: Vec<(PredicateExpr, Semantics)> = vec![
            (leaf("a").and(leaf("b")), Box::new(|x, y| x && y)),
            (leaf("a").or(leaf("b")), Box::new(|x, y| x || y)),
            (leaf("a").not(), Box::new(|x, _| !x)),
            (leaf("a").and(leaf("b").not()), Box::new(|x, y| x && !y)),
            (leaf("a").or(leaf("b")).not(), Box::new(|x, y| !(x || y))),
        ];
        for (expr, want) in cases {
            let got = evaluate_expr_batch(&expr, &t, &rows, &tracker, &expred_exec::Sequential);
            let expect: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| want(x, y)).collect();
            assert_eq!(got, expect, "{expr:?}");
            // Per-row evaluation (the BooleanUdf view) agrees.
            for (&row, &e) in rows.iter().zip(&expect) {
                assert_eq!(expr.evaluate(&t, row), e, "{expr:?} row {row}");
            }
        }
    }

    #[test]
    fn and_short_circuits_cheapest_first() {
        // `cheap` rejects half the rows; `pricey` must only be invoked on
        // the survivors, whichever side of the AND it was written on.
        let cheap_vals = [true, false, true, false, true, false];
        let pricey_vals = [true, true, false, false, true, true];
        let t = table(&[("cheap", &cheap_vals), ("pricey", &pricey_vals)]);
        let rows: Vec<usize> = (0..6).collect();
        for expr in [
            Pred::udf_with_cost(OracleUdf::new("pricey"), 10.0)
                .and(Pred::udf_with_cost(OracleUdf::new("cheap"), 1.0)),
            Pred::udf_with_cost(OracleUdf::new("cheap"), 1.0)
                .and(Pred::udf_with_cost(OracleUdf::new("pricey"), 10.0)),
        ] {
            let tracker = CostTracker::new();
            let answers = evaluate_expr_batch(&expr, &t, &rows, &tracker, &expred_exec::Sequential);
            let want: Vec<bool> = cheap_vals
                .iter()
                .zip(&pricey_vals)
                .map(|(&c, &p)| c && p)
                .collect();
            assert_eq!(answers, want);
            // 6 cheap probes + 3 survivors' pricey probes.
            assert_eq!(tracker.snapshot().evaluated, 6 + 3, "{expr:?}");
        }
    }

    #[test]
    fn or_skips_rows_an_earlier_child_accepted() {
        let cheap_vals = [true, false, true, false];
        let pricey_vals = [false, true, true, false];
        let t = table(&[("cheap", &cheap_vals), ("pricey", &pricey_vals)]);
        let rows: Vec<usize> = (0..4).collect();
        let expr = Pred::udf_with_cost(OracleUdf::new("pricey"), 10.0)
            .or(Pred::udf_with_cost(OracleUdf::new("cheap"), 1.0));
        let tracker = CostTracker::new();
        let answers = evaluate_expr_batch(&expr, &t, &rows, &tracker, &expred_exec::Sequential);
        assert_eq!(answers, vec![true, true, true, false]);
        // 4 cheap probes; only the 2 cheap-rejected rows reach pricey.
        assert_eq!(tracker.snapshot().evaluated, 4 + 2);
    }

    #[test]
    fn fingerprints_derive_and_poison() {
        let a = leaf("a");
        let b = leaf("b");
        let ab = a.clone().and(b.clone());
        let ba = b.clone().and(a.clone());
        assert!(ab.fingerprint().is_some());
        assert_ne!(ab.fingerprint(), ba.fingerprint(), "order is identity");
        assert_ne!(
            a.clone().and(b.clone()).fingerprint(),
            a.clone().or(b.clone()).fingerprint(),
            "operator is identity"
        );
        assert_ne!(a.clone().not().fingerprint(), a.fingerprint());
        assert_eq!(
            a.clone().not().not().fingerprint(),
            a.fingerprint(),
            "double negation cancels"
        );
        // Costs are not identity: reordering cannot change answers.
        assert_eq!(
            Pred::udf_with_cost(OracleUdf::new("a"), 5.0)
                .and(leaf("b"))
                .fingerprint(),
            ab.fingerprint()
        );
        struct Anon;
        impl BooleanUdf for Anon {
            fn evaluate(&self, _: &Table, _: usize) -> bool {
                true
            }
        }
        assert_eq!(leaf("a").and(Pred::udf(Anon)).fingerprint(), None);
    }

    #[test]
    fn flattening_and_counts() {
        let e = leaf("a").and(leaf("b")).and(leaf("c").or(leaf("d")));
        assert_eq!(e.leaf_count(), 4);
        assert_eq!(e.cost(), 4.0);
        assert!(e.costs_valid());
        assert!(!Pred::udf_with_cost(OracleUdf::new("a"), f64::NAN).costs_valid());
        assert!(!Pred::udf_with_cost(OracleUdf::new("a"), -1.0).costs_valid());
        let debug = format!("{e:?}");
        assert!(debug.starts_with("and("), "{debug}");
        assert!(debug.contains("or("), "{debug}");
    }

    #[test]
    fn session_cache_reuses_leaves_across_expressions() {
        let a = [true, false, true, false];
        let b = [true, true, false, false];
        let t = table(&[("a", &a), ("b", &b)]);
        let rows: Vec<usize> = (0..4).collect();
        let store = expred_exec::CacheStore::new();
        let ctx = expred_exec::ExecContext::sequential().with_cache(&store);

        let first = CostTracker::new();
        evaluate_expr_batch_ctx(&leaf("a").and(leaf("b")), &t, &rows, &first, &ctx);
        assert_eq!(first.snapshot().reuse_hits, 0, "cold session");

        // A *different* expression over the same leaves: every leaf probe
        // the conjunction already paid for arrives as reuse.
        let second = CostTracker::new();
        let answers =
            evaluate_expr_batch_ctx(&leaf("b").or(leaf("a").not()), &t, &rows, &second, &ctx);
        let want: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| y || !x).collect();
        assert_eq!(answers, want);
        let counts = second.snapshot();
        assert!(counts.reuse_hits > 0, "leaves must be shared: {counts:?}");
        // The AND evaluated `a` on all 4 rows and `b` on the 2 survivors;
        // the second expression demands b on 4 and a on the b-rejected 2.
        assert_eq!(counts.evaluated + counts.reuse_hits, 4 + 2);
    }

    #[test]
    fn backends_agree() {
        let n = 200;
        let a: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
        let b: Vec<bool> = (0..n).map(|i| i % 5 != 0).collect();
        let c: Vec<bool> = (0..n).map(|i| i % 7 == 0).collect();
        let t = table(&[("a", &a), ("b", &b), ("c", &c)]);
        let rows: Vec<usize> = (0..n).rev().collect();
        let expr = leaf("a").and(leaf("b").or(leaf("c").not())).or(leaf("c"));
        let seq_tracker = CostTracker::new();
        let want = evaluate_expr_batch(&expr, &t, &rows, &seq_tracker, &expred_exec::Sequential);
        let par_tracker = CostTracker::new();
        let got = evaluate_expr_batch(
            &expr,
            &t,
            &rows,
            &par_tracker,
            &expred_exec::Parallel::with_threads(4),
        );
        assert_eq!(want, got);
        assert_eq!(seq_tracker.snapshot(), par_tracker.snapshot());
    }
}
