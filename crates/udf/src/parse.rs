//! The predicate DSL: pypred-style strings → [`PredicateExpr`].
//!
//! Both exemplar workloads behind the paper drive evaluation from
//! predicate *strings* (`"fraud_free and (image_ok or not vip)"`), so the
//! serving tier needs a parser, not just combinators. The grammar is the
//! boolean core of pypred:
//!
//! ```text
//! expr    := or_expr
//! or_expr := and_expr ( "or" and_expr )*
//! and_expr:= not_expr ( "and" not_expr )*
//! not_expr:= "not" not_expr | primary
//! primary := "(" or_expr ")" | IDENT
//! IDENT   := [A-Za-z_][A-Za-z0-9_]*        (except the three keywords)
//! ```
//!
//! Precedence is `not` > `and` > `or` (so
//! `a or not b and c` ≡ `a or ((not b) and c)`), keywords are lowercase,
//! and whitespace separates tokens. Leaf identifiers carry no meaning
//! here: a caller-supplied [`UdfRegistry`] resolves each name to a
//! [`PredicateExpr`] (usually a single costed leaf; a registry may expand
//! a name into a whole subexpression). Unresolvable names are parse
//! errors, not runtime surprises.
//!
//! Every failure is a typed [`ParseError`] with a byte position — the
//! engine maps it to `EngineError::BadExpression`, so a bad predicate
//! string is a 400, never a panic:
//!
//! ```
//! use expred_udf::{parse_predicate, OracleRegistry};
//!
//! let registry = OracleRegistry::new();
//! let expr = parse_predicate("fraud_free and (image_ok or not vip)", &registry).unwrap();
//! assert_eq!(expr.leaf_count(), 3);
//! assert!(parse_predicate("fraud_free and (oops", &registry).is_err());
//! ```
//!
//! Parsed expressions remember their leaf names, so
//! [`PredicateExpr::render`] prints an equivalent string back
//! (`parse(render(e))` preserves the fingerprint and every answer).

use crate::expr::{Node, PredicateExpr};
use crate::udf::OracleUdf;
use std::collections::HashMap;

/// What went wrong, positioned at a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the problem was detected.
    pub position: usize,
    /// The specific failure.
    pub kind: ParseErrorKind,
}

/// The specific parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The input contained no tokens at all.
    EmptyInput,
    /// A character no token may contain (e.g. `&`, `!`).
    UnexpectedChar(char),
    /// A well-formed token in a position the grammar forbids
    /// (e.g. `and` where an operand is required).
    UnexpectedToken(String),
    /// Input ended while an operand or `)` was still required.
    UnexpectedEnd,
    /// A `)` with no matching `(`.
    UnmatchedParen,
    /// An identifier the [`UdfRegistry`] could not resolve.
    UnknownLeaf(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: ", self.position)?;
        match &self.kind {
            ParseErrorKind::EmptyInput => write!(f, "empty predicate"),
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseErrorKind::UnexpectedToken(t) => write!(f, "unexpected token {t:?}"),
            ParseErrorKind::UnexpectedEnd => write!(f, "unexpected end of predicate"),
            ParseErrorKind::UnmatchedParen => write!(f, "unmatched ')'"),
            ParseErrorKind::UnknownLeaf(name) => write!(f, "unknown predicate name {name:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Resolves DSL leaf names to expressions. The parser asks once per
/// occurrence; a registry may return a single costed leaf (the common
/// case — see [`OracleRegistry`]) or expand a name into a whole
/// subexpression (macro-style).
pub trait UdfRegistry {
    /// The expression `name` stands for, or `None` if unknown (the
    /// parser reports [`ParseErrorKind::UnknownLeaf`]).
    fn resolve(&self, name: &str) -> Option<PredicateExpr>;
}

/// Any map of prepared expressions is a registry.
impl UdfRegistry for HashMap<String, PredicateExpr> {
    fn resolve(&self, name: &str) -> Option<PredicateExpr> {
        self.get(name).cloned()
    }
}

/// The serving tier's registry: every identifier resolves to an
/// [`OracleUdf`] leaf reading the boolean column of that name, at
/// `default_cost` unless [`OracleRegistry::with_cost`] declared one.
/// Column existence is checked later by strategy validation (the parser
/// cannot see the table).
#[derive(Debug, Clone)]
pub struct OracleRegistry {
    default_cost: f64,
    costs: HashMap<String, f64>,
}

impl OracleRegistry {
    /// Every name resolves at [`crate::DEFAULT_LEAF_COST`].
    pub fn new() -> Self {
        Self::with_default_cost(crate::expr::DEFAULT_LEAF_COST)
    }

    /// Every name resolves at `default_cost` unless overridden.
    pub fn with_default_cost(default_cost: f64) -> Self {
        Self {
            default_cost,
            costs: HashMap::new(),
        }
    }

    /// Declares a per-name evaluation cost.
    pub fn with_cost(mut self, name: impl Into<String>, cost: f64) -> Self {
        self.costs.insert(name.into(), cost);
        self
    }
}

impl Default for OracleRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl UdfRegistry for OracleRegistry {
    fn resolve(&self, name: &str) -> Option<PredicateExpr> {
        let cost = self.costs.get(name).copied().unwrap_or(self.default_cost);
        Some(PredicateExpr::udf_with_cost(OracleUdf::new(name), cost))
    }
}

/// Parses a pypred-style predicate string (see the module docs for the
/// grammar), resolving each identifier through `registry`.
pub fn parse_predicate(
    input: &str,
    registry: &dyn UdfRegistry,
) -> Result<PredicateExpr, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens: &tokens,
        next: 0,
        registry,
        end: input.len(),
    };
    let node = parser.or_expr()?;
    if let Some(tok) = parser.peek() {
        return Err(match tok.kind {
            TokenKind::RParen => ParseError {
                position: tok.position,
                kind: ParseErrorKind::UnmatchedParen,
            },
            _ => ParseError {
                position: tok.position,
                kind: ParseErrorKind::UnexpectedToken(tok.text.to_string()),
            },
        });
    }
    Ok(PredicateExpr::from_node(node))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokenKind {
    And,
    Or,
    Not,
    LParen,
    RParen,
    Ident,
}

#[derive(Debug)]
struct Token<'a> {
    kind: TokenKind,
    text: &'a str,
    position: usize,
}

fn tokenize(input: &str) -> Result<Vec<Token<'_>>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(pos, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '(' || c == ')' {
            chars.next();
            tokens.push(Token {
                kind: if c == '(' {
                    TokenKind::LParen
                } else {
                    TokenKind::RParen
                },
                text: &input[pos..pos + 1],
                position: pos,
            });
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut end = pos;
            while let Some(&(i, c)) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    end = i + c.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            let text = &input[pos..end];
            let kind = match text {
                "and" => TokenKind::And,
                "or" => TokenKind::Or,
                "not" => TokenKind::Not,
                _ => TokenKind::Ident,
            };
            tokens.push(Token {
                kind,
                text,
                position: pos,
            });
        } else {
            return Err(ParseError {
                position: pos,
                kind: ParseErrorKind::UnexpectedChar(c),
            });
        }
    }
    if tokens.is_empty() {
        return Err(ParseError {
            position: 0,
            kind: ParseErrorKind::EmptyInput,
        });
    }
    Ok(tokens)
}

struct Parser<'a, 'r> {
    tokens: &'a [Token<'a>],
    next: usize,
    registry: &'r dyn UdfRegistry,
    /// Byte length of the input, for positioning `UnexpectedEnd`.
    end: usize,
}

impl<'a> Parser<'a, '_> {
    fn peek(&self) -> Option<&Token<'a>> {
        self.tokens.get(self.next)
    }

    fn advance(&mut self) -> Option<&'a Token<'a>> {
        let tok = self.tokens.get(self.next)?;
        self.next += 1;
        Some(tok)
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.peek().is_some_and(|t| t.kind == kind) {
            self.next += 1;
            true
        } else {
            false
        }
    }

    fn or_expr(&mut self) -> Result<Node, ParseError> {
        let mut parts = vec![self.and_expr()?];
        while self.eat(TokenKind::Or) {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Node::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<Node, ParseError> {
        let mut parts = vec![self.not_expr()?];
        while self.eat(TokenKind::And) {
            parts.push(self.not_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Node::And(parts)
        })
    }

    fn not_expr(&mut self) -> Result<Node, ParseError> {
        if self.eat(TokenKind::Not) {
            // `not not x` cancels, matching the `!` combinator.
            return Ok(match self.not_expr()? {
                Node::Not(inner) => *inner,
                node => Node::Not(Box::new(node)),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Node, ParseError> {
        let Some(tok) = self.advance() else {
            return Err(ParseError {
                position: self.end,
                kind: ParseErrorKind::UnexpectedEnd,
            });
        };
        match tok.kind {
            TokenKind::LParen => {
                let open_position = tok.position;
                let node = self.or_expr()?;
                if self.eat(TokenKind::RParen) {
                    Ok(node)
                } else {
                    // Report the unclosed `(`: by construction the next
                    // token (if any) already failed to continue the
                    // subexpression, so the open paren is the problem.
                    Err(match self.peek() {
                        Some(next) => ParseError {
                            position: next.position,
                            kind: ParseErrorKind::UnexpectedToken(next.text.to_string()),
                        },
                        None => ParseError {
                            position: open_position,
                            kind: ParseErrorKind::UnexpectedEnd,
                        },
                    })
                }
            }
            TokenKind::Ident => match self.registry.resolve(tok.text) {
                Some(expr) => Ok(expr.with_leaf_name(tok.text).node),
                None => Err(ParseError {
                    position: tok.position,
                    kind: ParseErrorKind::UnknownLeaf(tok.text.to_string()),
                }),
            },
            TokenKind::RParen => Err(ParseError {
                position: tok.position,
                kind: ParseErrorKind::UnmatchedParen,
            }),
            TokenKind::And | TokenKind::Or | TokenKind::Not => Err(ParseError {
                position: tok.position,
                kind: ParseErrorKind::UnexpectedToken(tok.text.to_string()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostTracker;
    use crate::expr::{evaluate_expr_batch, Pred};
    use crate::udf::BooleanUdf;
    use expred_table::{DataType, Field, Schema, Table, Value};

    fn parse(input: &str) -> Result<PredicateExpr, ParseError> {
        parse_predicate(input, &OracleRegistry::new())
    }

    fn combinator(input: &str) -> PredicateExpr {
        parse(input).unwrap_or_else(|e| panic!("{input:?}: {e}"))
    }

    #[test]
    fn parses_leaves_operators_and_parens() {
        assert_eq!(combinator("a").leaf_count(), 1);
        assert_eq!(combinator("a and b and c").leaf_count(), 3);
        assert_eq!(
            combinator("fraud_free and (image_ok or not vip)").leaf_count(),
            3
        );
        assert_eq!(combinator("((a))").leaf_count(), 1);
        assert_eq!(
            combinator("not not a").fingerprint(),
            combinator("a").fingerprint()
        );
    }

    #[test]
    fn precedence_is_not_over_and_over_or() {
        let reg = OracleRegistry::new();
        let sugar = parse_predicate("a or not b and c", &reg).unwrap();
        let explicit = parse_predicate("a or ((not b) and c)", &reg).unwrap();
        assert_eq!(sugar.fingerprint(), explicit.fingerprint());
        let left = parse_predicate("(a or not b) and c", &reg).unwrap();
        assert_ne!(sugar.fingerprint(), left.fingerprint());
    }

    #[test]
    fn parsed_trees_match_combinator_built_trees() {
        let leaf = |n: &str| Pred::udf(OracleUdf::new(n));
        let built = leaf("a").and(leaf("b").or(leaf("c").not()));
        assert_eq!(
            combinator("a and (b or not c)").fingerprint(),
            built.fingerprint()
        );
        // Chained same-op parses flatten exactly like the combinators.
        assert_eq!(
            combinator("a and b and c").fingerprint(),
            leaf("a").and(leaf("b")).and(leaf("c")).fingerprint()
        );
    }

    #[test]
    fn registry_costs_and_custom_registries_apply() {
        let reg = OracleRegistry::with_default_cost(2.0).with_cost("pricey", 50.0);
        let expr = parse_predicate("cheap and pricey", &reg).unwrap();
        assert_eq!(expr.cost(), 52.0);

        let mut macros: HashMap<String, PredicateExpr> = HashMap::new();
        macros.insert(
            "combo".to_string(),
            Pred::udf(OracleUdf::new("a")).or(Pred::udf(OracleUdf::new("b"))),
        );
        let expanded = parse_predicate("not combo", &macros).unwrap();
        assert_eq!(expanded.leaf_count(), 2);
        assert_eq!(
            expanded.render(),
            None,
            "a macro expansion has no single leaf to name"
        );
        assert!(parse_predicate("combo and other", &macros).is_err());
    }

    #[test]
    fn render_round_trips_through_the_parser() {
        for input in [
            "a",
            "not a",
            "a and b",
            "a or b and not c",
            "(a or b) and c",
            "not (a or b) and not not c or d",
            "a and b and (c or d or not e)",
        ] {
            let expr = combinator(input);
            let rendered = expr.render().expect("parsed leaves are named");
            let reparsed = combinator(&rendered);
            assert_eq!(
                reparsed.fingerprint(),
                expr.fingerprint(),
                "{input:?} rendered as {rendered:?}"
            );
        }
    }

    #[test]
    fn parsed_expressions_evaluate() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Bool),
            Field::new("b", DataType::Bool),
        ]);
        let rows = [(true, true), (true, false), (false, true), (false, false)]
            .iter()
            .map(|&(a, b)| vec![Value::Bool(a), Value::Bool(b)])
            .collect();
        let t = Table::from_rows(schema, rows).unwrap();
        let expr = combinator("a and not b");
        let tracker = CostTracker::new();
        let got = evaluate_expr_batch(&expr, &t, &[0, 1, 2, 3], &tracker, &expred_exec::Sequential)
            .unwrap();
        assert_eq!(got, vec![false, true, false, false]);
        assert_eq!(BooleanUdf::required_columns(&expr), vec!["a", "b"]);
    }

    #[test]
    fn error_paths_are_typed_and_positioned() {
        let err = |input: &str| parse(input).expect_err(input);
        assert_eq!(err("").kind, ParseErrorKind::EmptyInput);
        assert_eq!(err("   ").kind, ParseErrorKind::EmptyInput);
        assert_eq!(err("a & b").kind, ParseErrorKind::UnexpectedChar('&'));
        assert_eq!(err("a & b").position, 2);
        assert_eq!(
            err("a and and b").kind,
            ParseErrorKind::UnexpectedToken("and".into())
        );
        assert_eq!(err("a b").kind, ParseErrorKind::UnexpectedToken("b".into()));
        assert_eq!(err("a and").kind, ParseErrorKind::UnexpectedEnd);
        assert_eq!(err("not").kind, ParseErrorKind::UnexpectedEnd);
        assert_eq!(err("(a or b").kind, ParseErrorKind::UnexpectedEnd);
        assert_eq!(err("a)").kind, ParseErrorKind::UnmatchedParen);
        assert_eq!(err(")").kind, ParseErrorKind::UnmatchedParen);
        assert_eq!(err("()").kind, ParseErrorKind::UnmatchedParen);
        assert_eq!(
            err("and a").kind,
            ParseErrorKind::UnexpectedToken("and".into())
        );
        // Keywords are lowercase; `AND` is just an (unknown-free) ident —
        // here every ident resolves, so this parses as `a AND b` idents?
        // No: `a AND b` is three idents in a row — a token error.
        assert_eq!(
            err("a AND b").kind,
            ParseErrorKind::UnexpectedToken("AND".into())
        );
        // Unknown leaves are typed errors under a closed registry.
        let closed: HashMap<String, PredicateExpr> = HashMap::new();
        let unknown = parse_predicate("ghost", &closed).expect_err("closed registry");
        assert_eq!(unknown.kind, ParseErrorKind::UnknownLeaf("ghost".into()));
        assert!(unknown.to_string().contains("ghost"));
        // Errors display with their byte position.
        assert!(err("a and").to_string().contains("at byte 5"));
    }
}
