//! Expensive-UDF abstraction for the `expred` workspace.
//!
//! The paper's object of study is a selection query whose predicate is an
//! expensive black-box boolean function. This crate models that function
//! and — critically for a faithful reproduction — *audits* every access to
//! it:
//!
//! * [`udf`] — the [`BooleanUdf`] trait plus implementations: the
//!   evaluation-protocol [`OracleUdf`] (answers from a hidden label
//!   column), latency simulation, answer noise, and conjunctions.
//! * [`cost`] — the `(o_r, o_e)` cost model and a shared, thread-safe
//!   [`CostTracker`].
//! * [`invoker`] — [`UdfInvoker`], the only gateway algorithm code may use:
//!   it charges every retrieval/evaluation and memoizes answers so sampled
//!   tuples are never paid for twice — within a query through its own
//!   memo, and across queries through a borrowed
//!   [`expred_exec::CacheHandle`] when running inside a session
//!   ([`UdfInvoker::with_context`]).
//! * [`expr`] — [`PredicateExpr`] (alias [`Pred`]): and/or/not
//!   expressions over UDFs with derived cache identities, evaluated in
//!   staged batches with cost-ordered short-circuiting through the
//!   session cache ([`evaluate_expr_batch_ctx`]).
//! * [`parse`] — the predicate DSL ([`parse_predicate`]): pypred-style
//!   strings (`"a and (b or not c)"`) resolved to expressions through a
//!   caller-supplied [`UdfRegistry`], with typed positioned errors.
//! * [`optimize`] — [`optimize_expr`], the selectivity-aware rewrite
//!   pass: normalize/dedup, Kim-style factoring of shared conjuncts, and
//!   sibling reordering by observed pass rates
//!   ([`expred_exec::SelectivityTracker`]). Answers are byte-identical;
//!   only the bill drops.

pub mod cost;
pub mod expr;
pub mod invoker;
pub mod optimize;
pub mod parse;
pub mod udf;

pub use cost::{CostCounts, CostModel, CostTracker};
pub use expr::{
    evaluate_expr_batch, evaluate_expr_batch_ctx, InvalidCostsError, Pred, PredicateExpr,
    DEFAULT_LEAF_COST,
};
pub use invoker::{cache_namespace, UdfInvoker};
pub use optimize::optimize_expr;
pub use parse::{parse_predicate, OracleRegistry, ParseError, ParseErrorKind, UdfRegistry};
pub use udf::{BooleanUdf, ConjunctionUdf, NoisyUdf, OracleUdf, SlowUdf, UdfId};
