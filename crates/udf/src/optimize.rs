//! Selectivity-aware expression optimizer.
//!
//! Static cost-ordered short-circuiting (what the staged evaluator does
//! by default) is the best one can do knowing only declared costs — but
//! Kim et al. (*Optimizing Query Predicates with Disjunctions for
//! Column-Oriented Engines*) show exactly where it breaks: with equal
//! declared costs, a conjunct that almost never rejects still runs first,
//! and a disjunction of conjunctions repeats work the disjuncts share.
//! [`optimize_expr`] fixes both with statistics the session already has —
//! the [`SelectivityTracker`] fed by audited invokers — in three
//! answer-preserving passes:
//!
//! 1. **Normalize** — flatten nested same-operator nodes, collapse
//!    double negation, drop duplicate siblings (same
//!    [`PredicateExpr::fingerprint`]): `a AND a` pays once.
//! 2. **Factor** (Kim-style) — pull conjuncts common to *every* disjunct
//!    out of an `OR` of `AND`s (`(c∧a) ∨ (c∧b)` → `c ∧ (a∨b)`, with
//!    absorption `(c∧a) ∨ c` → `c`), and dually for an `AND` of `OR`s.
//!    The shared predicate is then evaluated in one staged batch instead
//!    of per-disjunct (the session memo already deduped the *rows*;
//!    factoring also fixes the *ordering*, since the cheap shared
//!    conjunct now short-circuits the whole disjunction).
//! 3. **Reorder** — rank `AND` children by `cost / (1 − selectivity)`
//!    (cheapest expected cost per rejected row first) and `OR` children
//!    by `cost / selectivity` (per accepted row), using observed leaf
//!    pass rates where the tracker has them and a 0.5 prior where it
//!    doesn't. With no observations every rank is `2·cost`, so the
//!    result degrades to exactly the static cost order.
//!
//! The output is *pinned* ([`PredicateExpr::is_pinned`]): the staged
//! evaluator honors the chosen sibling order instead of re-sorting by
//! declared cost. Answers are byte-identical by construction — the
//! rewrites are boolean identities and order never changes answers —
//! only the bill drops. Estimated selectivities compose structurally
//! (`Not`: `1−s`; `And`: `∏s`; `Or`: `1−∏(1−s)`), i.e. assuming
//! independence — the same simplification the paper's §5 extension makes
//! before correlation learning takes over.

use crate::expr::{Node, PredicateExpr};
use crate::invoker::cache_namespace;
use expred_exec::SelectivityTracker;
use expred_table::Table;

/// Prior pass rate for a leaf with no observations. Chosen so that an
/// unobserved workload reproduces the static cost order exactly (every
/// rank becomes `2·cost`).
const PRIOR_PASS_RATE: f64 = 0.5;

/// Rewrites `expr` into an answer-equivalent, pinned expression ordered
/// by observed selectivities (see the module docs). `selectivity` is the
/// session's tracker — pass `None` (or an empty tracker) to get
/// normalization + factoring with static cost ordering.
///
/// Pass rates are looked up per `(udf, table version)` namespace, so the
/// optimizer never carries observations across a table mutation.
pub fn optimize_expr(
    expr: &PredicateExpr,
    table: &Table,
    selectivity: Option<&SelectivityTracker>,
) -> PredicateExpr {
    let node = normalize(expr.node.clone());
    let node = factor(node);
    // Factoring can expose new same-op nesting (`c ∧ (a∨b)` under an
    // outer AND) and new duplicate siblings — normalize again.
    let node = normalize(node);
    let node = reorder(node, table, selectivity);
    let mut optimized = PredicateExpr::from_node(node);
    optimized.pinned = true;
    optimized
}

/// Flattens same-op nesting, collapses double negation, drops duplicate
/// siblings by fingerprint (fingerprint-less leaves are never dropped:
/// without identity, equality cannot be proven), unwraps single-child
/// `AND`/`OR`.
fn normalize(node: Node) -> Node {
    match node {
        leaf @ Node::Leaf { .. } => leaf,
        Node::Not(inner) => match normalize(*inner) {
            Node::Not(cancelled) => *cancelled,
            inner => Node::Not(Box::new(inner)),
        },
        Node::And(parts) => rebuild(parts, true),
        Node::Or(parts) => rebuild(parts, false),
    }
}

fn rebuild(parts: Vec<Node>, is_and: bool) -> Node {
    let mut flat = Vec::with_capacity(parts.len());
    for part in parts {
        match normalize(part) {
            Node::And(nested) if is_and => flat.extend(nested),
            Node::Or(nested) if !is_and => flat.extend(nested),
            node => flat.push(node),
        }
    }
    let mut seen = Vec::new();
    let mut unique = Vec::with_capacity(flat.len());
    for node in flat {
        match node_fingerprint(&node) {
            Some(id) if seen.contains(&id) => continue,
            Some(id) => seen.push(id),
            None => {}
        }
        unique.push(node);
    }
    if unique.len() == 1 {
        unique.pop().expect("one child")
    } else if is_and {
        Node::And(unique)
    } else {
        Node::Or(unique)
    }
}

fn node_fingerprint(node: &Node) -> Option<u64> {
    PredicateExpr::from_node(node.clone())
        .fingerprint()
        .map(|id| id.as_u64())
}

/// Kim-style factoring, applied bottom-up: conjuncts common to every
/// disjunct of an `OR` hoist out front (`(c∧a) ∨ (c∧b)` → `c ∧ (a∨b)`);
/// a disjunct left empty absorbs the whole disjunction
/// (`(c∧a) ∨ c` → `c`). Dually for an `AND` of `OR`s. Children without
/// fingerprints never participate (commonality cannot be proven).
fn factor(node: Node) -> Node {
    match node {
        leaf @ Node::Leaf { .. } => leaf,
        Node::Not(inner) => Node::Not(Box::new(factor(*inner))),
        Node::Or(parts) => {
            let parts: Vec<Node> = parts.into_iter().map(factor).collect();
            factor_siblings(parts, false)
        }
        Node::And(parts) => {
            let parts: Vec<Node> = parts.into_iter().map(factor).collect();
            factor_siblings(parts, true)
        }
    }
}

/// Factors `parts` of an `AND` (`is_and`) or `OR` node. For an `OR`:
/// each disjunct is viewed as a set of conjuncts (a non-`AND` disjunct is
/// a singleton set); fingerprinted conjuncts present in *every* disjunct
/// hoist into a common prefix.
fn factor_siblings(parts: Vec<Node>, is_and: bool) -> Node {
    // Inner lists: an OR's disjuncts split into conjuncts; an AND's
    // conjuncts split into disjuncts.
    let split = |node: &Node| -> Vec<Node> {
        match node {
            Node::And(inner) if !is_and => inner.clone(),
            Node::Or(inner) if is_and => inner.clone(),
            other => vec![other.clone()],
        }
    };
    let wrap_outer = |parts: Vec<Node>| {
        if is_and {
            Node::And(parts)
        } else {
            Node::Or(parts)
        }
    };
    if parts.len() < 2 {
        let mut parts = parts;
        return match parts.pop() {
            Some(only) => only,
            None => wrap_outer(parts),
        };
    }
    let groups: Vec<Vec<Node>> = parts.iter().map(split).collect();
    // Candidate commons: fingerprinted members of the first group that
    // appear (by fingerprint) in every other group.
    let first_ids: Vec<(u64, &Node)> = groups[0]
        .iter()
        .filter_map(|n| node_fingerprint(n).map(|id| (id, n)))
        .collect();
    let common: Vec<(u64, Node)> = first_ids
        .into_iter()
        .filter(|(id, _)| {
            groups[1..]
                .iter()
                .all(|group| group.iter().any(|n| node_fingerprint(n) == Some(*id)))
        })
        .map(|(id, n)| (id, n.clone()))
        .collect();
    if common.is_empty() {
        return wrap_outer(parts);
    }
    let common_ids: Vec<u64> = common.iter().map(|(id, _)| *id).collect();
    // Remainders: each group minus one occurrence of every common member.
    let mut absorbed = false;
    let remainders: Vec<Node> = groups
        .iter()
        .map(|group| {
            let mut pending = common_ids.clone();
            let rest: Vec<Node> = group
                .iter()
                .filter(|n| {
                    if let Some(id) = node_fingerprint(n) {
                        if let Some(at) = pending.iter().position(|&p| p == id) {
                            pending.swap_remove(at);
                            return false;
                        }
                    }
                    true
                })
                .cloned()
                .collect();
            if rest.is_empty() {
                absorbed = true;
            }
            wrap_dual(rest, is_and)
        })
        .collect();
    let common_nodes: Vec<Node> = common.into_iter().map(|(_, n)| n).collect();
    if absorbed {
        // OR case: some disjunct was *exactly* the common conjuncts, so
        // the whole OR collapses to them (`(c∧a) ∨ c` ≡ `c`). AND case
        // dually (`(c∨a) ∧ c` ≡ `c`).
        return wrap_dual(common_nodes, is_and);
    }
    // OR case: And[common..., Or[remainders]]. AND case: Or[common...,
    // And[remainders]].
    let mut out = common_nodes;
    out.push(wrap_outer(remainders));
    wrap_dual(out, is_and)
}

/// Wraps `nodes` in the *dual* of the outer operator (an OR's
/// conjunct-sets rebuild as `AND`s and vice versa), unwrapping the
/// single-node case.
fn wrap_dual(mut nodes: Vec<Node>, outer_is_and: bool) -> Node {
    if nodes.len() == 1 {
        nodes.pop().expect("one node")
    } else if outer_is_and {
        Node::Or(nodes)
    } else {
        Node::And(nodes)
    }
}

/// Reorders every `AND`/`OR`'s children by expected value per unit cost,
/// recursively. Stable sort with a total key ([`f64::total_cmp`],
/// non-finite ranks clamped to `+inf`): ties and unobserved workloads
/// keep the static order, and ordering is always deterministic.
fn reorder(node: Node, table: &Table, selectivity: Option<&SelectivityTracker>) -> Node {
    match node {
        leaf @ Node::Leaf { .. } => leaf,
        Node::Not(inner) => Node::Not(Box::new(reorder(*inner, table, selectivity))),
        Node::And(parts) => {
            let parts: Vec<Node> = parts
                .into_iter()
                .map(|p| reorder(p, table, selectivity))
                .collect();
            // AND: a child is useful when it *rejects*; expected cost per
            // rejected row is cost / (1 − sel). A never-rejecting child
            // (sel ≥ 1) ranks +inf — run it last.
            Node::And(rank_sorted(
                parts,
                |cost, sel| {
                    let reject = 1.0 - sel;
                    if reject > 0.0 {
                        cost / reject
                    } else {
                        f64::INFINITY
                    }
                },
                table,
                selectivity,
            ))
        }
        Node::Or(parts) => {
            let parts: Vec<Node> = parts
                .into_iter()
                .map(|p| reorder(p, table, selectivity))
                .collect();
            // OR: a child is useful when it *accepts*; expected cost per
            // accepted row is cost / sel. A never-accepting child
            // (sel ≤ 0) ranks +inf — run it last.
            Node::Or(rank_sorted(
                parts,
                |cost, sel| {
                    if sel > 0.0 {
                        cost / sel
                    } else {
                        f64::INFINITY
                    }
                },
                table,
                selectivity,
            ))
        }
    }
}

fn rank_sorted(
    parts: Vec<Node>,
    rank: impl Fn(f64, f64) -> f64,
    table: &Table,
    selectivity: Option<&SelectivityTracker>,
) -> Vec<Node> {
    let keys: Vec<f64> = parts
        .iter()
        .map(|p| {
            let r = rank(
                PredicateExpr::from_node(p.clone()).cost(),
                estimate_pass_rate(p, table, selectivity),
            );
            if r.is_finite() {
                r
            } else {
                f64::INFINITY
            }
        })
        .collect();
    let mut order: Vec<usize> = (0..parts.len()).collect();
    order.sort_by(|&a, &b| keys[a].total_cmp(&keys[b]));
    // Reassemble in rank order without cloning the subtrees.
    let mut slots: Vec<Option<Node>> = parts.into_iter().map(Some).collect();
    order
        .into_iter()
        .map(|i| slots[i].take().expect("each index once"))
        .collect()
}

/// Estimated pass rate of a subtree: observed per-leaf rates where the
/// tracker has them ([`PRIOR_PASS_RATE`] otherwise), composed assuming
/// independence (`Not`: `1−s`; `And`: `∏s`; `Or`: `1−∏(1−s)`).
fn estimate_pass_rate(node: &Node, table: &Table, selectivity: Option<&SelectivityTracker>) -> f64 {
    match node {
        Node::Leaf { udf, .. } => selectivity
            .zip(cache_namespace(udf.as_ref(), table))
            .and_then(|(tracker, ns)| tracker.pass_rate(ns))
            .unwrap_or(PRIOR_PASS_RATE),
        Node::Not(inner) => 1.0 - estimate_pass_rate(inner, table, selectivity),
        Node::And(parts) => parts
            .iter()
            .map(|p| estimate_pass_rate(p, table, selectivity))
            .product(),
        Node::Or(parts) => {
            1.0 - parts
                .iter()
                .map(|p| 1.0 - estimate_pass_rate(p, table, selectivity))
                .product::<f64>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostTracker;
    use crate::expr::{evaluate_expr_batch_ctx, Pred};
    use crate::udf::OracleUdf;
    use expred_exec::ExecContext;
    use expred_table::{DataType, Field, Schema, Value};

    fn table(cols: &[(&str, &[bool])]) -> Table {
        let schema = Schema::new(
            cols.iter()
                .map(|(name, _)| Field::new(*name, DataType::Bool))
                .collect(),
        );
        let n = cols[0].1.len();
        let rows = (0..n)
            .map(|r| cols.iter().map(|(_, vals)| Value::Bool(vals[r])).collect())
            .collect();
        Table::from_rows(schema, rows).unwrap()
    }

    fn leaf(col: &str) -> PredicateExpr {
        Pred::udf(OracleUdf::new(col))
    }

    /// Teaches `tracker` each column's true pass rate by running every
    /// leaf once through an audited, selectivity-fed evaluation.
    fn observe(tracker: &SelectivityTracker, t: &Table, cols: &[&str]) {
        let ctx = ExecContext::sequential().with_selectivity(tracker);
        let rows: Vec<usize> = (0..t.num_rows()).collect();
        for col in cols {
            evaluate_expr_batch_ctx(&leaf(col), t, &rows, &CostTracker::new(), &ctx).unwrap();
        }
    }

    #[test]
    fn normalization_dedups_and_flattens() {
        let expr = leaf("a").and(leaf("a")).and(leaf("b").or(leaf("b")));
        let t = table(&[("a", &[true]), ("b", &[true])]);
        let optimized = optimize_expr(&expr, &t, None);
        assert_eq!(optimized.leaf_count(), 2, "{optimized:?}");
        assert!(optimized.is_pinned());
        // `a AND a` alone collapses to the bare leaf.
        let single = optimize_expr(&leaf("a").and(leaf("a")), &t, None);
        assert_eq!(single.leaf_count(), 1);
        assert_eq!(single.fingerprint(), leaf("a").fingerprint());
        // Double negation collapses.
        let double = optimize_expr(&leaf("a").not().not(), &t, None);
        assert_eq!(double.fingerprint(), leaf("a").fingerprint());
    }

    #[test]
    fn factoring_hoists_common_conjuncts() {
        let t = table(&[("c", &[true]), ("a", &[true]), ("b", &[true])]);
        // (c ∧ a) ∨ (c ∧ b)  →  c ∧ (a ∨ b)
        let expr = leaf("c").and(leaf("a")).or(leaf("c").and(leaf("b")));
        let optimized = optimize_expr(&expr, &t, None);
        let want = leaf("c").and(leaf("a").or(leaf("b")));
        assert_eq!(optimized.fingerprint(), want.fingerprint(), "{optimized:?}");
        // Absorption: (c ∧ a) ∨ c → c.
        let absorbed = optimize_expr(&leaf("c").and(leaf("a")).or(leaf("c")), &t, None);
        assert_eq!(absorbed.fingerprint(), leaf("c").fingerprint());
        // Dual: (c ∨ a) ∧ (c ∨ b) → c ∨ (a ∧ b).
        let dual = optimize_expr(
            &leaf("c").or(leaf("a")).and(leaf("c").or(leaf("b"))),
            &t,
            None,
        );
        let dual_want = leaf("c").or(leaf("a").and(leaf("b")));
        assert_eq!(dual.fingerprint(), dual_want.fingerprint(), "{dual:?}");
        // No common conjunct → no factoring; the reorder pass still runs
        // (the lone leaf `c` out-ranks the conjunction under the prior).
        let untouched = optimize_expr(&leaf("a").and(leaf("b")).or(leaf("c")), &t, None);
        assert_eq!(
            untouched.fingerprint(),
            leaf("c").or(leaf("a").and(leaf("b"))).fingerprint(),
            "{untouched:?}"
        );
    }

    #[test]
    fn unobserved_reordering_matches_static_cost_order() {
        let t = table(&[("a", &[true]), ("b", &[true])]);
        let pricey_first = Pred::udf_with_cost(OracleUdf::new("a"), 10.0)
            .and(Pred::udf_with_cost(OracleUdf::new("b"), 1.0));
        let optimized = optimize_expr(&pricey_first, &t, None);
        // With the 0.5 prior, rank = 2·cost: the cheap leaf moves first.
        assert_eq!(
            optimized.fingerprint(),
            Pred::udf_with_cost(OracleUdf::new("b"), 1.0)
                .and(Pred::udf_with_cost(OracleUdf::new("a"), 10.0))
                .fingerprint(),
            "{optimized:?}"
        );
    }

    #[test]
    fn observed_selectivities_beat_static_order_on_the_bill() {
        // `common` passes 90%, `rare` passes 10%; equal declared costs,
        // so the static order is the written order: common first.
        let n = 200;
        let common_vals: Vec<bool> = (0..n).map(|i| i % 10 != 0).collect();
        let rare_vals: Vec<bool> = (0..n).map(|i| i % 10 == 0).collect();
        let t = table(&[("common", &common_vals), ("rare", &rare_vals)]);
        let rows: Vec<usize> = (0..n).collect();
        let tracker = SelectivityTracker::new();
        observe(&tracker, &t, &["common", "rare"]);

        let expr = leaf("common").and(leaf("rare"));
        let optimized = optimize_expr(&expr, &t, Some(&tracker));
        assert!(optimized.is_pinned());

        let static_bill = {
            let costs = CostTracker::new();
            let got = evaluate_expr_batch_ctx(&expr, &t, &rows, &costs, &ExecContext::sequential())
                .unwrap();
            (got, costs.snapshot().evaluated)
        };
        let learned_bill = {
            let costs = CostTracker::new();
            let got =
                evaluate_expr_batch_ctx(&optimized, &t, &rows, &costs, &ExecContext::sequential())
                    .unwrap();
            (got, costs.snapshot().evaluated)
        };
        assert_eq!(static_bill.0, learned_bill.0, "answers are identical");
        // Static: 200 common + 180 survivors = 380. Learned: 200 rare +
        // 20 survivors = 220.
        assert_eq!(static_bill.1, 380);
        assert_eq!(learned_bill.1, 220);

        // OR rank is the mirror image: the common (likely-accepting)
        // child should run first.
        let or_expr = leaf("rare").or(leaf("common"));
        let or_optimized = optimize_expr(&or_expr, &t, Some(&tracker));
        let or_static = {
            let costs = CostTracker::new();
            evaluate_expr_batch_ctx(&or_expr, &t, &rows, &costs, &ExecContext::sequential())
                .unwrap();
            costs.snapshot().evaluated
        };
        let or_learned = {
            let costs = CostTracker::new();
            evaluate_expr_batch_ctx(&or_optimized, &t, &rows, &costs, &ExecContext::sequential())
                .unwrap();
            costs.snapshot().evaluated
        };
        assert!(
            or_learned < or_static,
            "learned {or_learned} must beat static {or_static}"
        );
    }

    #[test]
    fn optimized_answers_are_identical_on_compound_expressions() {
        let n = 60;
        let a: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
        let b: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
        let c: Vec<bool> = (0..n).map(|i| i % 7 != 0).collect();
        let t = table(&[("a", &a), ("b", &b), ("c", &c)]);
        let rows: Vec<usize> = (0..n).collect();
        let tracker = SelectivityTracker::new();
        observe(&tracker, &t, &["a", "b", "c"]);
        let cases = vec![
            leaf("a").and(leaf("b")).or(leaf("a").and(leaf("c"))),
            leaf("a").and(leaf("a")).or(leaf("b").not().not()),
            leaf("c").not().or(leaf("a").and(leaf("b").or(leaf("c")))),
            leaf("a").and(leaf("b")).and(leaf("c")).not(),
        ];
        for expr in cases {
            let optimized = optimize_expr(&expr, &t, Some(&tracker));
            let want = evaluate_expr_batch_ctx(
                &expr,
                &t,
                &rows,
                &CostTracker::new(),
                &ExecContext::sequential(),
            )
            .unwrap();
            let got = evaluate_expr_batch_ctx(
                &optimized,
                &t,
                &rows,
                &CostTracker::new(),
                &ExecContext::sequential(),
            )
            .unwrap();
            assert_eq!(want, got, "{expr:?} vs {optimized:?}");
        }
    }

    #[test]
    fn factoring_cuts_the_bill_on_shared_disjuncts() {
        // (gate ∧ a) ∨ (gate ∧ b): outside a session cache, the two
        // `gate` leaves are distinct invokers, so the unfactored form
        // pays for `gate` once per disjunct. Factoring to
        // `gate ∧ (a ∨ b)` pays exactly once.
        let n = 100;
        let gate: Vec<bool> = (0..n).map(|i| i % 5 == 0).collect(); // 20%
        let a: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let b: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let t = table(&[("gate", &gate), ("a", &a), ("b", &b)]);
        let rows: Vec<usize> = (0..n).collect();
        let tracker = SelectivityTracker::new();
        observe(&tracker, &t, &["gate", "a", "b"]);
        let expr = leaf("gate").and(leaf("a")).or(leaf("gate").and(leaf("b")));
        let optimized = optimize_expr(&expr, &t, Some(&tracker));

        let run = |e: &PredicateExpr| {
            let costs = CostTracker::new();
            let got =
                evaluate_expr_batch_ctx(e, &t, &rows, &costs, &ExecContext::sequential()).unwrap();
            (got, costs.snapshot().evaluated)
        };
        let (want, static_bill) = run(&expr);
        let (got, learned_bill) = run(&optimized);
        assert_eq!(want, got);
        assert!(
            learned_bill < static_bill,
            "factored {learned_bill} must beat unfactored {static_bill}"
        );
    }
}
